"""Block formation.

A proposer packs its mempool into a block in local arrival order — the
standard behaviour that makes transaction *dissemination* order translate into
*blockchain* order, and hence makes front-running pay off when an adversary's
transaction overtakes the victim's on the way to the proposer.

Two optional levers model how real proposers deviate from pure arrival order:

* ``cutoff_ms`` — the proposer seals the block at a decision instant; only
  transactions that arrived by then are included (late adversarial legs miss
  the block even if they would otherwise have ordered favourably);
* ``priority`` — the block is packed by descending fee instead of arrival
  (the fee market real front-runners outbid; see
  :meth:`~repro.mempool.mempool.Mempool.in_priority_order`).
"""

from __future__ import annotations

from dataclasses import dataclass

from .mempool import Mempool
from .transaction import Transaction

__all__ = ["Block", "build_block"]


@dataclass(frozen=True, slots=True)
class Block:
    """An ordered batch of transactions proposed by one node."""

    proposer: int
    created_at: float
    tx_ids: tuple[int, ...]

    def position_of(self, tx_id: int) -> int:
        """Index of *tx_id* in the block; raises ``ValueError`` if absent."""

        return self.tx_ids.index(tx_id)

    def __contains__(self, tx_id: int) -> bool:
        return tx_id in self.tx_ids

    def __len__(self) -> int:
        return len(self.tx_ids)


def build_block(
    mempool: Mempool,
    now: float,
    max_transactions: int | None = None,
    cutoff_ms: float | None = None,
    priority: bool = False,
) -> Block:
    """Form a block from *mempool* (arrival order unless ``priority``).

    ``cutoff_ms`` drops transactions that arrived after the proposer's
    decision instant; ``priority`` orders by descending fee with arrival as
    the tie-break.  The defaults reproduce the original behaviour exactly.
    """

    ordered: list[Transaction] = (
        mempool.in_priority_order() if priority else mempool.in_arrival_order()
    )
    if cutoff_ms is not None:
        ordered = [
            tx for tx in ordered if mempool.arrival_time(tx.tx_id) <= cutoff_ms
        ]
    if max_transactions is not None:
        if max_transactions < 0:
            raise ValueError(f"max_transactions must be >= 0, got {max_transactions}")
        ordered = ordered[:max_transactions]
    return Block(
        proposer=mempool.owner,
        created_at=now,
        tx_ids=tuple(tx.tx_id for tx in ordered),
    )
