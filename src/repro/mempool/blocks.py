"""Block formation.

A proposer packs its mempool into a block in local arrival order — the
standard behaviour that makes transaction *dissemination* order translate into
*blockchain* order, and hence makes front-running pay off when an adversary's
transaction overtakes the victim's on the way to the proposer.
"""

from __future__ import annotations

from dataclasses import dataclass

from .mempool import Mempool
from .transaction import Transaction

__all__ = ["Block", "build_block"]


@dataclass(frozen=True, slots=True)
class Block:
    """An ordered batch of transactions proposed by one node."""

    proposer: int
    created_at: float
    tx_ids: tuple[int, ...]

    def position_of(self, tx_id: int) -> int:
        """Index of *tx_id* in the block; raises ``ValueError`` if absent."""

        return self.tx_ids.index(tx_id)

    def __contains__(self, tx_id: int) -> bool:
        return tx_id in self.tx_ids

    def __len__(self) -> int:
        return len(self.tx_ids)


def build_block(
    mempool: Mempool, now: float, max_transactions: int | None = None
) -> Block:
    """Form a block from *mempool* in arrival order."""

    ordered: list[Transaction] = mempool.in_arrival_order()
    if max_transactions is not None:
        if max_transactions < 0:
            raise ValueError(f"max_transactions must be >= 0, got {max_transactions}")
        ordered = ordered[:max_transactions]
    return Block(
        proposer=mempool.owner,
        created_at=now,
        tx_ids=tuple(tx.tx_id for tx in ordered),
    )
