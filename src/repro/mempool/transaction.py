"""Transactions: the unit of dissemination.

The paper's experiments use 250-byte transactions.  A transaction carries an
origin node, a creation time, and an optional *victim/adversarial* tag used
only by the front-running experiments (it does not exist on the wire).

``fee`` is the priority bid a sender attaches for fee-market ordering
(:meth:`repro.mempool.mempool.Mempool.in_priority_order`); it defaults to
``0.0``, in which case it is absent from :meth:`Transaction.digest` so every
fee-less run stays byte-identical to the pre-fee protocol.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..crypto.hashing import hash_bytes

__all__ = ["Transaction", "TX_SIZE_BYTES", "reset_tx_ids"]

TX_SIZE_BYTES = 250

_tx_counter = itertools.count()


def reset_tx_ids(start: int = 0) -> None:
    """Rewind the global transaction-id counter.

    Transaction ids feed ``digest()`` and therefore the TRS overlay draw, so
    a run's measurements depend on the counter state it started from.  The
    sweep runner (:mod:`repro.runner`) resets the counter before every run,
    making each cell a pure function of its parameters regardless of what
    else executed in the same process.  Only call this between *independent*
    simulations — ids must stay unique within one running system.
    """

    global _tx_counter
    _tx_counter = itertools.count(start)


@dataclass(frozen=True, slots=True)
class Transaction:
    """An application transaction.

    ``payload`` carries opaque application bytes when a protocol layer needs
    real content on the wire (e.g. erasure-coded batch shards); plain
    experiment transactions leave it empty and are sized by ``size_bytes``.
    """

    tx_id: int
    origin: int
    created_at: float
    size_bytes: int = TX_SIZE_BYTES
    tag: str = ""
    payload: bytes = b""
    #: Priority bid for fee-market ordering; 0.0 = no bid (arrival order).
    fee: float = 0.0

    @classmethod
    def create(
        cls,
        origin: int,
        created_at: float,
        size_bytes: int = TX_SIZE_BYTES,
        tag: str = "",
        payload: bytes = b"",
        fee: float = 0.0,
    ) -> "Transaction":
        return cls(
            tx_id=next(_tx_counter),
            origin=origin,
            created_at=created_at,
            size_bytes=size_bytes,
            tag=tag,
            payload=payload,
            fee=fee,
        )

    def digest(self) -> bytes:
        """``H(m)`` — the hash bound by the TRS and checked by relays.

        A zero fee is omitted from the hash input, so transactions created
        before the fee field existed (and every experiment that leaves fees
        off) keep their exact historical digests — the golden-hash pins in
        ``tests/integration`` depend on this.
        """

        if self.fee:
            return hash_bytes(
                "tx",
                self.tx_id,
                self.origin,
                self.size_bytes,
                self.payload,
                repr(self.fee),
            )
        return hash_bytes("tx", self.tx_id, self.origin, self.size_bytes, self.payload)

    @property
    def is_adversarial(self) -> bool:
        return self.tag == "adversarial"
