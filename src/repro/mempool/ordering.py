"""Front-running adjudication (§VIII-F).

The paper's success criterion: "An attack succeeds if the adversarial
transaction appears before the victim transaction in the blockchain" — not
necessarily immediately before.  Given the proposer's block, we check whether
*any* adversarial transaction targeting the victim precedes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .blocks import Block

__all__ = ["FrontRunVerdict", "judge_front_running"]


@dataclass(frozen=True, slots=True)
class FrontRunVerdict:
    """Outcome of one front-running attempt.

    ``victim_censored`` distinguishes the two ways a victim can lose without
    the attacker's transaction winning: it is True whenever the victim never
    made it into the block at all.  Before this field existed, a censored
    victim with no adversarial transaction landing was indistinguishable from
    a failed attack — both reported ``attacker_won=False``.
    """

    victim_tx: int
    victim_included: bool
    attacker_won: bool
    winning_adversarial_tx: int | None = None
    victim_censored: bool = False


def judge_front_running(
    block: Block, victim_tx: int, adversarial_txs: Iterable[int]
) -> FrontRunVerdict:
    """Decide whether the attack on *victim_tx* succeeded in *block*.

    A victim transaction that never made it into the block counts as a
    successful attack only if an adversarial transaction did (the adversary
    outright censored/overtook it); if neither is present the attempt is
    reported as not-won — but in both cases ``victim_censored`` is set, so
    censorship is never silently folded into "attack failed".
    """

    adversarial = list(adversarial_txs)
    if victim_tx not in block:
        winner = next((tx for tx in adversarial if tx in block), None)
        return FrontRunVerdict(
            victim_tx=victim_tx,
            victim_included=False,
            attacker_won=winner is not None,
            winning_adversarial_tx=winner,
            victim_censored=True,
        )
    victim_position = block.position_of(victim_tx)
    for tx in adversarial:
        if tx in block and block.position_of(tx) < victim_position:
            return FrontRunVerdict(
                victim_tx=victim_tx,
                victim_included=True,
                attacker_won=True,
                winning_adversarial_tx=tx,
            )
    return FrontRunVerdict(
        victim_tx=victim_tx, victim_included=True, attacker_won=False
    )
