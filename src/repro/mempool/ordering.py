"""Front-running adjudication (§VIII-F).

The paper's success criterion: "An attack succeeds if the adversarial
transaction appears before the victim transaction in the blockchain" — not
necessarily immediately before.  Given the proposer's block, we check whether
*any* adversarial transaction targeting the victim precedes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .blocks import Block

__all__ = ["FrontRunVerdict", "judge_front_running"]


@dataclass(frozen=True, slots=True)
class FrontRunVerdict:
    """Outcome of one front-running attempt."""

    victim_tx: int
    victim_included: bool
    attacker_won: bool
    winning_adversarial_tx: int | None = None


def judge_front_running(
    block: Block, victim_tx: int, adversarial_txs: Iterable[int]
) -> FrontRunVerdict:
    """Decide whether the attack on *victim_tx* succeeded in *block*.

    A victim transaction that never made it into the block counts as a
    successful attack only if an adversarial transaction did (the adversary
    outright censored/overtook it); if neither is present the attempt is void
    and reported as not-won with ``victim_included=False``.
    """

    adversarial = list(adversarial_txs)
    if victim_tx not in block:
        winner = next((tx for tx in adversarial if tx in block), None)
        return FrontRunVerdict(
            victim_tx=victim_tx,
            victim_included=False,
            attacker_won=winner is not None,
            winning_adversarial_tx=winner,
        )
    victim_position = block.position_of(victim_tx)
    for tx in adversarial:
        if tx in block and block.position_of(tx) < victim_position:
            return FrontRunVerdict(
                victim_tx=victim_tx,
                victim_included=True,
                attacker_won=True,
                winning_adversarial_tx=tx,
            )
    return FrontRunVerdict(
        victim_tx=victim_tx, victim_included=True, attacker_won=False
    )
