"""The mempool layer: transactions, per-node mempools, block formation.

HERMES and the baselines are *dissemination* protocols; this package supplies
the objects they disseminate (250-byte transactions, §VIII-A), the accountable
mempool that stores them (with L∅-style commitments), and the block-formation
logic used to adjudicate front-running attacks: a proposer orders transactions
by local arrival time, so an attack succeeds exactly when the adversarial
transaction reached the proposer first (§VIII-F).
"""

from .blocks import Block, build_block
from .mempool import Mempool, MempoolPolicy
from .ordering import FrontRunVerdict, judge_front_running
from .transaction import TX_SIZE_BYTES, Transaction

__all__ = [
    "Block",
    "FrontRunVerdict",
    "Mempool",
    "MempoolPolicy",
    "TX_SIZE_BYTES",
    "Transaction",
    "build_block",
    "judge_front_running",
]
