"""A per-node mempool with arrival ordering and L∅-style commitments.

Beyond storing transactions, the mempool supports the two operations the
protocols need:

* **arrival order** — the proposer's block is formed in local arrival order,
  which is what makes early knowledge exploitable and front-running
  measurable;
* **reconciliation** — compact digests and set differences, used by L∅'s
  mempool reconciliation and by HERMES's gossip fallback (§VII-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.hashing import hash_bytes
from .transaction import Transaction

__all__ = ["Mempool"]


@dataclass
class Mempool:
    """Transactions known to one node, with first-arrival timestamps."""

    owner: int
    _transactions: dict[int, Transaction] = field(default_factory=dict)
    _arrival: dict[int, float] = field(default_factory=dict)

    def add(self, tx: Transaction, now: float) -> bool:
        """Record *tx* (first arrival wins).  Returns True if it was new."""

        if tx.tx_id in self._transactions:
            return False
        self._transactions[tx.tx_id] = tx
        self._arrival[tx.tx_id] = now
        return True

    def __contains__(self, tx_id: int) -> bool:
        return tx_id in self._transactions

    def __len__(self) -> int:
        return len(self._transactions)

    def get(self, tx_id: int) -> Transaction | None:
        return self._transactions.get(tx_id)

    def arrival_time(self, tx_id: int) -> float:
        try:
            return self._arrival[tx_id]
        except KeyError:
            raise KeyError(f"transaction {tx_id} not in mempool of {self.owner}") from None

    def in_arrival_order(self) -> list[Transaction]:
        """Transactions sorted by local first-arrival time (ties by id)."""

        return sorted(
            self._transactions.values(),
            key=lambda tx: (self._arrival[tx.tx_id], tx.tx_id),
        )

    # -- reconciliation --------------------------------------------------

    def known_ids(self) -> frozenset[int]:
        return frozenset(self._transactions)

    def commitment(self) -> bytes:
        """A digest over the known transaction set (L∅'s mempool commitment)."""

        return hash_bytes("mempool-commitment", *sorted(self._transactions))

    def missing_from(self, known_ids: frozenset[int] | set[int]) -> list[int]:
        """Ids we hold that the peer advertising *known_ids* lacks."""

        return sorted(set(self._transactions) - set(known_ids))

    def absent_locally(self, known_ids: frozenset[int] | set[int]) -> list[int]:
        """Ids the peer holds that we lack (to be requested)."""

        return sorted(set(known_ids) - set(self._transactions))
