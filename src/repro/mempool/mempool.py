"""A per-node mempool with arrival ordering and L∅-style commitments.

Beyond storing transactions, the mempool supports the two operations the
protocols need:

* **arrival order** — the proposer's block is formed in local arrival order,
  which is what makes early knowledge exploitable and front-running
  measurable;
* **reconciliation** — compact digests and set differences, used by L∅'s
  mempool reconciliation and by HERMES's gossip fallback (§VII-A).
"""

from __future__ import annotations

import hashlib
import heapq
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable

from ..crypto.hashing import encode_piece
from .transaction import Transaction

__all__ = ["Mempool", "MempoolPolicy"]

# encode_piece("mempool-commitment"): the domain-separation prefix of every
# commitment digest, precomputed once.
_COMMITMENT_PREFIX = encode_piece("mempool-commitment")

# Every node that learns a transaction encodes the same id; share the bytes
# process-wide instead of re-encoding per mempool (ids are small ints from a
# per-run counter, so the cache stays tiny and hit rates are ~#nodes).
_encoded_id = lru_cache(maxsize=1 << 16)(encode_piece)


@dataclass(frozen=True, slots=True)
class MempoolPolicy:
    """Admission and retention rules for a bounded mempool.

    The default policy (all fields at their defaults) admits everything and
    retains it forever — behaviourally identical to an unbounded mempool,
    which is what every historical figure run uses (``policy=None``; the two
    are pinned equal by a regression test).  Under sustained load:

    * ``max_size`` caps the pool.  A full pool admits a newcomer only if its
      fee *strictly* exceeds the lowest resident fee — the lowest-fee (and
      among fee ties, latest-arrived) resident is evicted to make room.
      Fee ties reject the newcomer: seats are never churned for equal bids,
      which keeps the arrival-order semantics the fairness metrics measure.
    * ``ttl_ms`` expires transactions that have sat unserved for longer than
      the window (swept lazily on every add, or explicitly via
      :meth:`Mempool.expire`).
    * ``min_fee`` rejects bids below the floor outright.

    Every drop is counted on the mempool (``evicted`` / ``expired`` /
    ``rejected``) and reported through its ``on_drop`` callback so runs can
    aggregate drop accounting into ``repro.obs`` counters.
    """

    max_size: int | None = None
    ttl_ms: float | None = None
    min_fee: float = 0.0

    def __post_init__(self) -> None:
        if self.max_size is not None and self.max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {self.max_size}")
        if self.ttl_ms is not None and self.ttl_ms <= 0:
            raise ValueError(f"ttl_ms must be positive, got {self.ttl_ms}")
        if self.min_fee < 0:
            raise ValueError(f"min_fee must be >= 0, got {self.min_fee}")

    @property
    def is_unbounded(self) -> bool:
        return self.max_size is None and self.ttl_ms is None and self.min_fee == 0.0


@dataclass
class Mempool:
    """Transactions known to one node, with first-arrival timestamps."""

    owner: int
    _transactions: dict[int, Transaction] = field(default_factory=dict)
    _arrival: dict[int, float] = field(default_factory=dict)
    # Commitment acceleration (compare=False: two mempools are equal iff
    # their contents are — the caches are derived state).  _sorted_ids keeps
    # the id set in order incrementally, _pieces holds each id's canonical
    # encoding at the same index, and _commitment memoizes the digest until
    # the next add.  list.insert is a C memmove, so maintaining sorted order
    # costs far less than re-sorting the id set on every commitment.
    _sorted_ids: list[int] = field(default_factory=list, repr=False, compare=False)
    _pieces: list[bytes] = field(default_factory=list, repr=False, compare=False)
    _commitment: bytes | None = field(default=None, repr=False, compare=False)
    # Admission/eviction policy.  None (the default, and what every protocol
    # node constructs) means unbounded: add() takes a single is-None branch
    # and is otherwise byte-identical to the historical behaviour.
    policy: MempoolPolicy | None = field(default=None, compare=False)
    # Called as on_drop(reason, tx) for every policy drop; reasons are
    # "evicted" (fee-ranked, pool full), "expired" (TTL), "rejected"
    # (admission refused: below min_fee, or full pool and bid too low).
    on_drop: Callable[[str, Transaction], None] | None = field(
        default=None, repr=False, compare=False
    )
    evicted: int = field(default=0, compare=False)
    expired: int = field(default=0, compare=False)
    rejected: int = field(default=0, compare=False)
    # Policy-mode service/eviction indexes, all lazily deleted: entries carry
    # the arrival stamp they were pushed with and are skipped when the id is
    # gone or was re-added with a different arrival.
    _fee_heap: list[tuple[float, float, int]] = field(
        default_factory=list, repr=False, compare=False
    )
    _prio_heap: list[tuple[float, float, int]] = field(
        default_factory=list, repr=False, compare=False
    )
    _fifo: deque = field(default_factory=deque, repr=False, compare=False)
    _ttl_queue: deque = field(default_factory=deque, repr=False, compare=False)

    def add(self, tx: Transaction, now: float) -> bool:
        """Record *tx* (first arrival wins).  Returns True if it was new.

        With a :attr:`policy` installed, admission may refuse *tx* (fee below
        the floor, or pool full and bid not strictly above the cheapest
        resident) or evict a resident to make room; either way the verdict is
        reflected in the drop counters and ``on_drop`` callback.
        """

        tx_id = tx.tx_id
        if tx_id in self._transactions:
            return False
        policy = self.policy
        if policy is not None and not self._admit(tx, now, policy):
            return False
        self._transactions[tx_id] = tx
        self._arrival[tx_id] = now
        index = bisect_left(self._sorted_ids, tx_id)
        self._sorted_ids.insert(index, tx_id)
        self._pieces.insert(index, _encoded_id(tx_id))
        self._commitment = None
        if policy is not None:
            self._index(tx, now)
        return True

    # -- policy machinery -------------------------------------------------

    def _admit(self, tx: Transaction, now: float, policy: MempoolPolicy) -> bool:
        if policy.ttl_ms is not None:
            self._sweep_expired(now, policy.ttl_ms)
        if tx.fee < policy.min_fee:
            self._count_drop("rejected", tx)
            return False
        max_size = policy.max_size
        if max_size is None:
            return True
        while len(self._transactions) >= max_size:
            victim_id = self._cheapest_resident()
            if victim_id is None:
                break  # indexes stale-empty; admit rather than wedge
            victim = self._transactions[victim_id]
            if tx.fee <= victim.fee:
                self._count_drop("rejected", tx)
                return False
            heapq.heappop(self._fee_heap)
            self._discard(victim_id)
            self._count_drop("evicted", victim)
        return True

    def _cheapest_resident(self) -> int | None:
        """Id of the lowest-fee (ties: latest-arrived) resident, or None.

        Leaves the winning entry on the heap so a rejected admission attempt
        does not disturb it; stale entries are popped along the way.
        """

        heap = self._fee_heap
        while heap:
            _, neg_arrival, tx_id = heap[0]
            if self._arrival.get(tx_id) == -neg_arrival:
                return tx_id
            heapq.heappop(heap)
        return None

    def _index(self, tx: Transaction, now: float) -> None:
        """Register *tx* in the policy-mode service/eviction indexes."""

        entry_id = tx.tx_id
        heapq.heappush(self._fee_heap, (tx.fee, -now, entry_id))
        heapq.heappush(self._prio_heap, (-tx.fee, now, entry_id))
        self._fifo.append((now, entry_id))
        if self.policy is not None and self.policy.ttl_ms is not None:
            self._ttl_queue.append((now, entry_id))
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Rebuild any lazy-deletion index whose stale entries dominate.

        Lazy deletion only sheds an entry when it reaches the *front* of its
        structure.  Under sustained load with fee-priority service that never
        happens for whole classes of entries — the FIFO queue is not popped
        at all, served high-fee ids sink to the bottom of the fee heap, and
        evicted low-fee ids to the bottom of the priority heap — so each
        index would otherwise grow O(all transactions ever admitted).
        Rebuilding once an index exceeds 4x the live set (amortized O(1) per
        add) keeps the pool's footprint O(live + recent), which is what makes
        a million-transaction sustained run constant-memory.
        """

        arrival = self._arrival
        bound = 4 * len(self._transactions) + 64
        if len(self._fee_heap) > bound:
            self._fee_heap = [
                entry for entry in self._fee_heap if arrival.get(entry[2]) == -entry[1]
            ]
            heapq.heapify(self._fee_heap)
        if len(self._prio_heap) > bound:
            self._prio_heap = [
                entry for entry in self._prio_heap if arrival.get(entry[2]) == entry[1]
            ]
            heapq.heapify(self._prio_heap)
        if len(self._fifo) > bound:
            self._fifo = deque(
                entry for entry in self._fifo if arrival.get(entry[1]) == entry[0]
            )
        if len(self._ttl_queue) > bound:
            self._ttl_queue = deque(
                entry for entry in self._ttl_queue if arrival.get(entry[1]) == entry[0]
            )

    def _discard(self, tx_id: int) -> None:
        """Remove *tx_id* from the live structures (heap entries die lazily)."""

        del self._transactions[tx_id]
        del self._arrival[tx_id]
        index = bisect_left(self._sorted_ids, tx_id)
        # tx_id is present by precondition, so _sorted_ids[index] == tx_id.
        del self._sorted_ids[index]
        del self._pieces[index]
        self._commitment = None

    def _count_drop(self, reason: str, tx: Transaction) -> None:
        if reason == "evicted":
            self.evicted += 1
        elif reason == "expired":
            self.expired += 1
        else:
            self.rejected += 1
        if self.on_drop is not None:
            self.on_drop(reason, tx)

    def _sweep_expired(self, now: float, ttl_ms: float) -> None:
        cutoff = now - ttl_ms
        queue = self._ttl_queue
        while queue:
            arrival, tx_id = queue[0]
            if arrival > cutoff:
                break
            queue.popleft()
            if self._arrival.get(tx_id) == arrival:
                victim = self._transactions[tx_id]
                self._discard(tx_id)
                self._count_drop("expired", victim)

    def expire(self, now: float) -> int:
        """Force a TTL sweep at *now*; returns how many transactions expired.

        Expiry is otherwise lazy (piggybacked on :meth:`add`), so telemetry
        that reads drop counters on a cadence should call this first.
        """

        if self.policy is None or self.policy.ttl_ms is None:
            return 0
        before = self.expired
        self._sweep_expired(now, self.policy.ttl_ms)
        return self.expired - before

    def pop_next(self, *, priority: bool = False) -> tuple[Transaction, float] | None:
        """Remove and return the next ``(tx, arrival_ms)`` to serve, or None.

        ``priority=False`` serves in first-arrival order; ``priority=True``
        serves by descending fee (ties: earlier arrival, then id) — the order
        a fee market's proposer drains the pool in.  Requires a policy-mode
        mempool (the service indexes are only maintained under a policy).
        """

        if self.policy is None:
            raise RuntimeError("pop_next requires a mempool with a policy installed")
        if priority:
            heap = self._prio_heap
            while heap:
                _, arrival, tx_id = heapq.heappop(heap)
                if self._arrival.get(tx_id) == arrival:
                    tx = self._transactions[tx_id]
                    self._discard(tx_id)
                    return tx, arrival
            return None
        queue = self._fifo
        while queue:
            arrival, tx_id = queue.popleft()
            if self._arrival.get(tx_id) == arrival:
                tx = self._transactions[tx_id]
                self._discard(tx_id)
                return tx, arrival
        return None

    def install_policy(
        self,
        policy: MempoolPolicy,
        on_drop: Callable[[str, Transaction], None] | None = None,
    ) -> None:
        """Attach *policy* (and optional drop callback), indexing any
        transactions already resident so eviction and service see them."""

        self.policy = policy
        self.on_drop = on_drop
        self._fee_heap.clear()
        self._prio_heap.clear()
        self._fifo.clear()
        self._ttl_queue.clear()
        for tx_id, arrival in sorted(
            self._arrival.items(), key=lambda kv: (kv[1], kv[0])
        ):
            self._index(self._transactions[tx_id], arrival)

    def __contains__(self, tx_id: int) -> bool:
        return tx_id in self._transactions

    def __len__(self) -> int:
        return len(self._transactions)

    def get(self, tx_id: int) -> Transaction | None:
        return self._transactions.get(tx_id)

    def arrival_time(self, tx_id: int) -> float:
        try:
            return self._arrival[tx_id]
        except KeyError:
            raise KeyError(f"transaction {tx_id} not in mempool of {self.owner}") from None

    def in_arrival_order(self) -> list[Transaction]:
        """Transactions sorted by local first-arrival time (ties by id)."""

        return sorted(
            self._transactions.values(),
            key=lambda tx: (self._arrival[tx.tx_id], tx.tx_id),
        )

    def in_priority_order(self) -> list[Transaction]:
        """Transactions by descending fee, then arrival time (fee market).

        The ordering rule real front-runners bid against: a higher
        :attr:`~repro.mempool.transaction.Transaction.fee` overtakes earlier
        arrivals, and fee-less transactions fall back to pure arrival order.
        """

        return sorted(
            self._transactions.values(),
            key=lambda tx: (-tx.fee, self._arrival[tx.tx_id], tx.tx_id),
        )

    # -- reconciliation --------------------------------------------------

    def known_ids(self) -> frozenset[int]:
        return frozenset(self._transactions)

    def commitment(self) -> bytes:
        """A digest over the known transaction set (L∅'s mempool commitment).

        Byte-identical to ``hash_bytes("mempool-commitment", *sorted(ids))``
        but computed from incrementally maintained pieces and memoized, so
        L∅'s per-round commitment exchange costs O(n) hashing only after the
        set actually changed — not O(n log n) encoding on every call.
        """

        cached = self._commitment
        if cached is None:
            cached = self._commitment = hashlib.sha256(
                _COMMITMENT_PREFIX + b"".join(self._pieces)
            ).digest()
        return cached

    def missing_from(self, known_ids: frozenset[int] | set[int]) -> list[int]:
        """Ids we hold that the peer advertising *known_ids* lacks."""

        return sorted(set(self._transactions) - set(known_ids))

    def absent_locally(self, known_ids: frozenset[int] | set[int]) -> list[int]:
        """Ids the peer holds that we lack (to be requested)."""

        return sorted(set(known_ids) - set(self._transactions))
