"""A per-node mempool with arrival ordering and L∅-style commitments.

Beyond storing transactions, the mempool supports the two operations the
protocols need:

* **arrival order** — the proposer's block is formed in local arrival order,
  which is what makes early knowledge exploitable and front-running
  measurable;
* **reconciliation** — compact digests and set differences, used by L∅'s
  mempool reconciliation and by HERMES's gossip fallback (§VII-A).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from dataclasses import dataclass, field
from functools import lru_cache

from ..crypto.hashing import encode_piece
from .transaction import Transaction

__all__ = ["Mempool"]

# encode_piece("mempool-commitment"): the domain-separation prefix of every
# commitment digest, precomputed once.
_COMMITMENT_PREFIX = encode_piece("mempool-commitment")

# Every node that learns a transaction encodes the same id; share the bytes
# process-wide instead of re-encoding per mempool (ids are small ints from a
# per-run counter, so the cache stays tiny and hit rates are ~#nodes).
_encoded_id = lru_cache(maxsize=1 << 16)(encode_piece)


@dataclass
class Mempool:
    """Transactions known to one node, with first-arrival timestamps."""

    owner: int
    _transactions: dict[int, Transaction] = field(default_factory=dict)
    _arrival: dict[int, float] = field(default_factory=dict)
    # Commitment acceleration (compare=False: two mempools are equal iff
    # their contents are — the caches are derived state).  _sorted_ids keeps
    # the id set in order incrementally, _pieces holds each id's canonical
    # encoding at the same index, and _commitment memoizes the digest until
    # the next add.  list.insert is a C memmove, so maintaining sorted order
    # costs far less than re-sorting the id set on every commitment.
    _sorted_ids: list[int] = field(default_factory=list, repr=False, compare=False)
    _pieces: list[bytes] = field(default_factory=list, repr=False, compare=False)
    _commitment: bytes | None = field(default=None, repr=False, compare=False)

    def add(self, tx: Transaction, now: float) -> bool:
        """Record *tx* (first arrival wins).  Returns True if it was new."""

        tx_id = tx.tx_id
        if tx_id in self._transactions:
            return False
        self._transactions[tx_id] = tx
        self._arrival[tx_id] = now
        index = bisect_left(self._sorted_ids, tx_id)
        self._sorted_ids.insert(index, tx_id)
        self._pieces.insert(index, _encoded_id(tx_id))
        self._commitment = None
        return True

    def __contains__(self, tx_id: int) -> bool:
        return tx_id in self._transactions

    def __len__(self) -> int:
        return len(self._transactions)

    def get(self, tx_id: int) -> Transaction | None:
        return self._transactions.get(tx_id)

    def arrival_time(self, tx_id: int) -> float:
        try:
            return self._arrival[tx_id]
        except KeyError:
            raise KeyError(f"transaction {tx_id} not in mempool of {self.owner}") from None

    def in_arrival_order(self) -> list[Transaction]:
        """Transactions sorted by local first-arrival time (ties by id)."""

        return sorted(
            self._transactions.values(),
            key=lambda tx: (self._arrival[tx.tx_id], tx.tx_id),
        )

    def in_priority_order(self) -> list[Transaction]:
        """Transactions by descending fee, then arrival time (fee market).

        The ordering rule real front-runners bid against: a higher
        :attr:`~repro.mempool.transaction.Transaction.fee` overtakes earlier
        arrivals, and fee-less transactions fall back to pure arrival order.
        """

        return sorted(
            self._transactions.values(),
            key=lambda tx: (-tx.fee, self._arrival[tx.tx_id], tx.tx_id),
        )

    # -- reconciliation --------------------------------------------------

    def known_ids(self) -> frozenset[int]:
        return frozenset(self._transactions)

    def commitment(self) -> bytes:
        """A digest over the known transaction set (L∅'s mempool commitment).

        Byte-identical to ``hash_bytes("mempool-commitment", *sorted(ids))``
        but computed from incrementally maintained pieces and memoized, so
        L∅'s per-round commitment exchange costs O(n) hashing only after the
        set actually changed — not O(n log n) encoding on every call.
        """

        cached = self._commitment
        if cached is None:
            cached = self._commitment = hashlib.sha256(
                _COMMITMENT_PREFIX + b"".join(self._pieces)
            ).digest()
        return cached

    def missing_from(self, known_ids: frozenset[int] | set[int]) -> list[int]:
        """Ids we hold that the peer advertising *known_ids* lacks."""

        return sorted(set(self._transactions) - set(known_ids))

    def absent_locally(self, known_ids: frozenset[int] | set[int]) -> list[int]:
        """Ids the peer holds that we lack (to be requested)."""

        return sorted(set(known_ids) - set(self._transactions))
