"""F3B-style per-transaction commit-then-reveal dissemination (defense baseline).

F3B (Flash Freezing Flash Boys, PAPERS.md) defends against front-running by
*withholding transaction content* until the transaction's position is already
fixed: a sender first disseminates an encrypted transaction alongside a
commitment, and a secret-management committee releases the decryption key only
after the ciphertext is committed.  We model the dissemination-relevant core
of that design on a flood overlay:

1. **Commit phase** — the origin floods a content-free ``CommitRecord``
   (commitment digest + ciphertext bytes).  Every node timestamps the commit's
   arrival: that instant is the transaction's *position* in the node's local
   order, even though nobody can read it yet.
2. **Reveal phase** — after ``reveal_delay_ms`` (the modeled share-release
   round of the secret-management committee), the origin floods the plaintext
   transaction.  On reveal, a node inserts the transaction into its mempool
   **backdated to the commit's arrival time** and only then does the content
   become observable (the :class:`~repro.baselines.base.BaselineNode` observe
   hook — an adversary's content tap — fires at reveal, not at commit).

Security consequence for the strategy zoo (:mod:`repro.adversary`): a
content-tapping adversary learns *what* a victim transaction does only after
its mempool position is locked network-wide, so reactive injections (sandwich
legs, racing replacements) always order behind the victim.  The price is
latency — measured delivery (content usable) lags commit arrival by the full
reveal round — and F3B has **no relay accountability**: censorship of commits
or reveals is deniable, unlike HERMES (the two defenses are complementary,
which is exactly what fig7 measures).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..mempool.transaction import Transaction
from ..net.events import Message
from ..net.faults import Behavior
from ..utils.rng import derive_rng
from .base import BaselineNode, BaseSystem

__all__ = ["CommitRecord", "F3BConfig", "F3BNode", "F3BSystem"]

F3B_COMMIT_KIND = "f3b-commit"
F3B_REVEAL_KIND = "f3b-reveal"

#: Commitment digest + key-share header riding with every ciphertext.
_COMMIT_OVERHEAD_BYTES = 96


@dataclass(frozen=True, slots=True)
class CommitRecord:
    """The content-free frame of the commit phase.

    Carries the transaction id as the commitment handle (the real protocol
    uses a hash; the id is our simulation's stand-in) and the ciphertext size
    so bandwidth accounting charges the encrypted payload — but *not* the
    transaction object itself, so nothing upstream of the reveal can read
    content, tags or fees.
    """

    tx_id: int
    origin: int
    cipher_bytes: int


@dataclass(frozen=True, slots=True)
class F3BConfig:
    """Flood fanout and the secret-management committee's release delay."""

    fanout: int = 8
    #: Time between a commit being flooded and its key release (one committee
    #: round of the secret-management committee, §F3B).
    reveal_delay_ms: float = 300.0

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ConfigurationError(f"fanout must be positive, got {self.fanout}")
        if self.reveal_delay_ms < 0:
            raise ConfigurationError("reveal_delay_ms must be >= 0")


class F3BNode(BaselineNode):
    """One F3B participant: floods commits, floods reveals, backdates arrivals."""

    def __init__(
        self, node_id, network, config: F3BConfig, peers: list[int], **kwargs
    ) -> None:
        super().__init__(node_id, network, **kwargs)
        self.config = config
        self.peers = peers
        #: commit handle -> local commit arrival time (the locked position).
        self.commit_times: dict[int, float] = {}
        self._revealed: set[int] = set()

    # -- sending -----------------------------------------------------------

    def submit_transaction(self, tx: Transaction) -> None:
        if self.behavior is Behavior.CRASH:
            return
        self.mark_first_transmission(tx)
        record = CommitRecord(
            tx_id=tx.tx_id, origin=self.node_id, cipher_bytes=tx.size_bytes
        )
        self._accept_commit(record, forward_from=None)
        # The origin's own mempool entry exists from commit time; content is
        # its own, so the observe hook fires immediately for it.
        self.deliver_locally(tx, record_stats=True, arrival_ms=self.now)
        self._revealed.add(tx.tx_id)
        self.schedule(self.config.reveal_delay_ms, lambda: self._reveal(tx))

    def _reveal(self, tx: Transaction) -> None:
        if self.behavior is Behavior.CRASH:
            return
        message = Message(
            F3B_REVEAL_KIND, tx, tx.size_bytes, tx_id=tx.tx_id
        )
        for peer in self.peers:
            self.send(peer, message)

    # -- receiving ---------------------------------------------------------

    def on_message(self, sender: int, message: Message) -> None:
        if self.behavior is Behavior.CRASH:
            return
        if message.kind == F3B_COMMIT_KIND:
            self._on_commit(sender, message.payload)
        elif message.kind == F3B_REVEAL_KIND:
            self._on_reveal(sender, message.payload)

    def _on_commit(self, sender: int, record: CommitRecord) -> None:
        if record.tx_id in self.commit_times:
            return
        self._accept_commit(record, forward_from=sender)

    def _accept_commit(self, record: CommitRecord, forward_from: int | None) -> None:
        self.commit_times[record.tx_id] = self.now
        # Censorship here would need to pick the victim's commit out of a
        # stream of indistinguishable ciphertexts — content-blind dropping is
        # DROP_RELAY, not targeted censorship, so ``censors()`` is *not*
        # consulted in the commit phase (the zoo only learns tx ids at
        # reveal time, by which point every honest node holds the commit).
        if self.behavior is Behavior.DROP_RELAY and forward_from is not None:
            return
        message = Message(
            F3B_COMMIT_KIND,
            record,
            record.cipher_bytes + _COMMIT_OVERHEAD_BYTES,
            tx_id=record.tx_id,
        )
        for peer in self.peers:
            if peer != forward_from:
                self.send(peer, message)

    def _on_reveal(self, sender: int, tx: Transaction) -> None:
        # Position = commit arrival where known; a reveal that outran its own
        # commit flood (disjoint flood paths) anchors at its own arrival.
        arrival = self.commit_times.get(tx.tx_id, self.now)
        fresh = self.deliver_locally(tx, sender=sender, arrival_ms=arrival)
        if not fresh or tx.tx_id in self._revealed:
            return
        self._revealed.add(tx.tx_id)
        if self.behavior is Behavior.DROP_RELAY or self.censors(tx):
            # Reveal-phase censorship is possible (content is visible now) but
            # can only delay usability: the commit already fixed the order.
            return
        message = Message(F3B_REVEAL_KIND, tx, tx.size_bytes, tx_id=tx.tx_id)
        for peer in self.peers:
            if peer != sender:
                self.send(peer, message)


class F3BSystem(BaseSystem):
    """An F3B deployment: symmetric random flood overlay + commit/reveal nodes."""

    def __init__(self, physical, config: F3BConfig | None = None, **kwargs) -> None:
        self.config = config if config is not None else F3BConfig()
        seed = kwargs.get("seed", 0)
        rng = derive_rng(seed, "f3b-peers")
        node_ids = physical.nodes()
        self._peers: dict[int, list[int]] = {node: [] for node in node_ids}
        for self_idx, node in enumerate(node_ids):
            count = min(self.config.fanout, len(node_ids) - 1)
            if not count:
                continue
            picks = rng.sample(range(len(node_ids) - 1), count)
            for i in picks:
                peer = node_ids[i if i < self_idx else i + 1]
                if peer not in self._peers[node]:
                    self._peers[node].append(peer)
        # Flood edges are TCP sessions — symmetric, like Mercury's peer graph.
        for node in node_ids:
            for peer in self._peers[node]:
                if node not in self._peers[peer]:
                    self._peers[peer].append(node)
        super().__init__(physical, **kwargs)

    def peers_of(self, node_id: int) -> list[int]:
        return list(self._peers[node_id])

    def _make_node(self, node_id: int, behavior: Behavior) -> F3BNode:
        return F3BNode(
            node_id,
            self.network,
            self.config,
            self._peers[node_id],
            behavior=behavior,
            observe_hook=self.observe_hook,
        )
