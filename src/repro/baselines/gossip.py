"""Plain push gossip — Table I's "Gossip" baseline.

On first receipt of a transaction a node forwards it to ``fanout`` uniformly
random peers; Byzantine ``DROP_RELAY`` nodes consume without forwarding.
Delivery is probabilistic (coverage grows with fanout), latency is the number
of gossip rounds times a random-pair WAN hop.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..mempool.transaction import Transaction
from ..net.events import Message
from ..net.faults import Behavior
from .base import BaselineNode, BaseSystem

__all__ = ["GossipConfig", "GossipNode", "GossipSystem"]

GOSSIP_TX_KIND = "gossip-tx"


@dataclass(frozen=True, slots=True)
class GossipConfig:
    """Fanout of the push gossip."""

    fanout: int = 8

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ConfigurationError(f"fanout must be positive, got {self.fanout}")


class GossipNode(BaselineNode):
    """Forwards each new transaction to ``fanout`` random peers."""

    def __init__(self, node_id, network, config: GossipConfig, **kwargs) -> None:
        super().__init__(node_id, network, **kwargs)
        self.config = config

    def submit_transaction(self, tx: Transaction) -> None:
        if self.behavior is Behavior.CRASH:
            return
        self.mark_first_transmission(tx)
        self.deliver_locally(tx)
        self._forward(tx)

    def on_message(self, sender: int, message: Message) -> None:
        if self.behavior is Behavior.CRASH:
            return
        if message.kind != GOSSIP_TX_KIND:
            return
        tx: Transaction = message.payload
        if not self.deliver_locally(tx, sender=sender):
            return
        if self.behavior is Behavior.DROP_RELAY or self.censors(tx):
            return
        self._forward(tx)

    def _forward(self, tx: Transaction) -> None:
        peers = [n for n in self.network.node_ids() if n != self.node_id]
        fanout = min(self.config.fanout, len(peers))
        if not fanout:
            return
        message = Message(GOSSIP_TX_KIND, tx, tx.size_bytes, tx_id=tx.tx_id)
        for peer in self.rng.sample(peers, fanout):
            self.send(peer, message)


class GossipSystem(BaseSystem):
    """A network of :class:`GossipNode`."""

    def __init__(self, physical, config: GossipConfig | None = None, **kwargs) -> None:
        self.config = config if config is not None else GossipConfig()
        super().__init__(physical, **kwargs)

    def _make_node(self, node_id: int, behavior: Behavior) -> GossipNode:
        return GossipNode(
            node_id,
            self.network,
            self.config,
            behavior=behavior,
            observe_hook=self.observe_hook,
        )
