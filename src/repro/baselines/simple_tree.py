"""Single fixed tree — Table I's "Simple Tree" baseline.

One balanced ``branching``-ary tree is laid over the node ids; the sender
hands its transaction to the root, which pushes it down.  A single Byzantine
interior node silently severs its whole subtree — exactly the fragility the
robust trees of HERMES are designed to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..mempool.transaction import Transaction
from ..net.events import Message
from ..net.faults import Behavior
from .base import BaselineNode, BaseSystem

__all__ = ["SimpleTreeConfig", "SimpleTreeNode", "SimpleTreeSystem"]

TREE_TX_KIND = "tree-tx"


@dataclass(frozen=True, slots=True)
class SimpleTreeConfig:
    """Branching factor of the fixed tree."""

    branching: int = 4

    def __post_init__(self) -> None:
        if self.branching < 1:
            raise ConfigurationError(f"branching must be positive, got {self.branching}")


def tree_children(position: int, branching: int, size: int) -> list[int]:
    """Children positions of *position* in an implicit balanced tree."""

    first = position * branching + 1
    return [c for c in range(first, first + branching) if c < size]


class SimpleTreeNode(BaselineNode):
    """A node in the implicit balanced tree (position = sorted index)."""

    def __init__(
        self, node_id, network, config: SimpleTreeConfig, order: list[int], **kwargs
    ) -> None:
        super().__init__(node_id, network, **kwargs)
        self.config = config
        self._order = order
        self._position = order.index(node_id)
        self._pushed: set[int] = set()

    @property
    def root_id(self) -> int:
        return self._order[0]

    def submit_transaction(self, tx: Transaction) -> None:
        if self.behavior is Behavior.CRASH:
            return
        self.mark_first_transmission(tx)
        self.deliver_locally(tx)
        if self._position == 0:
            self._push_down(tx)
        else:
            self.send(
                self.root_id, Message(TREE_TX_KIND, tx, tx.size_bytes, tx_id=tx.tx_id)
            )

    def on_message(self, sender: int, message: Message) -> None:
        if self.behavior is Behavior.CRASH or message.kind != TREE_TX_KIND:
            return
        tx: Transaction = message.payload
        self.deliver_locally(tx, sender=sender)
        # A node may already hold the transaction (it is the origin) and still
        # owe its subtree a push when the tree copy arrives via its parent.
        if self.behavior is Behavior.DROP_RELAY:
            return
        self._push_down(tx)

    def _push_down(self, tx: Transaction) -> None:
        if tx.tx_id in self._pushed:
            return
        self._pushed.add(tx.tx_id)
        message = Message(TREE_TX_KIND, tx, tx.size_bytes, tx_id=tx.tx_id)
        for child_position in tree_children(
            self._position, self.config.branching, len(self._order)
        ):
            self.send(self._order[child_position], message)


class SimpleTreeSystem(BaseSystem):
    """A network of :class:`SimpleTreeNode` over one implicit balanced tree."""

    def __init__(
        self, physical, config: SimpleTreeConfig | None = None, **kwargs
    ) -> None:
        self.config = config if config is not None else SimpleTreeConfig()
        self._order = physical.nodes()
        super().__init__(physical, **kwargs)

    def _make_node(self, node_id: int, behavior: Behavior) -> SimpleTreeNode:
        return SimpleTreeNode(
            node_id,
            self.network,
            self.config,
            self._order,
            behavior=behavior,
            observe_hook=self.observe_hook,
        )
