"""Shared scaffolding for baseline protocol systems.

Every baseline follows the same lifecycle as :class:`repro.core.HermesSystem`:
construct over a :class:`PhysicalNetwork` with a :class:`FaultPlan`, ``start``,
``submit`` transactions at origin nodes, ``run`` the simulator, read
``stats``.  :class:`BaseSystem` implements that lifecycle; subclasses provide
the node factory.
"""

from __future__ import annotations

from typing import Callable

from ..mempool.transaction import Transaction
from ..net.faults import Behavior, FaultPlan
from ..net.node import Network, ProtocolNode
from ..net.simulator import Simulator
from ..net.topology import PhysicalNetwork
from ..obs import Observability

__all__ = ["BaseSystem", "BaselineNode"]


class BaselineNode(ProtocolNode):
    """Common behaviour for baseline protocol nodes: local mempool delivery,
    Byzantine behaviour switch, and the observe hook used by attack drivers."""

    def __init__(
        self,
        node_id: int,
        network: Network,
        behavior: Behavior = Behavior.HONEST,
        observe_hook: Callable[["BaselineNode", Transaction], None] | None = None,
    ) -> None:
        super().__init__(node_id, network)
        from ..mempool.mempool import Mempool

        self.behavior = behavior
        self.observe_hook = observe_hook
        self.mempool = Mempool(owner=node_id)
        # Transactions this (malicious) node selectively refuses to forward —
        # the colluding adversary's censorship lever against a victim
        # transaction it is racing.  Attack drivers populate this through the
        # observe hook; honest nodes never touch it.
        self.censor_ids: set[int] = set()

    def censors(self, tx: Transaction) -> bool:
        return tx.tx_id in self.censor_ids

    def mark_first_transmission(self, tx: Transaction) -> None:
        """Record the paper's latency reference point for *tx*."""

        self.network.stats.record_dissemination_start(tx.tx_id, self.now)
        obs = self.network.obs
        if obs is not None:
            obs.event("tx.dispatch", tx_id=tx.tx_id, origin=self.node_id)

    def deliver_locally(
        self,
        tx: Transaction,
        record_stats: bool = True,
        sender: int | None = None,
        arrival_ms: float | None = None,
        **attrs: object,
    ) -> bool:
        """Record *tx* in the mempool (and, by default, the delivery stats).

        Protocols whose *usable* delivery lags mempool arrival (Narwhal's
        certificate) pass ``record_stats=False`` here and log the stats
        delivery themselves at the later point.  *sender* is the immediate
        predecessor the transaction arrived from (None for the origin's own
        copy); fresh remote arrivals emit a ``tx.deliver`` trace event — the
        parent edge :mod:`repro.obs.analysis` reconstructs dissemination
        trees from.  *arrival_ms* backdates the mempool arrival time (F3B
        records a transaction at its *commitment's* arrival so revealing late
        cannot reorder it); the emitted event carries it as ``arrival_ms`` so
        fairness analysis sees the same ordering the proposer uses.  Returns
        True if new.
        """

        network = self.network
        now = network.simulator.now
        if arrival_ms is not None:
            attrs["arrival_ms"] = arrival_ms
        if not self.mempool.add(tx, now if arrival_ms is None else arrival_ms):
            return False
        if record_stats:
            network.stats.record_delivery(tx.tx_id, self.node_id, now)
        obs = network.obs
        if obs is not None:
            obs.metrics.counter("mempool.insertions").inc()
            obs.metrics.gauge("mempool.depth.max").track_max(len(self.mempool))
            if sender is not None and sender != self.node_id:
                obs.event(
                    "tx.deliver",
                    tx_id=tx.tx_id,
                    node=self.node_id,
                    sender=sender,
                    **attrs,
                )
        if self.observe_hook is not None:
            self.observe_hook(self, tx)
        return True

    def submit_transaction(self, tx: Transaction) -> None:
        raise NotImplementedError


class BaseSystem:
    """Owns the simulator, network and node set of one baseline deployment."""

    def __init__(
        self,
        physical: PhysicalNetwork,
        fault_plan: FaultPlan | None = None,
        observe_hook: Callable[[BaselineNode, Transaction], None] | None = None,
        seed: int = 0,
        obs: Observability | None = None,
    ) -> None:
        self.physical = physical
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan.honest()
        self.observe_hook = observe_hook
        self.seed = seed
        self.simulator = Simulator()
        self.obs = obs
        self.network = Network(self.simulator, physical, seed=seed, obs=obs)
        self.nodes: dict[int, BaselineNode] = {}
        for node_id in physical.nodes():
            self.nodes[node_id] = self._make_node(
                node_id, self.fault_plan.behavior_of(node_id)
            )

    def _make_node(self, node_id: int, behavior: Behavior) -> BaselineNode:
        raise NotImplementedError

    # -- driving ----------------------------------------------------------

    def start(self) -> None:
        self.network.start_all()

    def submit(self, origin: int, tx: Transaction) -> None:
        self.network.stats.record_submission(tx.tx_id, self.simulator.now)
        if self.obs is not None:
            self.obs.event("tx.submit", tx_id=tx.tx_id, origin=origin)
        self.nodes[origin].submit_transaction(tx)

    def run(self, until_ms: float | None = None) -> float:
        return self.simulator.run(until_ms)

    @property
    def stats(self):
        return self.network.stats

    def honest_node_ids(self) -> list[int]:
        return self.fault_plan.honest_nodes(self.physical.nodes())
