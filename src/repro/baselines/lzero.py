"""L∅ — the accountable mempool HERMES extends (Nasrulin et al., 2023).

Modelled behaviour (the aspects the paper's evaluation exercises):

* **Dissemination** — low-fanout gossip over a static unidirectional partner
  overlay (each node forwards new transactions to its fixed partners).  The
  small fanout is what makes L∅ the most bandwidth-frugal baseline and also
  the slowest/widest in latency (Fig. 3a/3b).
* **Commitments** — a node attaches a mempool commitment digest when it
  forwards, making reordering detectable afterwards; we charge the bytes and
  keep the latest commitment per peer for the accountability tests.
* **Reconciliation** — periodic digest exchange with a random partner repairs
  gossip misses, giving eventual consistency.

Accountability consequence used by the attack model: an L∅ adversary cannot
inject a transaction straight into a miner's mempool out of band — the
commitment record would expose it — so adversarial transactions travel through
the same gossip as everyone else's.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..mempool.transaction import Transaction
from ..net.events import Message
from ..net.faults import Behavior
from ..utils.rng import derive_rng
from .base import BaselineNode, BaseSystem

__all__ = ["LZeroConfig", "LZeroNode", "LZeroSystem"]

LZERO_TX_KIND = "lzero-tx"
LZERO_DIGEST_KIND = "lzero-digest"
LZERO_REQUEST_KIND = "lzero-request"
LZERO_TXS_KIND = "lzero-txs"

_COMMITMENT_BYTES = 32
_DIGEST_BASE_BYTES = 32


@dataclass(frozen=True, slots=True)
class LZeroConfig:
    """Fanout of the partner overlay and the reconciliation cadence."""

    fanout: int = 3
    reconcile_period_ms: float = 400.0

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ConfigurationError(f"fanout must be positive, got {self.fanout}")
        if self.reconcile_period_ms <= 0:
            raise ConfigurationError("reconcile_period_ms must be positive")


class LZeroNode(BaselineNode):
    """One L∅ participant."""

    def __init__(
        self, node_id, network, config: LZeroConfig, partners: list[int], **kwargs
    ) -> None:
        super().__init__(node_id, network, **kwargs)
        self.config = config
        self.partners = partners
        # Latest mempool commitment received from each peer (accountability).
        self.peer_commitments: dict[int, bytes] = {}
        # Own commitment history: (time, known tx ids) snapshots taken at
        # every reconciliation round.  In L∅ these are witnessed by peers;
        # the audit in repro.baselines.lzero_audit replays them to expose
        # reordering (see Nasrulin et al., §"uncovers reordering attacks").
        self.commitment_history: list[tuple[float, frozenset[int]]] = []

    def submit_transaction(self, tx: Transaction) -> None:
        if self.behavior is Behavior.CRASH:
            return
        self.mark_first_transmission(tx)
        self.deliver_locally(tx)
        self._forward(tx)

    def on_start(self) -> None:
        # The loop runs even for crashed nodes (each round no-ops while the
        # node is down) so a chaos recovery resumes reconciliation without
        # rewiring; see the matching pattern in HermesNode.on_start.
        first = self.config.reconcile_period_ms * (1 + self.rng.random())
        self.schedule(first, self._reconcile_round)

    def on_message(self, sender: int, message: Message) -> None:
        if self.behavior is Behavior.CRASH:
            return
        if message.kind == LZERO_TX_KIND:
            tx, commitment = message.payload
            self.peer_commitments[sender] = commitment
            if (
                self.deliver_locally(tx, sender=sender)
                and self.behavior is not Behavior.DROP_RELAY
            ):
                self._forward(tx)
        elif message.kind == LZERO_DIGEST_KIND:
            self._on_digest(sender, message.payload)
        elif message.kind == LZERO_REQUEST_KIND:
            self._on_request(sender, message.payload)
        elif message.kind == LZERO_TXS_KIND:
            for tx in message.payload:
                self.deliver_locally(tx, sender=sender, via="reconcile")

    # -- gossip over the partner overlay ---------------------------------

    def _forward(self, tx: Transaction) -> None:
        body = (tx, self.mempool.commitment())
        message = Message(
            LZERO_TX_KIND, body, tx.size_bytes + _COMMITMENT_BYTES, tx_id=tx.tx_id
        )
        for partner in self.partners:
            self.send(partner, message)

    # -- reconciliation ----------------------------------------------------

    def _reconcile_round(self) -> None:
        if self.behavior is Behavior.CRASH:
            # Down: no snapshot, no sends, no rng draws — just keep ticking.
            self.schedule(self.config.reconcile_period_ms, self._reconcile_round)
            return
        self.commitment_history.append((self.now, self.mempool.known_ids()))
        if self.partners and self.behavior is not Behavior.DROP_RELAY:
            partner = self.rng.choice(self.partners)
            known = self.mempool.known_ids()
            size = _DIGEST_BASE_BYTES + len(known)
            self.send(partner, Message(LZERO_DIGEST_KIND, known, size))
        self.schedule(self.config.reconcile_period_ms, self._reconcile_round)

    def _on_digest(self, sender: int, known_ids: frozenset[int]) -> None:
        if self.behavior is Behavior.DROP_RELAY:
            return
        missing = self.mempool.absent_locally(known_ids)
        if missing:
            size = _DIGEST_BASE_BYTES + 8 * len(missing)
            self.send(sender, Message(LZERO_REQUEST_KIND, tuple(missing), size))
        extra = [self.mempool.get(i) for i in self.mempool.missing_from(known_ids)]
        extra = [tx for tx in extra if tx is not None]
        if extra:
            self.send(
                sender,
                Message(
                    LZERO_TXS_KIND,
                    tuple(extra),
                    sum(t.size_bytes for t in extra),
                    tx_id=extra[0].tx_id if len(extra) == 1 else None,
                ),
            )

    def _on_request(self, sender: int, tx_ids: tuple[int, ...]) -> None:
        if self.behavior is Behavior.DROP_RELAY:
            return
        txs = [self.mempool.get(i) for i in tx_ids]
        txs = [tx for tx in txs if tx is not None]
        if txs:
            self.send(
                sender,
                Message(
                    LZERO_TXS_KIND,
                    tuple(txs),
                    sum(t.size_bytes for t in txs),
                    tx_id=txs[0].tx_id if len(txs) == 1 else None,
                ),
            )


class LZeroSystem(BaseSystem):
    """A network of :class:`LZeroNode` over a static partner overlay."""

    def __init__(self, physical, config: LZeroConfig | None = None, **kwargs) -> None:
        self.config = config if config is not None else LZeroConfig()
        seed = kwargs.get("seed", 0)
        rng = derive_rng(seed, "lzero-partners")
        node_ids = physical.nodes()
        self._partners: dict[int, list[int]] = {}
        # Sample partner *indices* into the (virtual) node list with self
        # removed, instead of materializing that O(N) list per node.
        # rng.sample's draw sequence depends only on the population length
        # and k, and others[i] == node_ids[i if i < self_idx else i + 1], so
        # this consumes the identical rng stream and picks the identical
        # partners as sampling from the explicit list — just in O(fanout).
        for self_idx, node in enumerate(node_ids):
            count = min(self.config.fanout, len(node_ids) - 1)
            if count:
                picks = rng.sample(range(len(node_ids) - 1), count)
                self._partners[node] = [
                    node_ids[i if i < self_idx else i + 1] for i in picks
                ]
            else:
                self._partners[node] = []
        super().__init__(physical, **kwargs)

    def partners_of(self, node_id: int) -> list[int]:
        return list(self._partners[node_id])

    def _make_node(self, node_id: int, behavior: Behavior) -> LZeroNode:
        return LZeroNode(
            node_id,
            self.network,
            self.config,
            self._partners[node_id],
            behavior=behavior,
            observe_hook=self.observe_hook,
        )
