"""Mercury — clustering-based fast broadcast (Zhou et al., INFOCOM'23).

Modelled features (the "complete version" the paper evaluates, §VIII-A):

* **Virtual Coordinate System (VCS)** — each node derives coordinates from its
  latency to a fixed landmark set; periodic coordinate updates to peers are
  charged as the VCS maintenance overhead of Fig. 3b.
* **Clustering** — nodes are grouped into ``K = 8`` clusters by nearest
  landmark (a k-means-style assignment in latency space);
* **Peer selection** — each node keeps ``D_cluster = 4`` nearest same-cluster
  peers plus its cluster *leader* (the landmark), filling up to ``D_max = 8``
  with further same-cluster peers; inter-cluster traffic flows through the
  leaders, which peer with the other leaders;
* **Early outburst** — on first receipt of a transaction a node immediately
  pushes it to *all* its peers (no batching/pull round), which is what buys
  Mercury its low latency.

Two security properties the attack experiments exploit: Mercury has no
dissemination accountability (any node may send any transaction to any other
node — direct injection), and its inter-cluster connectivity funnels through
the cluster leaders ("this centralized reliance on cluster leaders amplifies
its susceptibility", §VIII-F; "malicious clusters or failures of key nodes can
lead to significant disruptions or network partitioning", §VIII-G).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..mempool.transaction import Transaction
from ..net.events import Message
from ..net.faults import Behavior
from ..net.topology import PhysicalNetwork
from ..utils.rng import derive_rng
from .base import BaselineNode, BaseSystem

__all__ = ["MercuryConfig", "MercuryNode", "MercurySystem"]

MERCURY_TX_KIND = "mercury-tx"
MERCURY_VCS_KIND = "mercury-vcs"

_VCS_UPDATE_BYTES = 64


@dataclass(frozen=True, slots=True)
class MercuryConfig:
    """Paper parameters: K = 8 clusters, D_cluster = 4, D_max = 8."""

    num_clusters: int = 8
    inner_cluster_peers: int = 4
    max_peers: int = 8
    vcs_period_ms: float = 1_000.0

    def __post_init__(self) -> None:
        if self.num_clusters < 1:
            raise ConfigurationError("num_clusters must be positive")
        if self.inner_cluster_peers < 1:
            raise ConfigurationError("inner_cluster_peers must be positive")
        if self.max_peers < self.inner_cluster_peers:
            raise ConfigurationError("max_peers must be >= inner_cluster_peers")
        if self.vcs_period_ms <= 0:
            raise ConfigurationError("vcs_period_ms must be positive")


class MercuryNode(BaselineNode):
    """A Mercury participant with its cluster-aware peer set."""

    def __init__(
        self, node_id, network, config: MercuryConfig, peers: list[int], **kwargs
    ) -> None:
        super().__init__(node_id, network, **kwargs)
        self.config = config
        self.peers = peers

    def submit_transaction(self, tx: Transaction) -> None:
        if self.behavior is Behavior.CRASH:
            return
        self.mark_first_transmission(tx)
        self.deliver_locally(tx)
        self._outburst(tx)

    def on_start(self) -> None:
        if self.behavior is Behavior.CRASH:
            return
        self.schedule(
            self.config.vcs_period_ms * (1 + self.rng.random()), self._vcs_round
        )

    def on_message(self, sender: int, message: Message) -> None:
        if self.behavior is Behavior.CRASH:
            return
        if message.kind == MERCURY_TX_KIND:
            tx: Transaction = message.payload
            fresh = self.deliver_locally(tx, sender=sender)
            # No relay accountability: a colluding node can silently censor
            # the transaction it is racing (marked by the observe hook).
            if fresh and self.behavior is not Behavior.DROP_RELAY and not self.censors(tx):
                self._outburst(tx, skip=sender)
        elif message.kind == MERCURY_VCS_KIND:
            pass  # coordinate bookkeeping has no protocol consequence here

    def _outburst(self, tx: Transaction, skip: int | None = None) -> None:
        """Early outburst: push to every peer immediately."""

        message = Message(MERCURY_TX_KIND, tx, tx.size_bytes, tx_id=tx.tx_id)
        for peer in self.peers:
            if peer != skip:
                self.send(peer, message)

    def _vcs_round(self) -> None:
        message = Message(MERCURY_VCS_KIND, self.node_id, _VCS_UPDATE_BYTES)
        for peer in self.peers:
            self.send(peer, message)
        self.schedule(self.config.vcs_period_ms, self._vcs_round)


def assign_clusters(
    physical: PhysicalNetwork, num_clusters: int, seed: int
) -> tuple[dict[int, int], list[int]]:
    """Nearest-landmark clustering in latency space (a k-means assignment).

    Returns ``(node -> cluster index, landmarks)``; the landmark of a cluster
    is its most central node, the "critical node" an attacker would target.
    """

    node_ids = physical.nodes()
    rng = derive_rng(seed, "mercury-landmarks")
    landmarks = rng.sample(node_ids, min(num_clusters, len(node_ids)))
    assignment = {}
    for node in node_ids:
        assignment[node] = min(
            range(len(landmarks)),
            key=lambda i: physical.transport_latency(node, landmarks[i]),
        )
    return assignment, landmarks


class MercurySystem(BaseSystem):
    """A Mercury deployment: clustered peer graph + early-outburst nodes."""

    def __init__(self, physical, config: MercuryConfig | None = None, **kwargs) -> None:
        self.config = config if config is not None else MercuryConfig()
        seed = kwargs.get("seed", 0)
        self.clusters, self.landmarks = assign_clusters(
            physical, self.config.num_clusters, seed
        )
        rng = derive_rng(seed, "mercury-peers")
        node_ids = physical.nodes()
        by_cluster: dict[int, list[int]] = {}
        for node, cluster in self.clusters.items():
            by_cluster.setdefault(cluster, []).append(node)

        self._peers: dict[int, list[int]] = {}
        landmark_set = set(self.landmarks)
        for node in node_ids:
            cluster = self.clusters[node]
            leader = self.landmarks[cluster]
            same = [peer for peer in by_cluster[cluster] if peer != node]
            same.sort(key=lambda p: (physical.transport_latency(node, p), p))
            if node in landmark_set:
                # Cluster leaders: nearest intra peers + the other leaders
                # (the inter-cluster relay mesh).
                peers = same[: self.config.inner_cluster_peers]
                other_leaders = sorted(
                    (l for l in self.landmarks if l != node),
                    key=lambda l: (physical.transport_latency(node, l), l),
                )
                peers += other_leaders[
                    : max(0, self.config.max_peers - len(peers))
                ]
            else:
                # Regular nodes: the cluster leader plus nearest intra peers.
                peers = [leader] if leader != node else []
                peers += [
                    p for p in same[: self.config.max_peers] if p not in peers
                ][: self.config.max_peers - len(peers)]
            self._peers[node] = peers
        # Connections are TCP sessions — symmetric.  Mirror every edge so the
        # outburst can flow both ways (nearest-neighbour selection alone can
        # leave a node with no inbound edges).
        for node in node_ids:
            for peer in self._peers[node]:
                if node not in self._peers[peer]:
                    self._peers[peer].append(node)
        super().__init__(physical, **kwargs)

    def peers_of(self, node_id: int) -> list[int]:
        return list(self._peers[node_id])

    def _make_node(self, node_id: int, behavior: Behavior) -> MercuryNode:
        return MercuryNode(
            node_id,
            self.network,
            self.config,
            self._peers[node_id],
            behavior=behavior,
            observe_hook=self.observe_hook,
        )
