"""L∅'s reordering audit: commitments expose manipulated block order.

L∅'s accountability story (and the reason our front-running adversary model
denies L∅ nodes deniable censorship/reordering): miners exchange cryptographic
commitments of their mempools *before* exchanging transactions, so a miner's
own commitment timeline pins down when it provably knew each transaction.  A
block that orders transaction B before transaction A — although the miner's
commitments show A was known strictly before B — is evidence of reordering.

:func:`audit_block_order` replays a proposer's commitment history against its
block and returns every such contradiction.  The detection is probabilistic in
the commitment cadence (a reorder between two snapshots of the same round is
invisible), matching the paper's "uncovers reordering attacks with high
probability".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..mempool.blocks import Block

__all__ = ["ReorderingEvidence", "audit_block_order", "first_commitment_round"]


@dataclass(frozen=True, slots=True)
class ReorderingEvidence:
    """One detected contradiction between block order and commitments."""

    earlier_tx: int  # committed first...
    later_tx: int  # ...but ordered after this one in the block
    earlier_committed_at: float
    later_committed_at: float


def first_commitment_round(
    history: Sequence[tuple[float, frozenset[int]]], tx_id: int
) -> float | None:
    """The time of the first commitment containing *tx_id* (None if never)."""

    for when, known in history:
        if tx_id in known:
            return when
    return None


def audit_block_order(
    history: Sequence[tuple[float, frozenset[int]]], block: Block
) -> list[ReorderingEvidence]:
    """Find all block-order/commitment-order contradictions.

    A pair (A, B) is evidence when A's first committed round is *strictly
    earlier* than B's, yet the block places B before A.  Transactions never
    committed (arrived after the last snapshot) cannot be adjudicated and are
    skipped — the probabilistic part of the guarantee.
    """

    committed_at: dict[int, float] = {}
    for tx_id in block.tx_ids:
        when = first_commitment_round(history, tx_id)
        if when is not None:
            committed_at[tx_id] = when

    evidence: list[ReorderingEvidence] = []
    ordered = [tx for tx in block.tx_ids if tx in committed_at]
    for position, later in enumerate(ordered):
        for earlier in ordered[position + 1 :]:
            # `earlier` sits AFTER `later` in the block; contradiction when
            # it was committed strictly before.
            if committed_at[earlier] < committed_at[later]:
                evidence.append(
                    ReorderingEvidence(
                        earlier_tx=earlier,
                        later_tx=later,
                        earlier_committed_at=committed_at[earlier],
                        later_committed_at=committed_at[later],
                    )
                )
    return evidence
