"""Baseline dissemination protocols, all on the common simulation framework.

* :mod:`gossip` — plain push gossip (Table I's "Gossip" column);
* :mod:`simple_tree` — a single fixed tree overlay (Table I's "Simple Tree");
* :mod:`lzero` — L∅ (Nasrulin et al., Middleware'23): accountable low-fanout
  gossip with commitments and periodic mempool reconciliation;
* :mod:`narwhal` — Narwhal (Danezis et al., EuroSys'22): batch broadcast with
  2f+1 availability certificates;
* :mod:`mercury` — Mercury (Zhou et al., INFOCOM'23): virtual-coordinate
  clustering with early outburst;
* :mod:`f3b` — F3B-style commit-then-reveal dissemination: content stays
  hidden until each transaction's mempool position is locked (defense
  baseline for the :mod:`repro.adversary` strategy zoo).

Every system exposes the same driving surface as
:class:`repro.core.HermesSystem` (``start`` / ``submit`` / ``run`` / ``stats``)
so the experiment harness treats all five protocols uniformly.
"""

from .base import BaseSystem
from .f3b import F3BConfig, F3BNode, F3BSystem
from .gossip import GossipConfig, GossipNode, GossipSystem
from .lzero import LZeroConfig, LZeroNode, LZeroSystem
from .mercury import MercuryConfig, MercuryNode, MercurySystem
from .narwhal import NarwhalConfig, NarwhalNode, NarwhalSystem
from .simple_tree import SimpleTreeConfig, SimpleTreeNode, SimpleTreeSystem

__all__ = [
    "BaseSystem",
    "F3BConfig",
    "F3BNode",
    "F3BSystem",
    "GossipConfig",
    "GossipNode",
    "GossipSystem",
    "LZeroConfig",
    "LZeroNode",
    "LZeroSystem",
    "MercuryConfig",
    "MercuryNode",
    "MercurySystem",
    "NarwhalConfig",
    "NarwhalNode",
    "NarwhalSystem",
    "SimpleTreeConfig",
    "SimpleTreeNode",
    "SimpleTreeSystem",
]
