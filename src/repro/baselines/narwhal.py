"""Narwhal — DAG-mempool batch dissemination (Danezis et al., EuroSys'22).

Modelled pipeline for one transaction (batch of one, matching the paper's
single-transaction dissemination measurements):

1. the origin accumulates the transaction into a worker batch (honest workers
   seal batches on a timer — ``batch_delay_ms``; a Byzantine worker is free to
   seal instantly, which is one of its front-running levers);
2. the origin sends the batch to every *validator*;
3. validators push the batch to their *subscriber* nodes (a 10,000-node
   network cannot be all validators; non-validators sync from a few validator
   contacts — this is the "coordination dependencies between nodes" the paper
   blames for Narwhal's latency spread);
4. every batch receiver returns an availability ack to the origin ("collecting
   batch approvals from two-thirds of the network", §VIII-D); a quorum of
   validator acks forms the availability certificate, which is broadcast along
   the same paths.

A node's *mempool* holds the transaction from batch arrival (that is what a
local proposer orders by); the certificate makes it referenceable by a DAG
consensus and is tracked separately (``certified_ids``).  Byzantine validators
neither push to subscribers nor ack, so a node whose validator contacts are
all faulty misses the transaction: that is Narwhal's robustness degradation in
Fig. 5b.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..mempool.transaction import Transaction
from ..net.events import Message
from ..net.faults import Behavior
from ..utils.rng import derive_rng
from .base import BaselineNode, BaseSystem

__all__ = ["NarwhalConfig", "NarwhalNode", "NarwhalSystem"]

BATCH_KIND = "narwhal-batch"
ACK_KIND = "narwhal-ack"
CERT_KIND = "narwhal-cert"

_ACK_BYTES = 64
_CERT_BYTES = 96
_BATCH_HEADER_BYTES = 48


@dataclass(frozen=True, slots=True)
class NarwhalConfig:
    """Validator-set sizing and subscription fanout."""

    # Number of validators; None = max(4, n // 3).
    num_validators: int | None = None
    subscriptions_per_node: int = 2
    # Honest workers seal a batch this long after the first transaction.
    batch_delay_ms: float = 60.0
    # Fraction of the *validators* whose acks certify availability.  All
    # batch receivers ack (the network-wide approval traffic of §VIII-D), but
    # liveness of certificate formation must not hinge on subscribers of
    # faulty validators ever seeing the batch, so the quorum counts validator
    # acks only.
    ack_quorum_fraction: float = 1 / 2

    def __post_init__(self) -> None:
        if self.num_validators is not None and self.num_validators < 1:
            raise ConfigurationError("num_validators must be positive when set")
        if self.subscriptions_per_node < 1:
            raise ConfigurationError("subscriptions_per_node must be positive")
        if not 0 < self.ack_quorum_fraction <= 1:
            raise ConfigurationError("ack_quorum_fraction must be in (0, 1]")


@dataclass
class _BatchState:
    """Origin-side certificate assembly for one batch."""

    acks: set[int] = field(default_factory=set)
    certified: bool = False


class NarwhalNode(BaselineNode):
    """One Narwhal participant (validator or subscriber)."""

    def __init__(
        self,
        node_id,
        network,
        config: NarwhalConfig,
        validators: list[int],
        subscribers: list[int],
        **kwargs,
    ) -> None:
        super().__init__(node_id, network, **kwargs)
        self.config = config
        self.validators = validators
        self.subscribers = subscribers  # nodes that sync from us (validators only)
        self._batches: dict[int, Transaction] = {}
        self._certs: set[int] = set()
        self._origin_state: dict[int, _BatchState] = {}
        self.certified_ids: set[int] = set()

    @property
    def is_validator(self) -> bool:
        return bool(self.subscribers) or self.node_id in self.validators

    # -- sending -----------------------------------------------------------

    def submit_transaction(self, tx: Transaction) -> None:
        if self.behavior is Behavior.CRASH:
            return
        # Honest workers wait for the batch timer; a Byzantine front-runner
        # seals its batch immediately (local policy, unobservable).
        delay = (
            0.0
            if self.behavior is Behavior.FRONT_RUN
            else self.config.batch_delay_ms
        )
        if delay > 0:
            self.schedule(delay, lambda: self._broadcast_batch(tx))
        else:
            self._broadcast_batch(tx)

    def _broadcast_batch(self, tx: Transaction) -> None:
        self.mark_first_transmission(tx)
        self._origin_state[tx.tx_id] = _BatchState()
        self._on_batch(self.node_id, tx)
        message = Message(
            BATCH_KIND, tx, tx.size_bytes + _BATCH_HEADER_BYTES, tx_id=tx.tx_id
        )
        for validator in self.validators:
            if validator != self.node_id:
                self.send(validator, message)

    # -- receiving -----------------------------------------------------------

    def on_message(self, sender: int, message: Message) -> None:
        if self.behavior is Behavior.CRASH:
            return
        if message.kind == BATCH_KIND:
            self._on_batch(sender, message.payload)
        elif message.kind == ACK_KIND:
            self._on_ack(sender, message.payload)
        elif message.kind == CERT_KIND:
            self._on_cert(sender, message.payload)

    def _on_batch(self, sender: int, tx: Transaction) -> None:
        if tx.tx_id in self._batches:
            return
        self._batches[tx.tx_id] = tx
        # Mempool arrival: a local proposer orders by this moment, and the
        # observe hook fires here (a tapping adversary sees content on
        # receipt).  The *measured* delivery — when the transaction becomes
        # referenceable by a DAG consensus — additionally needs the
        # availability certificate (see _maybe_record_usable).
        self.deliver_locally(tx, record_stats=False, sender=sender)
        self._maybe_record_usable(tx.tx_id)
        if self.censors(tx):
            return
        if tx.origin != self.node_id:
            # Availability ack back to the origin (honest nodes only).
            if self.behavior is not Behavior.DROP_RELAY:
                self.send(
                    tx.origin, Message(ACK_KIND, tx.tx_id, _ACK_BYTES, tx_id=tx.tx_id)
                )
        if self.behavior is Behavior.DROP_RELAY:
            return
        push = Message(
            BATCH_KIND, tx, tx.size_bytes + _BATCH_HEADER_BYTES, tx_id=tx.tx_id
        )
        if self.node_id in self.validators:
            # Worker batch sync: each validator relays the batch once to all
            # other validators so availability survives a faulty origin.
            # This all-to-all amplification is Narwhal's bandwidth price
            # ("intensive broadcast structure", §VIII-D).
            for validator in self.validators:
                if validator not in (self.node_id, sender, tx.origin):
                    self.send(validator, push)
        # Validators push the batch down to their subscribers.
        for subscriber in self.subscribers:
            if subscriber not in (self.node_id, sender, tx.origin):
                self.send(subscriber, push)

    def _on_ack(self, sender: int, tx_id: int) -> None:
        state = self._origin_state.get(tx_id)
        if state is None or state.certified:
            return
        state.acks.add(sender)
        validator_acks = sum(1 for a in state.acks if a in set(self.validators))
        quorum = int(self.config.ack_quorum_fraction * len(self.validators)) + 1
        if validator_acks + 1 >= quorum:  # +1: the origin's own availability
            state.certified = True
            self._broadcast_cert(tx_id)

    def _broadcast_cert(self, tx_id: int) -> None:
        self._on_cert(self.node_id, tx_id)
        message = Message(CERT_KIND, tx_id, _CERT_BYTES, tx_id=tx_id)
        for validator in self.validators:
            if validator != self.node_id:
                self.send(validator, message)

    def _on_cert(self, sender: int, tx_id: int) -> None:
        if tx_id in self._certs:
            return
        self._certs.add(tx_id)
        self._maybe_record_usable(tx_id)
        if self.subscribers and self.behavior is not Behavior.DROP_RELAY:
            message = Message(CERT_KIND, tx_id, _CERT_BYTES, tx_id=tx_id)
            for subscriber in self.subscribers:
                if subscriber != self.node_id:
                    self.send(subscriber, message)

    def _maybe_record_usable(self, tx_id: int) -> None:
        """Batch + certificate both present: the transaction is available to
        the DAG consensus — the delivery the latency/robustness figures use."""

        if tx_id in self.certified_ids:
            return
        if tx_id in self._certs and tx_id in self._batches:
            self.certified_ids.add(tx_id)
            self.network.stats.record_delivery(tx_id, self.node_id, self.now)


class NarwhalSystem(BaseSystem):
    """A Narwhal deployment: validators plus subscribing full nodes."""

    def __init__(self, physical, config: NarwhalConfig | None = None, **kwargs) -> None:
        self.config = config if config is not None else NarwhalConfig()
        seed = kwargs.get("seed", 0)
        node_ids = physical.nodes()
        count = (
            self.config.num_validators
            if self.config.num_validators is not None
            else max(4, len(node_ids) // 3)
        )
        count = min(count, len(node_ids))
        rng = derive_rng(seed, "narwhal-validators")
        self.validators = sorted(rng.sample(node_ids, count))
        validator_set = set(self.validators)

        # Every non-validator subscribes to a few validators.
        self._subscribers: dict[int, list[int]] = {v: [] for v in self.validators}
        for node in node_ids:
            if node in validator_set:
                continue
            picks = rng.sample(
                self.validators,
                min(self.config.subscriptions_per_node, len(self.validators)),
            )
            for validator in picks:
                self._subscribers[validator].append(node)
        super().__init__(physical, **kwargs)

    def _make_node(self, node_id: int, behavior: Behavior) -> NarwhalNode:
        return NarwhalNode(
            node_id,
            self.network,
            self.config,
            self.validators,
            self._subscribers.get(node_id, []),
            behavior=behavior,
            observe_hook=self.observe_hook,
        )
