"""Open-loop load over a sharded deployment, one global schedule in, one
aggregate result out.

:class:`ShardedLoadDriver` wraps the existing single-system
:class:`~repro.load.LoadDriver` without re-implementing any of its mechanics:
the global arrival schedule (origins drawn from the whole
``0..total_nodes-1`` space) is split by :meth:`ShardedSystem.place` into one
per-shard sub-schedule, and each shard then runs an ordinary ``LoadDriver``
over its slice.  Cross-shard submissions re-enter at their routed time and
mirror ingress node, so the hop cost shows up in that transaction's measured
latency exactly like any other queueing delay.

With one shard the split is the identity function — every injection object
passes through untouched, in order, and the per-shard driver receives the
exact schedule the unsharded driver would have built.  That is the load-path
half of the ``k=1`` byte-identity contract
(``tests/integration/test_sharding_identity.py``).

Aggregate accounting: *offered* load is the global schedule over the
injection window; *goodput* is the sum of per-shard goodputs — the quantity
Fig. 9 scales in the shard count; latency summaries are delivery-weighted
across shards (p95 conservatively reported as the worst shard's p95).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable

from ..load.arrival import ArrivalProcess, Injection
from ..load.driver import LoadDriver, LoadResult
from .system import ShardedSystem

__all__ = ["ShardedLoadDriver", "ShardedLoadResult"]


class _FixedSchedule:
    """An :class:`~repro.load.ArrivalProcess` stand-in replaying a fixed split.

    ``LoadDriver`` only calls ``schedule(duration_ms)``; handing it the
    pre-split tuple keeps every per-shard run on the untouched driver code
    path.
    """

    __slots__ = ("_schedule",)

    def __init__(self, schedule: tuple[Injection, ...]) -> None:
        self._schedule = schedule

    def schedule(self, duration_ms: float) -> tuple[Injection, ...]:
        return self._schedule


@dataclass(frozen=True, slots=True)
class ShardedLoadResult:
    """Aggregate measurements of one sharded run (per-shard results attached).

    ``aggregate_goodput_tps`` is the Fig. 9 scaling quantity; ``routed`` /
    ``routed_fraction`` expose how much of the offered load crossed shards
    (and therefore paid the router hop).  Latency fields follow the
    :class:`~repro.load.LoadResult` convention of ``None`` when nothing was
    delivered.
    """

    protocol: str
    num_shards: int
    total_nodes: int
    offered_tps: float
    injected: int
    delivered: int
    aggregate_goodput_tps: float
    mean_ms: float | None
    p95_ms: float | None
    routed: int
    routed_fraction: float
    duration_ms: float
    horizon_ms: float
    per_shard: tuple[LoadResult, ...]

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.injected if self.injected else 0.0

    def to_json(self) -> dict[str, Any]:
        return {
            "protocol": self.protocol,
            "num_shards": self.num_shards,
            "total_nodes": self.total_nodes,
            "offered_tps": self.offered_tps,
            "injected": self.injected,
            "delivered": self.delivered,
            "aggregate_goodput_tps": self.aggregate_goodput_tps,
            "mean_ms": self.mean_ms,
            "p95_ms": self.p95_ms,
            "routed": self.routed,
            "routed_fraction": self.routed_fraction,
            "duration_ms": self.duration_ms,
            "horizon_ms": self.horizon_ms,
            "per_shard": [result.to_json() for result in self.per_shard],
        }

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "ShardedLoadResult":
        fields = {
            spec: doc[spec] for spec in cls.__slots__ if spec != "per_shard"
        }
        fields["per_shard"] = tuple(
            LoadResult.from_json(entry) for entry in doc["per_shard"]
        )
        return cls(**fields)


class ShardedLoadDriver:
    """Split one global schedule across shards and run each slice (module doc).

    *key_fn* maps an :class:`~repro.load.Injection` to the sharding key its
    transaction carries; the default uses the origin node id (client
    identity), which is what the fig9 grid measures.  Pass e.g. a Zipf
    contract-key sampler to exercise the hot-key policy instead.
    """

    def __init__(
        self,
        system: ShardedSystem,
        arrivals: ArrivalProcess,
        *,
        protocol: str = "",
        delivery_fraction: float = 0.99,
        sample_interval_ms: float = 250.0,
        key_fn: Callable[[Injection], Hashable] | None = None,
    ) -> None:
        self.system = system
        self.arrivals = arrivals
        self.protocol = protocol or system.protocol
        self.delivery_fraction = delivery_fraction
        self.sample_interval_ms = sample_interval_ms
        self.key_fn = key_fn

    def _split(
        self, schedule: tuple[Injection, ...]
    ) -> list[list[Injection]]:
        per_shard: list[list[Injection]] = [
            [] for _ in range(self.system.num_shards)
        ]
        for injection in schedule:
            key = self.key_fn(injection) if self.key_fn is not None else None
            placed = self.system.place(injection.time_ms, injection.origin, key)
            if not placed.routed and placed.origin_local == injection.origin:
                # Same shard, same local id: pass the original object through
                # (the k=1 identity path literally replays the input tuple).
                per_shard[placed.shard].append(injection)
            else:
                per_shard[placed.shard].append(
                    Injection(time_ms=placed.time_ms, origin=placed.origin_local)
                )
        return per_shard

    def run(
        self, duration_ms: float, drain_ms: float = 0.0
    ) -> ShardedLoadResult:
        """Inject for *duration_ms* globally, drain *drain_ms*, aggregate."""

        schedule = self.arrivals.schedule(duration_ms)
        per_shard = self._split(schedule)
        results: list[LoadResult] = []
        for shard, slice_ in zip(self.system.shards, per_shard):
            if self.system.obs is not None:
                # Shards run one after another; the shared tracer clock must
                # follow the simulator that is actually advancing.
                self.system.obs.attach(shard.system.simulator)
            driver = LoadDriver(
                shard.system,
                _FixedSchedule(tuple(slice_)),
                protocol=self.protocol,
                delivery_fraction=self.delivery_fraction,
                sample_interval_ms=self.sample_interval_ms,
            )
            results.append(driver.run(duration_ms, drain_ms))
        return self._aggregate(schedule, results, duration_ms, drain_ms)

    def _aggregate(
        self,
        schedule: tuple[Injection, ...],
        results: list[LoadResult],
        duration_ms: float,
        drain_ms: float,
    ) -> ShardedLoadResult:
        duration_s = duration_ms / 1000.0
        delivered = sum(result.delivered for result in results)
        weighted = [
            (result.mean_ms, result.delivered)
            for result in results
            if result.mean_ms is not None and result.delivered
        ]
        mean_ms = (
            sum(value * weight for value, weight in weighted)
            / sum(weight for _, weight in weighted)
            if weighted
            else None
        )
        p95s = [
            result.p95_ms for result in results if result.p95_ms is not None
        ]
        return ShardedLoadResult(
            protocol=self.protocol,
            num_shards=self.system.num_shards,
            total_nodes=self.system.total_nodes,
            offered_tps=len(schedule) / duration_s,
            injected=len(schedule),
            delivered=delivered,
            aggregate_goodput_tps=delivered / duration_s,
            mean_ms=mean_ms,
            p95_ms=max(p95s) if p95s else None,
            routed=self.system.router.routed,
            routed_fraction=(
                self.system.router.routed / len(schedule) if schedule else 0.0
            ),
            duration_ms=duration_ms,
            horizon_ms=duration_ms + drain_ms,
            per_shard=tuple(results),
        )
