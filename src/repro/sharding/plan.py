"""The shard plan: how global node ids map onto per-shard deployments.

A sharded deployment of ``total_nodes`` nodes splits into ``num_shards``
equal slices of ``shard_size`` nodes each.  Globally, node ``g`` lives on
shard ``g // shard_size`` at local position ``g % shard_size`` — every shard
runs its own simulator over its own node-id space ``0..shard_size-1``, so
the per-shard protocol systems, overlays and TRS committees are completely
ordinary single-shard deployments and reuse the whole existing stack
unchanged.

The equal-slice layout is deliberate: every shard is a *mirrored* deployment
(same size, same topology seed), so the expensive physical-network + overlay
build is paid once through the experiment-environment cache and ``num_shards
= 1`` degenerates to exactly the unsharded system.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["ShardPlan"]


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """Equal-slice global ↔ (shard, local) node-id arithmetic."""

    num_shards: int
    total_nodes: int

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.total_nodes < self.num_shards:
            raise ConfigurationError(
                f"{self.total_nodes} nodes cannot host {self.num_shards} shards"
            )
        if self.total_nodes % self.num_shards:
            raise ConfigurationError(
                f"total_nodes ({self.total_nodes}) must divide evenly into "
                f"{self.num_shards} shards; pad or trim the deployment"
            )

    @property
    def shard_size(self) -> int:
        return self.total_nodes // self.num_shards

    def shard_of(self, global_id: int) -> int:
        """The home shard of a global node id."""

        self._check(global_id)
        return global_id // self.shard_size

    def to_local(self, global_id: int) -> int:
        """A global node id's position inside its home shard."""

        self._check(global_id)
        return global_id % self.shard_size

    def to_global(self, shard: int, local_id: int) -> int:
        """The global id of local node *local_id* on *shard*."""

        if not 0 <= shard < self.num_shards:
            raise ConfigurationError(f"no shard {shard} in a {self.num_shards}-shard plan")
        if not 0 <= local_id < self.shard_size:
            raise ConfigurationError(
                f"local id {local_id} outside shard of size {self.shard_size}"
            )
        return shard * self.shard_size + local_id

    def globals_of(self, shard: int) -> range:
        """All global node ids living on *shard* (contiguous by layout)."""

        base = self.to_global(shard, 0)
        return range(base, base + self.shard_size)

    def _check(self, global_id: int) -> None:
        if not 0 <= global_id < self.total_nodes:
            raise ConfigurationError(
                f"global node id {global_id} outside 0..{self.total_nodes - 1}"
            )
