"""The cross-shard partition drill: one committee islanded, the rest must not care.

Sharding's resilience claim is *blast-radius containment*: a fault that takes
out one shard's TRS committee is a fault in **that shard only**.  This module
turns the claim into an executable invariant.  :func:`run_cross_shard_partition`
builds a :class:`~repro.sharding.ShardedSystem`, applies the
``cross-shard-partition`` builtin scenario's committee partition to exactly
one shard (through the same :class:`~repro.chaos.disruption.LinkDisruptor`
machinery the chaos engine uses), drives the same deterministic workload
through every shard, and snapshots per-transaction mempool coverage at each
liveness deadline.

Two things must hold:

* the **untouched shards never notice** — every one of their transactions
  reaches full coverage by its deadline exactly as in a fault-free run
  (:attr:`CrossShardPartitionReport.healthy_shards_live`, enforced when
  ``strict=True``);
* the **partitioned shard degrades gracefully** — fresh TRS requests die
  against the islanded committee (there is no request retry), but
  submissions land in their origin's mempool first, the gossip fallback
  keeps spreading them among non-committee nodes, and the committee catches
  up after the heal, inside the deadline budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..chaos.disruption import LinkDisruptor
from ..chaos.scenario import ChaosScenario, get_scenario
from ..errors import ConfigurationError
from ..mempool.transaction import Transaction, reset_tx_ids
from ..net.events import reset_message_ids
from ..obs import Observability
from ..utils.rng import derive_rng
from .system import ShardedSystem

__all__ = [
    "ShardLiveness",
    "CrossShardPartitionReport",
    "run_cross_shard_partition",
]


@dataclass(frozen=True, slots=True)
class ShardLiveness:
    """One shard's delivery-liveness verdict under the drill."""

    shard: int
    partitioned: bool
    transactions: int
    #: Transactions at/above the scenario's ``min_coverage`` by deadline.
    delivered_by_deadline: int
    #: Worst per-transaction coverage observed at its deadline.
    min_coverage: float
    live: bool

    def to_json(self) -> dict[str, Any]:
        return {
            "shard": self.shard,
            "partitioned": self.partitioned,
            "transactions": self.transactions,
            "delivered_by_deadline": self.delivered_by_deadline,
            "min_coverage": self.min_coverage,
            "live": self.live,
        }


@dataclass(frozen=True, slots=True)
class CrossShardPartitionReport:
    """The whole drill's outcome, one liveness verdict per shard."""

    scenario: str
    protocol: str
    num_shards: int
    partitioned_shard: int
    horizon_ms: float
    per_shard: tuple[ShardLiveness, ...]

    @property
    def healthy_shards_live(self) -> bool:
        """The containment invariant: every untouched shard stayed live."""

        return all(
            entry.live for entry in self.per_shard if not entry.partitioned
        )

    @property
    def partitioned_shard_live(self) -> bool:
        """Did gossip carry even the islanded shard through its deadlines?"""

        return all(
            entry.live for entry in self.per_shard if entry.partitioned
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "protocol": self.protocol,
            "num_shards": self.num_shards,
            "partitioned_shard": self.partitioned_shard,
            "horizon_ms": self.horizon_ms,
            "healthy_shards_live": self.healthy_shards_live,
            "partitioned_shard_live": self.partitioned_shard_live,
            "per_shard": [entry.to_json() for entry in self.per_shard],
        }


def run_cross_shard_partition(
    num_shards: int = 3,
    shard_size: int = 16,
    *,
    protocol: str = "hermes",
    partitioned_shard: int = 0,
    f: int = 1,
    k: int = 4,
    seed: int = 0,
    system_seed: int = 13,
    scenario: ChaosScenario | None = None,
    obs: Observability | None = None,
    strict: bool = False,
) -> CrossShardPartitionReport:
    """Partition one shard's committee; report (and optionally enforce) liveness.

    *scenario* defaults to the ``cross-shard-partition`` builtin and supplies
    the partition window, the per-shard workload and the liveness deadline.
    With ``strict=True`` a healthy shard missing a deadline raises
    :class:`~repro.errors.ConfigurationError` — the form the chaos suite's
    invariant checks take.
    """

    if scenario is None:
        scenario = get_scenario("cross-shard-partition")
    if not 0 <= partitioned_shard < num_shards:
        raise ConfigurationError(
            f"no shard {partitioned_shard} in a {num_shards}-shard deployment"
        )
    reset_tx_ids()
    reset_message_ids()
    system = ShardedSystem(
        num_shards,
        num_shards * shard_size,
        protocol=protocol,
        f=f,
        k=k,
        seed=seed,
        system_seed=system_seed,
        obs=obs,
    )
    partition_events = [
        event for event in scenario.events if event.kind == "committee-partition"
    ]
    submit_times = scenario.workload.submit_times()

    # Compile phase: schedule each shard's workload, the one partition, and
    # the deadline coverage snapshots, before any simulator advances.
    coverage: dict[int, dict[int, float]] = {}
    applied_partition = False
    for shard in system.shards:
        simulator = shard.system.simulator
        committee = set(shard.committee)
        if shard.shard_id == partitioned_shard and committee:
            disruptor = LinkDisruptor(
                derive_rng(seed, "cross-shard-partition", shard.shard_id)
            )
            shard.system.network.disruptor = disruptor
            for event in partition_events:
                disruptor.add_partition(
                    event.at_ms, event.heal_ms, frozenset(committee)
                )
                applied_partition = True
        rng = derive_rng(seed, "cross-shard-workload", shard.shard_id)
        pool = [n for n in shard.node_ids if n not in committee]
        if len(pool) < len(submit_times):
            raise ConfigurationError(
                f"shard {shard.shard_id}: {len(pool)} candidate origins cannot "
                f"host {len(submit_times)} distinct-origin submissions"
            )
        origins = sorted(rng.sample(pool, len(submit_times)))
        shard_coverage: dict[int, float] = {}
        coverage[shard.shard_id] = shard_coverage
        node_count = len(shard.system.nodes)
        for origin, time_ms in zip(origins, submit_times):
            tx = Transaction.create(origin=origin, created_at=time_ms)
            simulator.schedule_at(
                time_ms, lambda t=tx, s=shard.system: s.submit(t.origin, t)
            )

            def snapshot(
                tx_id: int = tx.tx_id,
                s: Any = shard.system,
                book: dict[int, float] = shard_coverage,
                total: int = node_count,
            ) -> None:
                held = sum(1 for node in s.nodes.values() if tx_id in node.mempool)
                book[tx_id] = held / total

            simulator.schedule_at(
                time_ms + scenario.liveness_deadline_ms, snapshot
            )

    if partition_events and not applied_partition:
        # Committee-free baselines have nothing to island; the drill is then
        # vacuous, matching the chaos engine's applied=False convention.
        pass

    system.start()
    system.run(until_ms=scenario.horizon_ms)

    per_shard = []
    for shard in system.shards:
        book = coverage[shard.shard_id]
        delivered = sum(
            1 for cov in book.values() if cov >= scenario.min_coverage
        )
        worst = min(book.values(), default=0.0)
        per_shard.append(
            ShardLiveness(
                shard=shard.shard_id,
                partitioned=(
                    shard.shard_id == partitioned_shard and applied_partition
                ),
                transactions=len(book),
                delivered_by_deadline=delivered,
                min_coverage=worst,
                live=delivered == len(book),
            )
        )
    report = CrossShardPartitionReport(
        scenario=scenario.name,
        protocol=protocol,
        num_shards=num_shards,
        partitioned_shard=partitioned_shard,
        horizon_ms=scenario.horizon_ms,
        per_shard=tuple(per_shard),
    )
    if strict and not report.healthy_shards_live:
        failing = [
            entry.shard
            for entry in report.per_shard
            if not entry.partitioned and not entry.live
        ]
        raise ConfigurationError(
            f"non-partitioned shards {failing} missed delivery deadlines — "
            "the partition leaked outside its shard"
        )
    return report
