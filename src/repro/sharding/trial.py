"""Adversary trials against a sharded deployment, one strategy at a time.

Sharding changes the adversary's position: a coalition holding a fraction of
the *global* stake holds the same fraction of **each** shard (the fault plan
is drawn per shard at the same fraction), but every shard has its own TRS
committee and its own victim population, so an attack that relies on
observing the victim early has to succeed inside the victim's shard — it
cannot borrow vantage points from elsewhere.  The per-shard trials reuse the
PR 7 strategy zoo (:func:`~repro.adversary.run_adversary_trial`) completely
unchanged; this module only arranges the per-shard deployments and folds the
per-shard fairness reports through
:func:`~repro.sharding.fairness.cross_shard_fairness`.

Construction mirrors :class:`~repro.sharding.system.ShardedSystem` exactly
(shared mirrored environment, ``system_seed + shard_id`` per shard,
``HermesConfig.shard_id`` only when sharded) — but goes through the factory
contract the zoo needs, because the zoo must install the fault plan *before*
the system is built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..adversary.zoo import AdversaryTrialResult, run_adversary_trial
from ..utils.rng import derive_rng
from .fairness import CrossShardFairness, cross_shard_fairness
from .plan import ShardPlan

__all__ = ["ShardedTrialResult", "run_sharded_adversary_trial"]


@dataclass(frozen=True, slots=True)
class ShardedTrialResult:
    """One strategy's outcome across every shard of one deployment."""

    strategy: str
    malicious_fraction: float
    num_shards: int
    fairness: CrossShardFairness
    #: Shards on which the adversary front-ran its victim.
    attacker_wins: int
    #: Shards on which the victim transaction was censored out of the block.
    victims_censored: int
    per_shard: Mapping[int, AdversaryTrialResult]

    def as_record(self) -> dict[str, Any]:
        """Flat JSON-friendly summary (one fig9 grid cell's fairness half)."""

        return {
            "strategy": self.strategy,
            "malicious_fraction": self.malicious_fraction,
            "num_shards": self.num_shards,
            "gamma": self.fairness.gamma,
            "inversion_rate": self.fairness.inversion_rate,
            "worst_shard": self.fairness.worst_shard,
            "attacker_wins": self.attacker_wins,
            "victims_censored": self.victims_censored,
        }


def run_sharded_adversary_trial(
    num_shards: int,
    total_nodes: int,
    *,
    strategy: str,
    malicious_fraction: float,
    protocol: str = "hermes",
    f: int = 1,
    k: int = 4,
    seed: int = 0,
    system_seed: int = 13,
    hermes_overrides: Mapping[str, Any] | None = None,
    trial_seed: int = 0,
    victim_fee: float = 0.0,
    background_txs: int = 24,
    proposal_delay_ms: float | None = None,
    horizon_ms: float = 5_000.0,
    protect_committee: bool = False,
) -> ShardedTrialResult:
    """Run *strategy* at *malicious_fraction* against every shard; aggregate.

    Each shard draws its own victim/proposer pair and its own coalition from
    ``derive_rng(trial_seed, "shard-trial", shard_id)`` — independent attacks
    on independent committees, which is the property the fig9 fairness
    columns measure.  *protect_committee* keeps each shard's TRS committee
    honest (the accountable-committee assumption; off by default so the
    coalition draw matches the unsharded fig7 trials).
    """

    from ..experiments.harness import build_environment, protocol_factories

    plan = ShardPlan(num_shards=num_shards, total_nodes=total_nodes)
    env = build_environment(num_nodes=plan.shard_size, f=f, k=k, seed=seed)
    node_ids = list(range(plan.shard_size))
    trials: dict[int, AdversaryTrialResult] = {}
    for sid in range(num_shards):
        overrides = dict(hermes_overrides or {})
        if num_shards > 1:
            overrides.setdefault("shard_id", sid)
        factories = protocol_factories(
            env, seed=system_seed + sid, hermes_overrides=overrides
        )
        factory = factories[protocol]
        rng = derive_rng(trial_seed, "shard-trial", sid)
        victim, proposer = rng.sample(node_ids, 2)
        protected: tuple[int, ...] = ()
        if protect_committee:
            probe = factory(None, None)
            protected = tuple(getattr(probe, "committee", ()))
        trials[sid] = run_adversary_trial(
            factory,
            node_ids,
            strategy,
            malicious_fraction,
            victim,
            proposer,
            victim_fee=victim_fee,
            background_txs=background_txs,
            proposal_delay_ms=proposal_delay_ms,
            horizon_ms=horizon_ms,
            seed=trial_seed * num_shards + sid,
            protected=protected,
        )
    fairness = cross_shard_fairness(
        {sid: trial.fairness for sid, trial in trials.items()}
    )
    return ShardedTrialResult(
        strategy=trials[0].strategy,
        malicious_fraction=malicious_fraction,
        num_shards=num_shards,
        fairness=fairness,
        attacker_wins=sum(
            1 for trial in trials.values() if trial.verdict.attacker_won
        ),
        victims_censored=sum(
            1 for trial in trials.values() if trial.verdict.victim_censored
        ),
        per_shard=trials,
    )
