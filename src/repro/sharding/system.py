"""The sharded deployment: independent per-shard systems behind one facade.

A :class:`ShardedSystem` partitions a ``total_nodes`` deployment into
``num_shards`` mirrored slices (:class:`~repro.sharding.plan.ShardPlan`) and
instantiates one complete protocol system per slice — its own simulator,
network, overlay family and (for HERMES) its own TRS committee — through the
ordinary :func:`~repro.experiments.harness.protocol_factories`.  Because
every shard has the same size and topology seed, the expensive physical
network + overlay build is paid **once** via the experiment-environment
cache, and a single-shard system is *constructed identically* to the
unsharded one (the byte-identity contract pinned by
``tests/integration/test_sharding_identity.py``).

What differs per shard:

* the protocol system seed (``system_seed + shard_id``), so committees,
  gossip peers and jitter streams are independent across shards;
* the optional fault plan / observe hook (per-shard Byzantine coalitions);
* the :class:`~repro.obs.TaggedObservability` view stamping ``shard=i`` on
  every trace event;
* for HERMES with more than one shard, ``HermesConfig.shard_id`` — envelopes
  carry their shard and relays reject mis-routed traffic at admission.

Shards advance **sequentially and deterministically**: each shard's
simulator runs to the horizon before the next starts, so a sharded run is
replayable from its seeds exactly like every other run in this repository.
Cross-shard traffic enters through the
:class:`~repro.sharding.router.CrossShardRouter` (see :meth:`ShardedSystem.place`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from ..errors import ConfigurationError
from ..load.capacity import CapacityConfig, CapacityModel
from ..mempool.mempool import MempoolPolicy
from ..obs import Observability, TaggedObservability
from .map import ShardMap, ShardMapConfig
from .plan import ShardPlan
from .router import CrossShardRouter, RouteDecision

__all__ = ["Shard", "PlacedSubmission", "ShardedSystem"]


@dataclass
class Shard:
    """One slice of the deployment: a full protocol system plus its identity."""

    shard_id: int
    system: Any

    @property
    def committee(self) -> tuple[int, ...]:
        """The shard's TRS committee (empty for committee-free baselines)."""

        return tuple(getattr(self.system, "committee", ()))

    @property
    def node_ids(self) -> list[int]:
        """Local node ids (0..shard_size-1)."""

        return sorted(self.system.nodes)


@dataclass(frozen=True, slots=True)
class PlacedSubmission:
    """Where one client submission actually enters the sharded system."""

    shard: int
    origin_local: int
    time_ms: float
    routed: bool


class ShardedSystem:
    """``num_shards`` independent protocol deployments over one node space.

    See the module docstring for the construction contract.  *capacity*
    installs one :class:`~repro.load.capacity.CapacityModel` per shard (each
    shard's links are accounted separately); *mempool_policy* installs
    per-shard admission control on every node's mempool via the existing
    :class:`~repro.mempool.MempoolPolicy`; *fault_plans* / *observe_hooks*
    map shard id → the fault plan / hook for that shard's factory call.
    """

    def __init__(
        self,
        num_shards: int,
        total_nodes: int,
        *,
        protocol: str = "hermes",
        f: int = 1,
        k: int = 4,
        seed: int = 0,
        system_seed: int = 13,
        obs: Observability | None = None,
        shard_map: ShardMap | None = None,
        map_policy: str = "uniform",
        map_seed: int = 0,
        hot_threshold: int = 32,
        capacity: CapacityConfig | None = None,
        mempool_policy: MempoolPolicy | None = None,
        hermes_overrides: Mapping[str, Any] | None = None,
        fault_plans: Mapping[int, Any] | None = None,
        observe_hooks: Mapping[int, Callable] | None = None,
        cross_shard_hop_ms: float | None = None,
        narwhal_config: Any = None,
    ) -> None:
        from ..experiments.harness import build_environment, protocol_factories

        self.plan = ShardPlan(num_shards=num_shards, total_nodes=total_nodes)
        self.protocol = protocol
        self.obs = obs
        self.seed = seed
        self.system_seed = system_seed
        # All shards share one mirrored environment: same size, same build
        # seed, one cache entry.  num_shards == 1 reuses the unsharded env.
        self.env = build_environment(
            num_nodes=self.plan.shard_size, f=f, k=k, seed=seed
        )
        if shard_map is None:
            shard_map = ShardMap(
                ShardMapConfig(
                    num_shards=num_shards,
                    policy=map_policy,
                    seed=map_seed,
                    hot_threshold=hot_threshold,
                )
            )
        if shard_map.config.num_shards != num_shards:
            raise ConfigurationError(
                f"shard map covers {shard_map.config.num_shards} shards, "
                f"system has {num_shards}"
            )
        self.shard_map = shard_map
        if cross_shard_hop_ms is None:
            # A cross-shard submission is at least one wide-area hop: use the
            # deployment's expected inter-region link latency.
            cross_shard_hop_ms = float(
                self.env.physical.latency_model.parameters.inter_mean
            )
        self.router = CrossShardRouter(self.plan, hop_ms=cross_shard_hop_ms)

        overrides = dict(hermes_overrides or {})
        fault_plans = dict(fault_plans or {})
        observe_hooks = dict(observe_hooks or {})
        self.shards: list[Shard] = []
        for sid in range(num_shards):
            shard_obs = (
                TaggedObservability(obs, shard=sid) if obs is not None else None
            )
            shard_overrides = dict(overrides)
            if num_shards > 1:
                # Envelope shard tags cost two wire bytes, so a single-shard
                # system stays byte-identical to the unsharded protocol.
                shard_overrides.setdefault("shard_id", sid)
            factories = protocol_factories(
                self.env,
                seed=system_seed + sid,
                hermes_overrides=shard_overrides,
                obs=shard_obs,
                narwhal_config=narwhal_config,
            )
            if protocol not in factories:
                raise ConfigurationError(
                    f"unknown protocol {protocol!r}; known: {sorted(factories)}"
                )
            system = factories[protocol](
                fault_plans.get(sid), observe_hooks.get(sid)
            )
            system.network.shard_id = sid
            if capacity is not None:
                system.network.capacity = CapacityModel(capacity)
            if mempool_policy is not None:
                for node in system.nodes.values():
                    mempool = getattr(node, "mempool", None)
                    if mempool is not None:
                        mempool.install_policy(mempool_policy)
            self.shards.append(Shard(shard_id=sid, system=system))

    # -- geometry ----------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    @property
    def total_nodes(self) -> int:
        return self.plan.total_nodes

    def shard(self, shard_id: int) -> Shard:
        return self.shards[shard_id]

    def global_node_ids(self) -> range:
        return range(self.plan.total_nodes)

    # -- submission placement ---------------------------------------------

    def place(
        self,
        time_ms: float,
        origin_global: int,
        key: Any = None,
        size_bytes: int = 250,
    ) -> PlacedSubmission:
        """Resolve one client submission to (shard, local origin, entry time).

        The shard map assigns the transaction's *key* (the client's global
        node id when no explicit key is given) to its owning shard.  A
        submission landing on the client's home shard enters directly and
        untouched; anything else pays the router's cross-shard hop and enters
        through the origin's mirror node on the target shard.
        """

        target = self.shard_map.assign(origin_global if key is None else key)
        home = self.plan.shard_of(origin_global)
        if target == home:
            return PlacedSubmission(
                shard=target,
                origin_local=self.plan.to_local(origin_global),
                time_ms=time_ms,
                routed=False,
            )
        decision: RouteDecision = self.router.route(
            time_ms, origin_global, target, size_bytes
        )
        return PlacedSubmission(
            shard=decision.shard,
            origin_local=decision.ingress_local,
            time_ms=decision.time_ms,
            routed=True,
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        for shard in self.shards:
            shard.system.start()

    def run_shard(self, shard_id: int, until_ms: float) -> float:
        """Run one shard's simulator to *until_ms* (rebinding the obs clock).

        Shards execute one at a time; with a shared observability bundle the
        tracer clock must follow the simulator that is actually advancing.
        """

        shard = self.shards[shard_id]
        if self.obs is not None:
            self.obs.attach(shard.system.simulator)
        return shard.system.run(until_ms=until_ms)

    def run(self, until_ms: float) -> float:
        """Run every shard to *until_ms*; returns the latest final time."""

        return max(
            self.run_shard(shard.shard_id, until_ms) for shard in self.shards
        )

    # -- aggregate accounting ---------------------------------------------

    def stats_by_shard(self) -> dict[int, Any]:
        """Each shard's :class:`~repro.net.stats.NetworkStats`."""

        return {shard.shard_id: shard.system.stats for shard in self.shards}

    def capacity_by_shard(self) -> dict[int, dict[str, float]]:
        """Per-shard wire/capacity accounting (the per-shard capacity books).

        Always reports bytes and drop counters; adds queue depth columns when
        the shard has a capacity model installed.
        """

        books: dict[int, dict[str, float]] = {}
        for shard in self.shards:
            network = shard.system.network
            stats = network.stats
            entry: dict[str, float] = {
                "bytes_sent": float(stats.total_bytes()),
                "messages_dropped": float(stats.messages_dropped),
                "capacity_drops": float(stats.capacity_drops),
            }
            capacity = network.capacity
            if capacity is not None:
                entry["max_queue_bytes"] = float(capacity.max_backlog_bytes)
            books[shard.shard_id] = entry
        return books

    def describe(self) -> dict[str, Any]:
        """JSON-ready deployment summary (for results and reports)."""

        return {
            "protocol": self.protocol,
            "num_shards": self.num_shards,
            "total_nodes": self.total_nodes,
            "shard_size": self.plan.shard_size,
            "map": self.shard_map.describe(),
            "router": self.router.describe(),
        }
