"""Stable, seeded transaction-to-shard assignment.

A :class:`ShardMap` answers one question — *which shard owns this key?* — and
answers it identically in every process that shares its ``(seed, params)``.
Python's builtin ``hash`` is salted per interpreter, so assignments are
derived from a BLAKE2b digest of a seeded salt and the key's string form
instead; two maps built from the same config agree byte-for-byte across
machines, which is what lets the content-addressed sweep runner replay
sharded cells.

Two policies:

``uniform``
    Pure stable hashing: ``blake2b(salt, key) mod num_shards``.  Stateless —
    the same key always lands on the same shard, regardless of stream order.

``hot-key``
    Stable hashing for cold keys, deterministic round-robin spreading for
    hot ones.  The map counts per-key occurrences; once a key has been seen
    ``hot_threshold`` times, each further occurrence advances one shard from
    the key's home — a single Zipf-head key (one NFT mint contract, one DEX
    pair) stops pinning its whole volume to one committee.  Assignment is a
    function of ``(seed, params, occurrence index)``, so replaying the same
    key stream reproduces the same shard stream exactly.

``num_shards = 1`` short-circuits to shard 0 with no hashing and no counter
updates, which is part of the single-shard byte-identity contract
(``tests/integration/test_sharding_identity.py``).

>>> config = ShardMapConfig(num_shards=4, seed=7)
>>> ShardMap(config).assign("client-42") == ShardMap(config).assign("client-42")
True
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from ..errors import ConfigurationError
from ..utils.rng import derive_rng

__all__ = ["SHARD_POLICIES", "ShardMapConfig", "ShardMap", "shard_balance"]

SHARD_POLICIES = ("uniform", "hot-key")


@dataclass(frozen=True, slots=True)
class ShardMapConfig:
    """Everything a :class:`ShardMap` derives its assignments from."""

    num_shards: int
    policy: str = "uniform"
    seed: int = 0
    #: ``hot-key`` only: occurrences after which a key counts as hot and its
    #: further traffic is spread round-robin across all shards.
    hot_threshold: int = 32

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.policy not in SHARD_POLICIES:
            raise ConfigurationError(
                f"unknown shard policy {self.policy!r}; choose from {SHARD_POLICIES}"
            )
        if self.hot_threshold < 1:
            raise ConfigurationError(
                f"hot_threshold must be >= 1, got {self.hot_threshold}"
            )


class ShardMap:
    """Seeded key → shard assignment (see module docstring for the policies).

    The map carries mutable state only under the ``hot-key`` policy (per-key
    occurrence counts); :meth:`reset` rewinds it so one map instance can
    replay multiple streams.
    """

    def __init__(self, config: ShardMapConfig) -> None:
        self.config = config
        # One salt per (seed): derive_rng keeps the stream namespaced so a
        # ShardMap never perturbs any other consumer of the same seed.
        self._salt = derive_rng(config.seed, "shard-map", "salt").getrandbits(64)
        self._counts: dict[Hashable, int] = {}

    # -- assignment --------------------------------------------------------

    def _stable_hash(self, key: Hashable) -> int:
        data = f"{self._salt}:{type(key).__name__}:{key!r}".encode()
        return int.from_bytes(
            hashlib.blake2b(data, digest_size=8).digest(), "big"
        )

    def home_of(self, key: Hashable) -> int:
        """The key's stable home shard (stateless; both policies share it)."""

        if self.config.num_shards == 1:
            return 0
        return self._stable_hash(key) % self.config.num_shards

    def assign(self, key: Hashable) -> int:
        """The shard that owns this occurrence of *key*.

        Under ``uniform`` this is :meth:`home_of`.  Under ``hot-key`` the
        occurrence counter advances even while the key is cold, so hotness is
        a property of the stream, not of the call pattern.
        """

        k = self.config.num_shards
        if k == 1:
            return 0
        home = self._stable_hash(key) % k
        if self.config.policy == "uniform":
            return home
        count = self._counts.get(key, 0)
        self._counts[key] = count + 1
        if count < self.config.hot_threshold:
            return home
        return (home + (count - self.config.hot_threshold)) % k

    def assign_many(self, keys: Iterable[Hashable]) -> list[int]:
        """Assign a whole stream in order (hot-key state advances per key)."""

        return [self.assign(key) for key in keys]

    # -- bookkeeping -------------------------------------------------------

    def reset(self) -> None:
        """Forget all occurrence counts (rewind the hot-key stream state)."""

        self._counts.clear()

    def hot_keys(self) -> list[Hashable]:
        """Keys whose occurrence count has crossed ``hot_threshold``."""

        threshold = self.config.hot_threshold
        return [key for key, count in self._counts.items() if count >= threshold]

    def describe(self) -> dict:
        """JSON-ready parameters (for manifests and reports)."""

        return {
            "num_shards": self.config.num_shards,
            "policy": self.config.policy,
            "seed": self.config.seed,
            "hot_threshold": self.config.hot_threshold,
        }


def shard_balance(assignments: Sequence[int], num_shards: int) -> float:
    """Peak-to-mean shard load over one assignment stream.

    1.0 is a perfectly even split; ``num_shards`` is the worst case (every
    key on one shard).  An empty stream is vacuously balanced.  This is the
    quantity the Hypothesis balance-bound property pins for Zipf key streams
    (``tests/property/test_sharding_properties.py``).
    """

    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    if not assignments:
        return 1.0
    counts = [0] * num_shards
    for shard in assignments:
        counts[shard] += 1
    mean = len(assignments) / num_shards
    return max(counts) / mean
