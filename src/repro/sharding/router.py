"""Cross-shard ingress routing for transactions that land off their home shard.

A client submits through its local node, but the :class:`~repro.sharding.map.ShardMap`
may assign the transaction's key to a different shard's committee.  The
router models the forwarding hop: the submission re-enters the *target*
shard's simulator at ``time + hop_ms``, through a deterministic ingress node
(the client's mirror position, ``origin mod shard_size`` — shards are
mirrored deployments, so the mirror node plays the same topological role the
origin would have played at home).

The hop cost defaults to the deployment's expected inter-region link latency
(shard committees are disjoint node sets, so a cross-shard submission is at
least one wide-area hop away), and every routed transaction is accounted —
count, bytes, and the full shard-to-shard flow matrix — so per-shard
capacity books include the traffic sharding itself creates.  The router
draws no randomness: routing is replayable from the plan and the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..utils.validation import require_positive
from .plan import ShardPlan

__all__ = ["RouteDecision", "CrossShardRouter"]


@dataclass(frozen=True, slots=True)
class RouteDecision:
    """Where and when one routed submission re-enters the system."""

    shard: int
    ingress_local: int
    time_ms: float
    hop_ms: float


@dataclass
class CrossShardRouter:
    """Deterministic forwarding of off-home-shard submissions (see module doc)."""

    plan: ShardPlan
    hop_ms: float = 40.0

    #: Routed-submission count per (home shard, target shard) pair.
    flows: dict[tuple[int, int], int] = field(default_factory=dict)
    routed: int = 0
    routed_bytes: int = 0

    def __post_init__(self) -> None:
        require_positive(self.hop_ms, "hop_ms")

    def route(
        self,
        time_ms: float,
        origin_global: int,
        target_shard: int,
        size_bytes: int = 250,
    ) -> RouteDecision:
        """Forward a submission from *origin_global* to *target_shard*.

        The origin's home shard must differ from the target — same-shard
        submissions never touch the router (and therefore never pay the hop),
        which is what keeps the single-shard system byte-identical to the
        unsharded one.
        """

        home = self.plan.shard_of(origin_global)
        if home == target_shard:
            raise ValueError(
                f"node {origin_global} already lives on shard {target_shard}; "
                "submit directly instead of routing"
            )
        self.routed += 1
        self.routed_bytes += size_bytes
        key = (home, target_shard)
        self.flows[key] = self.flows.get(key, 0) + 1
        return RouteDecision(
            shard=target_shard,
            ingress_local=self.plan.to_local(origin_global),
            time_ms=time_ms + self.hop_ms,
            hop_ms=self.hop_ms,
        )

    def describe(self) -> dict:
        """JSON-ready accounting (for results and reports)."""

        return {
            "hop_ms": self.hop_ms,
            "routed": self.routed,
            "routed_bytes": self.routed_bytes,
            "flows": {
                f"{src}->{dst}": count
                for (src, dst), count in sorted(self.flows.items())
            },
        }
