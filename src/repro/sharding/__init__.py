"""Sharded multi-proposer dissemination: independent TRS committees per shard.

One HERMES deployment gives every proposer the same fair view of one
transaction stream — but a single committee and overlay family is a global
bottleneck: aggregate goodput is capped by one shard's capacity no matter
how many nodes join.  This package scales the system *horizontally* while
keeping the per-shard fairness guarantee intact:

* :class:`~repro.sharding.plan.ShardPlan` — equal mirrored slices of the
  global node space (``global = shard * shard_size + local``);
* :class:`~repro.sharding.map.ShardMap` — seeded, cross-process-stable
  tx→shard assignment (``uniform`` stable hashing or ``hot-key`` round-robin
  spreading of Zipf-head keys), property-tested for determinism and balance;
* :class:`~repro.sharding.router.CrossShardRouter` — deterministic ingress
  forwarding (and accounting) for submissions whose key lives off the
  client's home shard;
* :class:`~repro.sharding.system.ShardedSystem` — ``num_shards`` complete,
  independent protocol deployments (own simulator, network, overlays, TRS
  committee) behind one facade, with per-shard capacity books, per-shard
  mempool admission and shard-tagged tracing;
* :class:`~repro.sharding.workload.ShardedLoadDriver` — one global open-loop
  schedule split across shards, aggregated into the Fig. 9 goodput-scaling
  quantity;
* :func:`~repro.sharding.trial.run_sharded_adversary_trial` and
  :func:`~repro.sharding.fairness.cross_shard_fairness` — the strategy zoo
  run per shard, folded into the system-wide γ / inversion-rate verdict;
* :func:`~repro.sharding.chaos.run_cross_shard_partition` — the
  blast-radius drill: island one shard's committee, assert the others never
  notice.

``num_shards = 1`` is byte-identical to the unsharded system (golden-hash
pinned); the scaling grid lives in :mod:`repro.experiments.fig9_sharding`
(``python -m repro sweep --figure fig9``) and the shell front end in
:mod:`repro.sharding.cli` (``python -m repro shard``).  See
``docs/sharding.md``.
"""

from __future__ import annotations

from .chaos import (
    CrossShardPartitionReport,
    ShardLiveness,
    run_cross_shard_partition,
)
from .fairness import CrossShardFairness, cross_shard_fairness
from .map import SHARD_POLICIES, ShardMap, ShardMapConfig, shard_balance
from .plan import ShardPlan
from .router import CrossShardRouter, RouteDecision
from .system import PlacedSubmission, Shard, ShardedSystem
from .trial import ShardedTrialResult, run_sharded_adversary_trial
from .workload import ShardedLoadDriver, ShardedLoadResult

__all__ = [
    "SHARD_POLICIES",
    "ShardMapConfig",
    "ShardMap",
    "shard_balance",
    "ShardPlan",
    "RouteDecision",
    "CrossShardRouter",
    "Shard",
    "PlacedSubmission",
    "ShardedSystem",
    "ShardedLoadDriver",
    "ShardedLoadResult",
    "CrossShardFairness",
    "cross_shard_fairness",
    "ShardedTrialResult",
    "run_sharded_adversary_trial",
    "ShardLiveness",
    "CrossShardPartitionReport",
    "run_cross_shard_partition",
]
