"""Cross-shard order-fairness: folding per-shard reports into one verdict.

Shards order their transaction sets independently — there is no global
sequence to measure against, and transactions on different shards never form
a comparable pair.  What a sharded deployment *can* promise is that **every**
shard keeps the single-shard fairness guarantee: the system-wide γ is the
worst shard's γ (an adversary attacks where fairness is weakest, so the
minimum is the operative bound), and the system-wide inversion rate is the
pair-weighted mean of the per-shard rates (each shard contributes its
``C(n, 2)`` comparable pairs; a shard that ordered three transactions should
not outvote one that ordered three hundred).

:func:`cross_shard_fairness` performs that fold; the fig9 grid reports its
output per cell next to aggregate goodput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..adversary.fairness import FairnessReport

__all__ = ["CrossShardFairness", "cross_shard_fairness"]


def _pairs(report: FairnessReport) -> int:
    n = report.num_transactions
    return n * (n - 1) // 2


@dataclass(frozen=True, slots=True)
class CrossShardFairness:
    """The system-wide fairness verdict plus its per-shard evidence."""

    #: Worst shard's γ — the operative system-wide fairness bound.
    gamma: float
    #: Pair-weighted mean inversion rate across shards.
    inversion_rate: float
    #: Shard id with the minimal γ (the adversary's best target).
    worst_shard: int
    num_shards: int
    per_shard: Mapping[int, FairnessReport]

    @property
    def gamma_unfairness(self) -> float:
        return 1.0 - self.gamma

    def to_json(self) -> dict[str, Any]:
        return {
            "gamma": self.gamma,
            "inversion_rate": self.inversion_rate,
            "worst_shard": self.worst_shard,
            "num_shards": self.num_shards,
            "per_shard": {
                str(shard): {
                    "gamma": report.gamma,
                    "inversion_rate": report.inversion_rate,
                    "num_orders": report.num_orders,
                    "num_transactions": report.num_transactions,
                }
                for shard, report in sorted(self.per_shard.items())
            },
        }


def cross_shard_fairness(
    reports: Mapping[int, FairnessReport],
) -> CrossShardFairness:
    """Fold per-shard fairness reports into the system-wide verdict.

    Shards whose report covers fewer than two common transactions carry no
    pairwise evidence: they are excluded from the weighted inversion mean and
    cannot be the worst shard (their γ is vacuous).  If *no* shard has
    evidence, the verdict is vacuously fair (γ = 1, inversions = 0) over
    whatever shards were given.
    """

    if not reports:
        raise ValueError("need at least one shard's fairness report")
    informative = {
        shard: report
        for shard, report in reports.items()
        if report.num_transactions >= 2
    }
    if not informative:
        return CrossShardFairness(
            gamma=1.0,
            inversion_rate=0.0,
            worst_shard=min(reports),
            num_shards=len(reports),
            per_shard=dict(reports),
        )
    worst_shard = min(informative, key=lambda s: (informative[s].gamma, s))
    total_pairs = sum(_pairs(report) for report in informative.values())
    inversion = (
        sum(
            report.inversion_rate * _pairs(report)
            for report in informative.values()
        )
        / total_pairs
    )
    return CrossShardFairness(
        gamma=informative[worst_shard].gamma,
        inversion_rate=inversion,
        worst_shard=worst_shard,
        num_shards=len(reports),
        per_shard=dict(reports),
    )
