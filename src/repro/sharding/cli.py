"""``python -m repro shard`` — sharded deployments from the shell.

Two subcommands::

    python -m repro shard run --shards 4 --nodes 64 --rate 60   # load run
    python -m repro shard run --policy hot-key --zipf 1.1       # hot-key map
    python -m repro shard drill --shards 3 --shard-size 16      # partition drill
    python -m repro shard run --json                            # canonical JSON

``run`` drives one open-loop load run through a
:class:`~repro.sharding.ShardedSystem` and prints the aggregate and
per-shard books; ``drill`` executes the cross-shard committee-partition
liveness check (:func:`~repro.sharding.chaos.run_cross_shard_partition`).
The fig9 scaling *grid* lives in the sweep front end instead: ``python -m
repro sweep --figure fig9``.  See ``docs/sharding.md``.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..errors import ReproError

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    from ..load.arrival import ARRIVAL_PATTERNS
    from .map import SHARD_POLICIES

    parser = argparse.ArgumentParser(
        prog="python -m repro shard",
        description=(
            "Run sharded multi-proposer deployments: per-shard TRS "
            "committees, cross-shard routing, aggregate goodput "
            "(see docs/sharding.md)."
        ),
    )
    sub = parser.add_subparsers(dest="command")

    run = sub.add_parser(
        "run", help="one open-loop load run over a sharded deployment"
    )
    run.add_argument("--shards", type=int, default=4, help="shard count (default 4)")
    run.add_argument(
        "--nodes", type=int, default=64,
        help="total nodes across all shards (default 64)",
    )
    run.add_argument(
        "--protocol",
        choices=["hermes", "lzero", "narwhal", "mercury"],
        default="hermes",
    )
    run.add_argument("--f", type=int, default=1, help="per-overlay fault bound")
    run.add_argument("--k", type=int, default=4, help="overlays per shard")
    run.add_argument(
        "--rate", type=float, default=60.0, metavar="TPS",
        help="aggregate offered rate in tx/s (default 60)",
    )
    run.add_argument(
        "--pattern", choices=ARRIVAL_PATTERNS, default="poisson",
        help="arrival process (default: poisson)",
    )
    run.add_argument(
        "--zipf", type=float, default=0.0, metavar="S",
        help="Zipf skew of origin selection (0 = uniform; default 0)",
    )
    run.add_argument(
        "--duration", type=float, default=4_000.0, metavar="MS",
        help="injection window in simulated ms (default 4000)",
    )
    run.add_argument(
        "--drain", type=float, default=1_500.0, metavar="MS",
        help="extra drain window after injection stops (default 1500)",
    )
    run.add_argument(
        "--policy", choices=SHARD_POLICIES, default="uniform",
        help="shard-map policy (default: uniform)",
    )
    run.add_argument(
        "--map-seed", type=int, default=0, help="shard-map salt seed (default 0)"
    )
    run.add_argument(
        "--hot-threshold", type=int, default=32,
        help="hot-key policy: occurrences before a key counts as hot",
    )
    run.add_argument(
        "--capacity", type=float, default=32.0, metavar="KB_S",
        help="per-node uplink rate in KB/s (default 32; downlink is 4x)",
    )
    run.add_argument(
        "--queue-kb", type=float, default=32.0, metavar="KB",
        help="egress queue bound in KB (default 32)",
    )
    run.add_argument(
        "--no-capacity", action="store_true",
        help="leave links infinite (measures the driver without saturation)",
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--json", action="store_true",
        help="print the result as canonical JSON instead of tables",
    )

    drill = sub.add_parser(
        "drill",
        help="cross-shard partition drill: island one committee, check liveness",
    )
    drill.add_argument("--shards", type=int, default=3)
    drill.add_argument("--shard-size", type=int, default=16)
    drill.add_argument(
        "--protocol",
        choices=["hermes", "lzero", "narwhal", "mercury"],
        default="hermes",
    )
    drill.add_argument(
        "--partition-shard", type=int, default=0,
        help="which shard's committee to island (default 0)",
    )
    drill.add_argument("--f", type=int, default=1)
    drill.add_argument("--k", type=int, default=4)
    drill.add_argument("--seed", type=int, default=0)
    drill.add_argument(
        "--strict", action="store_true",
        help="exit non-zero if a non-partitioned shard misses a deadline",
    )
    drill.add_argument("--json", action="store_true")
    return parser


def _run(args: argparse.Namespace) -> int:
    from ..load.arrival import make_arrivals
    from ..load.capacity import CapacityConfig
    from .system import ShardedSystem
    from .workload import ShardedLoadDriver

    capacity = (
        None
        if args.no_capacity
        else CapacityConfig(
            uplink_kb_per_s=args.capacity,
            downlink_kb_per_s=args.capacity * 4,
            queue_bytes=int(args.queue_kb * 1024),
        )
    )
    system = ShardedSystem(
        args.shards,
        args.nodes,
        protocol=args.protocol,
        f=args.f,
        k=args.k,
        seed=args.seed,
        map_policy=args.policy,
        map_seed=args.map_seed,
        hot_threshold=args.hot_threshold,
        capacity=capacity,
    )
    arrivals = make_arrivals(
        args.pattern,
        rate_tps=args.rate,
        origins=list(range(args.nodes)),
        seed=args.seed,
        zipf_s=args.zipf,
    )
    result = ShardedLoadDriver(system, arrivals).run(args.duration, args.drain)
    if args.json:
        print(
            json.dumps(
                {"deployment": system.describe(), "result": result.to_json()},
                sort_keys=True,
            )
        )
        return 0
    print(
        f"{args.protocol} x {args.shards} shard(s), {args.nodes} nodes "
        f"({system.plan.shard_size}/shard), map={args.policy}"
    )
    print(
        f"  offered {result.offered_tps:8.1f} tps   "
        f"aggregate goodput {result.aggregate_goodput_tps:8.1f} tps   "
        f"delivery {result.delivery_ratio:6.1%}"
    )
    mean = "-" if result.mean_ms is None else f"{result.mean_ms:.0f}ms"
    p95 = "-" if result.p95_ms is None else f"{result.p95_ms:.0f}ms"
    print(
        f"  latency mean {mean} / p95 {p95}   cross-shard routed "
        f"{result.routed} ({result.routed_fraction:.1%})"
    )
    print("  shard  injected  delivered  goodput_tps  p95_ms  max_queue_kb")
    for shard_id, shard_result in enumerate(result.per_shard):
        shard_p95 = (
            "-" if shard_result.p95_ms is None else f"{shard_result.p95_ms:.0f}"
        )
        print(
            f"  {shard_id:5d}  {shard_result.injected:8d}  "
            f"{shard_result.delivered:9d}  {shard_result.goodput_tps:11.1f}  "
            f"{shard_p95:>6}  {shard_result.max_queue_bytes / 1024:12.1f}"
        )
    return 0


def _drill(args: argparse.Namespace) -> int:
    from .chaos import run_cross_shard_partition

    report = run_cross_shard_partition(
        args.shards,
        args.shard_size,
        protocol=args.protocol,
        partitioned_shard=args.partition_shard,
        f=args.f,
        k=args.k,
        seed=args.seed,
    )
    if args.json:
        print(json.dumps(report.to_json(), sort_keys=True))
    else:
        print(
            f"{report.scenario}: shard {report.partitioned_shard} committee "
            f"islanded, {report.num_shards} shards x "
            f"{args.shard_size} nodes ({report.protocol})"
        )
        print("  shard  partitioned  delivered  min_coverage  live")
        for entry in report.per_shard:
            print(
                f"  {entry.shard:5d}  {str(entry.partitioned):>11}  "
                f"{entry.delivered_by_deadline:4d}/{entry.transactions:<4d}  "
                f"{entry.min_coverage:12.2f}  {str(entry.live):>4}"
            )
        verdict = "PASS" if report.healthy_shards_live else "FAIL"
        print(f"  containment invariant (healthy shards live): {verdict}")
    if args.strict and not report.healthy_shards_live:
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Bare flags default to the run subcommand: `shard --shards 2` works.
    if not argv or argv[0] not in ("run", "drill", "-h", "--help"):
        argv = ["run", *argv]
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "drill":
            return _drill(args)
        return _run(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
