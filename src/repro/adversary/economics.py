"""Attack economics: what an attack *extracted*, not just whether it "won".

The paper's success criterion (§VIII-F) is binary — adversarial transaction
before victim transaction in the block.  The zoo refines it into money, the
quantity real front-runners optimize:

* a :class:`ValueModel` prices the victim opportunity and the adversary's
  bidding behaviour;
* an :class:`AttackLedger` records every adversarial transaction a strategy
  launches, with the *role* it plays (a sandwich's lead vs. trailing leg, a
  priority race's bid, a censor's replacement push);
* :meth:`AttackLedger.settle` reads the proposer's block and converts roles ×
  positions into gross extracted value, fees paid, and net profit.

Settlement rules (deliberately simple, deterministic, and strategy-agnostic):

==============================  =============================================
Block outcome                    Gross value extracted
==============================  =============================================
victim censored, a leg landed    ``victim_value`` (the opportunity is stolen
                                 outright — the victim's trade never executes)
lead *and* trail around victim   ``victim_value`` (complete sandwich)
lead before victim, no trail     ``victim_value * partial_capture``
nothing before victim            ``0.0``
==============================  =============================================

Fees are paid only for adversarial transactions that made it into the block
(an unincluded bid costs nothing, as on fee markets with failed inclusion),
and ``net = gross − fees_paid`` can go negative: outbidding a victim whose
opportunity didn't cover the bid is a loss, which is exactly the calculus a
defense wants to force.  With a live fee market attached to the trial
(``run_adversary_trial(..., fee_market=...)``), strategies bid through
:meth:`~repro.adversary.agent.AgentContext.bid_fee` against the *current*
base fee, so a sustained-load fee spike raises ``fees_paid`` on every landed
leg and can push an otherwise-winning attack under water.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mempool.blocks import Block
from ..mempool.transaction import Transaction

__all__ = ["AttackLedger", "AttackOutcome", "AttackRecord", "ValueModel"]

#: Roles a ledger understands.  ``lead``/``race``/``push`` count as attempts
#: to precede the victim; ``trail`` only pays as the back leg of a sandwich.
LEADING_ROLES = frozenset({"lead", "race", "push"})
TRAILING_ROLE = "trail"


@dataclass(frozen=True, slots=True)
class ValueModel:
    """Prices for settling an attack.

    ``victim_value`` is the full opportunity carried by the victim
    transaction (arbitrary units); ``fee_premium`` is how far above the
    victim's fee a strategy bids when it races on a fee market;
    ``partial_capture`` is the fraction of the opportunity a bare front-run
    (lead lands, trailing leg doesn't) extracts.
    """

    victim_value: float = 100.0
    fee_premium: float = 1.0
    partial_capture: float = 0.5

    def __post_init__(self) -> None:
        if self.victim_value < 0:
            raise ValueError(f"victim_value must be >= 0, got {self.victim_value}")
        if self.fee_premium < 0:
            raise ValueError(f"fee_premium must be >= 0, got {self.fee_premium}")
        if not 0.0 <= self.partial_capture <= 1.0:
            raise ValueError(
                f"partial_capture must be in [0, 1], got {self.partial_capture}"
            )


@dataclass(frozen=True, slots=True)
class AttackRecord:
    """One adversarial transaction a strategy launched."""

    tx_id: int
    role: str
    fee: float
    launched_at: float


@dataclass(frozen=True, slots=True)
class AttackOutcome:
    """The settled economics of one trial."""

    gross: float
    fees_paid: float
    legs_included: int
    legs_launched: int
    sandwich_complete: bool = False

    @property
    def net(self) -> float:
        return self.gross - self.fees_paid

    @property
    def profitable(self) -> bool:
        return self.net > 0

    @property
    def extracted(self) -> bool:
        return self.gross > 0


@dataclass
class AttackLedger:
    """Every adversarial transaction of one trial, awaiting settlement."""

    records: list[AttackRecord] = field(default_factory=list)

    def record(self, tx: Transaction, role: str, now: float) -> AttackRecord:
        if role != TRAILING_ROLE and role not in LEADING_ROLES:
            raise ValueError(f"unknown attack role {role!r}")
        record = AttackRecord(tx_id=tx.tx_id, role=role, fee=tx.fee, launched_at=now)
        self.records.append(record)
        return record

    def adversarial_ids(self) -> list[int]:
        """Transaction ids in launch order (the judge's adversarial set)."""

        return [record.tx_id for record in self.records]

    def settle(
        self, block: Block, victim_tx_id: int, model: ValueModel
    ) -> AttackOutcome:
        """Convert the block's contents into extracted value and fees."""

        included = [record for record in self.records if record.tx_id in block]
        fees_paid = sum(record.fee for record in included)
        if victim_tx_id not in block:
            gross = model.victim_value if included else 0.0
            return AttackOutcome(
                gross=gross,
                fees_paid=fees_paid,
                legs_included=len(included),
                legs_launched=len(self.records),
            )
        victim_position = block.position_of(victim_tx_id)
        leads = [
            record
            for record in included
            if record.role in LEADING_ROLES
            and block.position_of(record.tx_id) < victim_position
        ]
        trails = [
            record
            for record in included
            if record.role == TRAILING_ROLE
            and block.position_of(record.tx_id) > victim_position
        ]
        if leads and trails:
            gross = model.victim_value
        elif leads:
            gross = model.victim_value * model.partial_capture
        else:
            gross = 0.0
        return AttackOutcome(
            gross=gross,
            fees_paid=fees_paid,
            legs_included=len(included),
            legs_launched=len(self.records),
            sandwich_complete=bool(leads and trails),
        )
