"""The zoo's trial runner: one strategy vs one protocol, fully scored.

:func:`run_adversary_trial` generalizes the legacy
:func:`repro.attacks.frontrun.run_front_running_trial` along three axes:

* the adversary is a pluggable :class:`~repro.adversary.agent.StrategyAgent`
  (by name or instance) instead of a hard-coded first-observer racer;
* the trial carries *background traffic*, so the proposer's block and the
  fairness metrics reflect a populated mempool rather than a two-transaction
  race;
* the outcome is scored three ways at once — the paper's binary verdict
  (:func:`~repro.mempool.ordering.judge_front_running`), extracted value
  (:meth:`~repro.adversary.economics.AttackLedger.settle`), and
  order-fairness over the honest nodes' receive orders
  (:mod:`repro.adversary.fairness`).

The legacy censorship and overload trials live here too
(:func:`run_censorship_trial`, :func:`run_overload_trial`), re-implemented on
the strategy agents; :mod:`repro.attacks` re-exports them unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..mempool.blocks import Block, build_block
from ..mempool.ordering import FrontRunVerdict, judge_front_running
from ..mempool.transaction import Transaction
from ..net.faults import Behavior, FaultPlan
from ..utils.rng import derive_rng
from .agent import AgentContext, StrategyAgent, get_strategy
from .economics import AttackLedger, AttackOutcome, ValueModel
from .fairness import FairnessReport, fairness_report, receive_orders_from_mempools
from .strategies import FloodStrategy

__all__ = [
    "AdversaryTrialResult",
    "CensorshipResult",
    "OverloadResult",
    "run_adversary_trial",
    "run_censorship_trial",
    "run_overload_trial",
]


@dataclass(frozen=True, slots=True)
class AdversaryTrialResult:
    """Everything one trial produced, across all three scoring lenses."""

    strategy: str
    verdict: FrontRunVerdict
    outcome: AttackOutcome
    fairness: FairnessReport
    block: Block
    attacker: int | None
    #: When the launching coalition node read the victim's *content*.
    observation_time: float | None
    #: When any coalition-adjacent link first carried a victim frame
    #: (transport sighting — can precede content observation).
    first_frame_time: float | None
    victim_arrival_at_proposer: float | None
    #: Fraction of honest nodes the victim transaction reached.
    victim_coverage: float
    #: :meth:`~repro.core.accountability.ViolationLog.summary` when the
    #: protocol keeps a violation log (HERMES); None otherwise.
    violation_summary: dict | None = None

    @property
    def attack_launched(self) -> bool:
        return self.outcome.legs_launched > 0

    def as_record(self) -> dict:
        """A flat, JSON-friendly summary of the trial.

        The shape consumed by the ``adversary=`` section of
        :func:`repro.obs.analysis.report.render_report`.
        """

        return {
            "strategy": self.strategy,
            "attacker_won": bool(self.verdict.attacker_won),
            "victim_censored": bool(self.verdict.victim_censored),
            "gross": self.outcome.gross,
            "net": self.outcome.net,
            "gamma": self.fairness.gamma,
            "inversion_rate": self.fairness.inversion_rate,
            "victim_coverage": self.victim_coverage,
            "violations": (
                self.violation_summary["total"]
                if self.violation_summary is not None
                else 0
            ),
        }


def run_adversary_trial(
    system_factory: Callable[[FaultPlan, Callable], object],
    node_ids: list[int],
    strategy: str | StrategyAgent,
    malicious_fraction: float,
    victim: int,
    proposer: int,
    *,
    value_model: ValueModel | None = None,
    fee_market: object | None = None,
    victim_fee: float = 0.0,
    background_txs: int = 0,
    background_spacing_ms: float = 25.0,
    proposal_delay_ms: float | None = None,
    block_priority: bool | None = None,
    horizon_ms: float = 5_000.0,
    seed: int = 0,
    protected: tuple[int, ...] = (),
) -> AdversaryTrialResult:
    """Run one complete strategy-vs-protocol trial.

    *system_factory* receives the fault plan and an observe hook and must
    return a ready (unstarted) system — the same contract as the figure
    harness factories.  The victim, proposer and any *protected* ids (e.g.
    the TRS committee) are never corrupted.

    ``background_txs`` honest transactions are submitted every
    ``background_spacing_ms`` from deterministic honest origins, the victim's
    in the middle of the stream.  ``proposal_delay_ms`` models the proposer
    sealing its block a fixed beat after the victim arrives (late adversarial
    legs miss the cutoff); ``None`` packs everything that arrived by the
    horizon.  ``block_priority`` overrides the strategy's declared block
    policy (fee market vs arrival order).  ``fee_market`` (a
    :class:`repro.population.FeeMarket`) makes fee-bidding strategies price
    their legs against the live base fee via :meth:`AgentContext.bid_fee`
    instead of a flat premium; ``None`` (the default) reproduces the
    historical flat-premium trials exactly.
    """

    agent = get_strategy(strategy) if isinstance(strategy, str) else strategy
    plan = FaultPlan.random_fraction(
        node_ids,
        malicious_fraction,
        agent.behavior,
        seed=seed,
        protected=(victim, proposer, *protected),
    )
    coalition = frozenset(
        node_id
        for node_id in node_ids
        if plan.behavior_of(node_id) is not Behavior.HONEST
    )
    ledger = AttackLedger()
    ctx = AgentContext(
        system=None,
        coalition=coalition,
        ledger=ledger,
        value_model=value_model if value_model is not None else ValueModel(),
        target=proposer,
        fee_market=fee_market,
    )

    def observe_hook(node, tx: Transaction) -> None:
        if node.node_id in coalition:
            agent.observe(node, tx)

    system = system_factory(plan, observe_hook)
    ctx.system = system
    agent.attach(ctx)
    system.start()

    # -- workload: background stream with the victim in the middle --------
    honest = plan.honest_nodes(node_ids)
    rng = derive_rng(seed, "adversary-background")
    origins = [rng.choice(honest) for _ in range(background_txs)]
    before = background_txs // 2
    submissions: list[tuple[float, int, Transaction]] = []
    slot = 0
    for index, origin in enumerate(origins):
        if index == before:
            slot += 1  # leave the victim's slot open
        submissions.append(
            (
                slot * background_spacing_ms,
                origin,
                Transaction.create(
                    origin=origin, created_at=slot * background_spacing_ms
                ),
            )
        )
        slot += 1
    victim_time = before * background_spacing_ms
    victim_tx = Transaction.create(
        origin=victim, created_at=victim_time, tag="victim", fee=victim_fee
    )
    submissions.append((victim_time, victim, victim_tx))
    ctx.victim_tx_id = victim_tx.tx_id
    simulator = system.simulator
    for when, origin, tx in submissions:
        simulator.schedule_at(when, lambda origin=origin, tx=tx: system.submit(origin, tx))

    system.run(until_ms=horizon_ms)
    agent.finalize()

    # -- scoring ----------------------------------------------------------
    proposer_node = system.nodes[proposer]
    victim_arrival = (
        proposer_node.mempool.arrival_time(victim_tx.tx_id)
        if victim_tx.tx_id in proposer_node.mempool
        else None
    )
    cutoff = (
        victim_arrival + proposal_delay_ms
        if proposal_delay_ms is not None and victim_arrival is not None
        else None
    )
    priority = agent.block_priority if block_priority is None else block_priority
    block = build_block(
        proposer_node.mempool, simulator.now, cutoff_ms=cutoff, priority=priority
    )
    verdict = judge_front_running(block, victim_tx.tx_id, ledger.adversarial_ids())
    outcome = ledger.settle(block, victim_tx.tx_id, ctx.value_model)

    interesting = [tx.tx_id for _, _, tx in submissions] + ledger.adversarial_ids()
    orders = receive_orders_from_mempools(system, nodes=honest, tx_ids=interesting)
    fairness = fairness_report(orders)

    delivered = set(system.stats.deliveries.get(victim_tx.tx_id, {}))
    coverage = (
        sum(1 for node in honest if node in delivered) / len(honest)
        if honest
        else 0.0
    )
    violation_log = getattr(system, "violation_log", None)
    return AdversaryTrialResult(
        strategy=agent.name,
        verdict=verdict,
        outcome=outcome,
        fairness=fairness,
        block=block,
        attacker=getattr(agent, "attacker", None),
        observation_time=getattr(agent, "observation_time", None),
        first_frame_time=agent.first_frame_ms.get(victim_tx.tx_id),
        victim_arrival_at_proposer=victim_arrival,
        victim_coverage=coverage,
        violation_summary=(
            violation_log.summary() if violation_log is not None else None
        ),
    )


# ----------------------------------------------------------------------
# Legacy trials, re-implemented on the strategy agents
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CensorshipResult:
    """Coverage outcome of one censorship (blackout) trial."""

    malicious_fraction: float
    honest_nodes: int
    reached: int
    #: :meth:`~repro.core.accountability.ViolationLog.summary` of the evidence
    #: the run produced, when the protocol keeps a violation log (HERMES);
    #: None for unaccountable baselines.
    violation_summary: dict | None = None

    @property
    def coverage(self) -> float:
        return self.reached / self.honest_nodes if self.honest_nodes else 0.0


def run_censorship_trial(
    system_factory: Callable[[FaultPlan], object],
    node_ids: list[int],
    malicious_fraction: float,
    sender: int,
    horizon_ms: float = 5_000.0,
    seed: int = 0,
    protected: tuple[int, ...] = (),
) -> CensorshipResult:
    """Disseminate one message under a relay blackout; measure honest coverage.

    The adversary is :class:`~repro.adversary.strategies.BlackoutStrategy` —
    its entire effect is the coalition's ``DROP_RELAY`` behaviour, so the
    fault plan (and therefore every measurement) is bit-identical to the
    pre-zoo :mod:`repro.attacks.censorship` implementation.  The factory
    keeps the legacy single-argument contract (no observe hook).
    """

    agent = get_strategy("blackout")
    plan = FaultPlan.random_fraction(
        node_ids,
        malicious_fraction,
        agent.behavior,
        seed=seed,
        protected=(sender, *protected),
    )
    system = system_factory(plan)
    system.start()
    tx = Transaction.create(origin=sender, created_at=0.0)
    system.submit(sender, tx)
    system.run(until_ms=horizon_ms)

    honest = plan.honest_nodes(node_ids)
    delivered = set(system.stats.deliveries.get(tx.tx_id, {}))
    reached = sum(1 for node in honest if node in delivered)
    violation_log = getattr(system, "violation_log", None)
    return CensorshipResult(
        malicious_fraction=malicious_fraction,
        honest_nodes=len(honest),
        reached=reached,
        violation_summary=(
            violation_log.summary() if violation_log is not None else None
        ),
    )


@dataclass(frozen=True, slots=True)
class OverloadResult:
    """Latency with and without the flooder."""

    baseline_mean_ms: float
    attacked_mean_ms: float

    @property
    def degradation(self) -> float:
        """Multiplicative latency blow-up caused by the attack."""

        if self.baseline_mean_ms == 0:
            return float("inf")
        return self.attacked_mean_ms / self.baseline_mean_ms


def run_overload_trial(
    system_factory: Callable[[], object],
    sender: int,
    target: int,
    flood_interval_ms: float = 0.5,
    horizon_ms: float = 5_000.0,
) -> OverloadResult:
    """Measure mean delivery latency without and with a flooder on *target*.

    The attacked leg attaches a
    :class:`~repro.adversary.strategies.FloodStrategy` agent (empty
    coalition: the out-of-population flooder node is the whole attack).  The
    factory must build systems whose network has ``service_time_ms > 0``
    (otherwise nodes have infinite capacity and flooding is free).
    """

    def measure(with_flooder: bool) -> float:
        system = system_factory()
        if with_flooder:
            agent = FloodStrategy(target=target, interval_ms=flood_interval_ms)
            agent.attach(
                AgentContext(
                    system=system,
                    coalition=frozenset(),
                    ledger=AttackLedger(),
                    target=target,
                )
            )
        system.start()
        tx = Transaction.create(origin=sender, created_at=0.0)
        system.submit(sender, tx)
        system.run(until_ms=horizon_ms)
        latencies = system.stats.delivery_latencies(tx.tx_id)
        return sum(latencies) / len(latencies) if latencies else float("inf")

    return OverloadResult(
        baseline_mean_ms=measure(False), attacked_mean_ms=measure(True)
    )
