"""The adversary strategy zoo: agents, economics, fairness, trial runner.

This package turns the repo's fixed attack drivers into a pluggable
subsystem:

* :mod:`agent` — the :class:`StrategyAgent` base class (content / send /
  receive taps, coalition wiring) and the strategy registry;
* :mod:`strategies` — the built-in zoo: ``sandwich``, ``priority-race``,
  ``censor-reorder``, ``blackout``, ``flood``;
* :mod:`injection` — per-protocol action levers (how fast each protocol
  lets an adversary inject; where censorship is deniable);
* :mod:`economics` — extracted-value settlement: gross, fees, net;
* :mod:`fairness` — γ-receive-order-fairness and pairwise inversion rate
  over per-node receive orders;
* :mod:`zoo` — :func:`run_adversary_trial` scoring one strategy against one
  protocol, plus the migrated legacy censorship/overload trials;
* :mod:`cli` — ``python -m repro adversary``.

See ``docs/adversary.md`` for a worked example and
``docs/threat_model.md`` for how the zoo maps onto the paper's §VIII
adversary and the F3B / order-fairness literature.
"""

from .agent import (
    AgentContext,
    StrategyAgent,
    get_strategy,
    register_strategy,
    strategy_names,
)
from .economics import AttackLedger, AttackOutcome, AttackRecord, ValueModel
from .fairness import (
    FairnessReport,
    fairness_report,
    gamma_fairness,
    majority_order,
    pairwise_inversion_rate,
    receive_orders_from_mempools,
    receive_orders_from_trace,
)
from .injection import adversarial_strategy_for, censorship_is_deniable
from .strategies import (
    BlackoutStrategy,
    CensorReorderStrategy,
    FlooderNode,
    FloodStrategy,
    PriorityRaceStrategy,
    SandwichStrategy,
)
from .zoo import (
    AdversaryTrialResult,
    CensorshipResult,
    OverloadResult,
    run_adversary_trial,
    run_censorship_trial,
    run_overload_trial,
)

__all__ = [
    "AdversaryTrialResult",
    "AgentContext",
    "AttackLedger",
    "AttackOutcome",
    "AttackRecord",
    "BlackoutStrategy",
    "CensorReorderStrategy",
    "CensorshipResult",
    "FairnessReport",
    "FlooderNode",
    "FloodStrategy",
    "OverloadResult",
    "PriorityRaceStrategy",
    "SandwichStrategy",
    "StrategyAgent",
    "ValueModel",
    "adversarial_strategy_for",
    "censorship_is_deniable",
    "fairness_report",
    "gamma_fairness",
    "get_strategy",
    "majority_order",
    "pairwise_inversion_rate",
    "receive_orders_from_mempools",
    "receive_orders_from_trace",
    "register_strategy",
    "run_adversary_trial",
    "run_censorship_trial",
    "run_overload_trial",
    "strategy_names",
]
