"""``python -m repro adversary`` — run zoo strategies against a protocol.

Examples::

    # One sandwich trial against HERMES on a 100-node network
    python -m repro adversary --protocol hermes --strategy sandwich -n 100

    # The full extraction-strategy sweep against Mercury, 5 trials each
    python -m repro adversary --protocol mercury --trials 5

    # Fee-market race with a 33% coalition and a priced victim
    python -m repro adversary --protocol narwhal --strategy priority-race \\
        --fraction 0.33 --victim-fee 2.0 --fee-premium 0.5

Prints one row per (strategy, trial) with the verdict, extracted value and
fairness metrics, then per-strategy means.  For grid sweeps across protocols
and fractions use the resumable figure runner instead:
``repro.experiments.fig7_adversary.run_parallel`` (task ``fig7.point``).
"""

from __future__ import annotations

import argparse

from ..utils.tables import format_table

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro adversary",
        description="Run attack strategies from the zoo against one protocol.",
    )
    parser.add_argument(
        "--protocol",
        default="hermes",
        help="protocol under attack (hermes, lzero, narwhal, mercury, f3b, ...)",
    )
    parser.add_argument(
        "--strategy",
        action="append",
        dest="strategies",
        metavar="NAME",
        help="strategy to run (repeatable; default: sandwich, priority-race, "
        "censor-reorder)",
    )
    parser.add_argument(
        "-n", "--nodes", type=int, default=100, help="network size (default 100)"
    )
    parser.add_argument(
        "--fraction",
        type=float,
        default=0.2,
        help="malicious fraction (default 0.2)",
    )
    parser.add_argument(
        "--trials", type=int, default=3, help="trials per strategy (default 3)"
    )
    parser.add_argument(
        "--victim-value",
        type=float,
        default=100.0,
        help="opportunity value carried by the victim transaction (default 100)",
    )
    parser.add_argument(
        "--victim-fee", type=float, default=1.0, help="victim's fee bid (default 1)"
    )
    parser.add_argument(
        "--fee-premium",
        type=float,
        default=1.0,
        help="how far above the victim's fee strategies bid (default 1)",
    )
    parser.add_argument(
        "--background-txs",
        type=int,
        default=10,
        help="honest background transactions per trial (default 10)",
    )
    parser.add_argument(
        "--proposal-delay-ms",
        type=float,
        default=250.0,
        help="proposer seals its block this long after the victim arrives "
        "(default 250; negative disables the cutoff)",
    )
    parser.add_argument(
        "--horizon-ms",
        type=float,
        default=4_000.0,
        help="simulation horizon per trial (default 4000)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    parser.add_argument(
        "--list", action="store_true", help="list registered strategies and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    from ..adversary import ValueModel, run_adversary_trial, strategy_names
    from ..experiments.harness import build_environment, protocol_factories
    from ..utils.rng import derive_rng

    args = build_parser().parse_args(argv)
    if args.list:
        for name in strategy_names():
            print(name)
        return 0

    strategies = args.strategies or ["sandwich", "priority-race", "censor-reorder"]
    unknown = sorted(set(strategies) - set(strategy_names()))
    if unknown:
        print(
            f"unknown strategies: {', '.join(unknown)} "
            f"(known: {', '.join(strategy_names())})"
        )
        return 2

    env = build_environment(num_nodes=args.nodes, seed=args.seed)
    factories = protocol_factories(
        env, hermes_overrides={"gossip_fallback_enabled": False}
    )
    if args.protocol not in factories:
        print(
            f"unknown protocol {args.protocol!r} "
            f"(known: {', '.join(sorted(factories))})"
        )
        return 2

    nodes = env.physical.nodes()
    rng = derive_rng(args.seed, "adversary-cli-pairs")
    pairs = [tuple(rng.sample(nodes, 2)) for _ in range(args.trials)]
    value_model = ValueModel(
        victim_value=args.victim_value, fee_premium=args.fee_premium
    )
    delay = None if args.proposal_delay_ms < 0 else args.proposal_delay_ms

    headers = [
        "strategy",
        "trial",
        "won",
        "censored",
        "gross",
        "net",
        "γ",
        "inversions",
        "coverage",
    ]
    rows = []
    summary: dict[str, list] = {}
    for strategy in strategies:
        for trial, (victim, proposer) in enumerate(pairs):
            result = run_adversary_trial(
                factories[args.protocol],
                nodes,
                strategy,
                args.fraction,
                victim,
                proposer,
                value_model=value_model,
                victim_fee=args.victim_fee,
                background_txs=args.background_txs,
                proposal_delay_ms=delay,
                horizon_ms=args.horizon_ms,
                seed=args.seed + trial,
            )
            rows.append(
                [
                    strategy,
                    str(trial),
                    "yes" if result.verdict.attacker_won else "no",
                    "yes" if result.verdict.victim_censored else "no",
                    f"{result.outcome.gross:.1f}",
                    f"{result.outcome.net:+.1f}",
                    f"{result.fairness.gamma:.2f}",
                    f"{result.fairness.inversion_rate:.3f}",
                    f"{result.victim_coverage:.0%}",
                ]
            )
            summary.setdefault(strategy, []).append(result)
    print(
        format_table(
            headers,
            rows,
            title=(
                f"adversary zoo vs {args.protocol}, N={args.nodes}, "
                f"{args.fraction:.0%} malicious"
            ),
        )
    )
    print()
    mean_rows = []
    for strategy, results in summary.items():
        count = len(results)
        mean_rows.append(
            [
                strategy,
                f"{sum(r.verdict.attacker_won for r in results) / count:.0%}",
                f"{sum(r.outcome.net for r in results) / count:+.1f}",
                f"{sum(r.fairness.inversion_rate for r in results) / count:.3f}",
            ]
        )
    print(
        format_table(
            ["strategy", "success", "mean net", "mean inversions"],
            mean_rows,
            title=f"means over {args.trials} trials",
        )
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
