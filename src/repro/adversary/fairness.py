"""Order-fairness metrics over per-node receive orders.

Front-running defenses are ultimately about *ordering*: a dissemination layer
is fair when every honest node receives transactions in (nearly) the same
order, because then no single proposer's local order hands the adversary a
different block than any other proposer would have built.  Two metrics from
the order-fairness literature (Quick Order Fairness, FC'22 — see PAPERS.md)
quantify "nearly":

* **γ-receive-order-fairness** — for every pair of transactions, some
  γ-fraction of nodes agrees which came first.  :func:`gamma_fairness`
  returns the largest γ the observed orders support: the minimum over pairs
  of the majority share ``max(p, 1-p)``.  γ = 1 means unanimous pairwise
  agreement; γ close to ½ means some pair is a coin flip across the network.
  The convenient "badness" form ``1 - γ`` lives in
  :attr:`FairnessReport.gamma_unfairness` and sits in ``[0, ½]``.
* **pairwise inversion rate** — build the majority order (mean rank across
  nodes, i.e. a Borda count) and measure the average fraction of transaction
  pairs each node sees inverted relative to it.  0 = all nodes identical,
  and the theoretical maximum is below 1 (a node can't invert every pair
  against an order derived from the population containing it).

Both metrics are computed over the transactions *common to every order* —
a node that never received a transaction contributes no opinion on its pairs
— and both are symmetric under relabeling nodes (only the multiset of orders
matters), which the property-based tests in
``tests/property/test_adversary_properties.py`` pin down.

Receive orders come from two independent sources that must agree:
:func:`receive_orders_from_mempools` reads each node's mempool arrival times
after a run (this is literally the order a proposer at that node would pack a
block in, including F3B's commit-time backdating), and
:func:`receive_orders_from_trace` rebuilds the same orders from ``tx.deliver``
trace events for offline analysis of recorded runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Mapping, Sequence

__all__ = [
    "FairnessReport",
    "fairness_report",
    "gamma_fairness",
    "majority_order",
    "pairwise_inversion_rate",
    "receive_orders_from_mempools",
    "receive_orders_from_trace",
]


# ----------------------------------------------------------------------
# Collecting receive orders
# ----------------------------------------------------------------------


def receive_orders_from_mempools(
    system,
    nodes: Iterable[int] | None = None,
    tx_ids: Iterable[int] | None = None,
) -> dict[int, tuple[int, ...]]:
    """Each node's local receive order, straight from its mempool.

    *nodes* defaults to the system's honest nodes (an adversary's own orders
    say nothing about the fairness experienced by its targets).  *tx_ids*
    optionally restricts the orders to an interesting subset (e.g. victim +
    background transactions), dropping e.g. protocol-internal traffic.
    """

    if nodes is None:
        nodes = system.honest_node_ids()
    keep = None if tx_ids is None else frozenset(tx_ids)
    orders: dict[int, tuple[int, ...]] = {}
    for node_id in nodes:
        mempool = system.nodes[node_id].mempool
        order = tuple(
            tx.tx_id
            for tx in mempool.in_arrival_order()
            if keep is None or tx.tx_id in keep
        )
        orders[node_id] = order
    return orders


def receive_orders_from_trace(
    events,
    nodes: Iterable[int] | None = None,
    tx_ids: Iterable[int] | None = None,
) -> dict[int, tuple[int, ...]]:
    """Rebuild per-node receive orders from ``tx.deliver`` trace events.

    A delivery's position is its ``arrival_ms`` attribute when present (F3B
    backdates deliveries to commit arrival) and the event timestamp otherwise
    — the same rule :meth:`~repro.baselines.base.BaselineNode.deliver_locally`
    applies to the mempool, so for remote arrivals these orders match
    :func:`receive_orders_from_mempools` exactly.  Origins appear only via
    the trace's remote deliveries, so a transaction's origin node holds one
    fewer entry here than in its mempool.
    """

    keep_nodes = None if nodes is None else frozenset(nodes)
    keep_txs = None if tx_ids is None else frozenset(tx_ids)
    arrivals: dict[int, list[tuple[float, int]]] = {}
    for event in events:
        if event.name != "tx.deliver":
            continue
        attrs = event.attrs
        node = attrs["node"]
        tx_id = attrs["tx_id"]
        if keep_nodes is not None and node not in keep_nodes:
            continue
        if keep_txs is not None and tx_id not in keep_txs:
            continue
        when = attrs.get("arrival_ms", event.time_ms)
        arrivals.setdefault(node, []).append((when, tx_id))
    return {
        node: tuple(tx_id for _, tx_id in sorted(entries))
        for node, entries in sorted(arrivals.items())
    }


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


def _common_transactions(orders: Mapping[int, Sequence[int]]) -> list[int]:
    """Transactions present in every order, in ascending id order."""

    iterator = iter(orders.values())
    try:
        common = set(next(iterator))
    except StopIteration:
        return []
    for order in iterator:
        common &= set(order)
    return sorted(common)


def majority_order(orders: Mapping[int, Sequence[int]]) -> tuple[int, ...]:
    """The network's consensus receive order (Borda count over common txs).

    Transactions sort by their mean rank across all orders, ties broken by
    transaction id; only transactions every node received participate.  Ranks
    are positions within each order *after* restricting it to the common
    transactions, so non-common traffic interleaved in an order cannot shift
    the consensus (restriction invariance — pinned by the property tests).
    """

    common = _common_transactions(orders)
    if not common:
        return ()
    common_set = frozenset(common)
    total_rank = {tx_id: 0 for tx_id in common}
    for order in orders.values():
        rank = 0
        for tx_id in order:
            if tx_id in common_set:
                total_rank[tx_id] += rank
                rank += 1
    return tuple(sorted(common, key=lambda tx_id: (total_rank[tx_id], tx_id)))


def gamma_fairness(orders: Mapping[int, Sequence[int]]) -> float:
    """The largest γ such that every common pair has a γ-majority.

    Returns 1.0 when fewer than two orders or two common transactions exist
    (no pair can disagree).  Always in ``[½, 1]`` otherwise.
    """

    common = _common_transactions(orders)
    if len(common) < 2 or len(orders) < 2:
        return 1.0
    positions = [
        {tx_id: index for index, tx_id in enumerate(order)}
        for order in orders.values()
    ]
    count = len(positions)
    gamma = 1.0
    for a, b in combinations(common, 2):
        before = sum(1 for pos in positions if pos[a] < pos[b])
        share = before / count
        gamma = min(gamma, max(share, 1.0 - share))
    return gamma


def pairwise_inversion_rate(
    orders: Mapping[int, Sequence[int]],
    reference: Sequence[int] | None = None,
) -> float:
    """Mean fraction of common pairs each node sees inverted vs *reference*.

    *reference* defaults to :func:`majority_order`.  0.0 when all orders
    (restricted to common transactions) are identical; bounded by 1.0.
    """

    common = _common_transactions(orders)
    if len(common) < 2 or not orders:
        return 0.0
    if reference is None:
        reference = majority_order(orders)
    reference_pos = {tx_id: index for index, tx_id in enumerate(reference)}
    pairs = [
        (a, b)
        for a, b in combinations(common, 2)
        if a in reference_pos and b in reference_pos
    ]
    if not pairs:
        return 0.0
    total = 0.0
    for order in orders.values():
        positions = {tx_id: index for index, tx_id in enumerate(order)}
        inverted = sum(
            1
            for a, b in pairs
            if (positions[a] < positions[b]) != (reference_pos[a] < reference_pos[b])
        )
        total += inverted / len(pairs)
    return total / len(orders)


@dataclass(frozen=True, slots=True)
class FairnessReport:
    """Both fairness metrics plus the population they were computed over."""

    gamma: float
    inversion_rate: float
    num_orders: int
    num_transactions: int

    @property
    def gamma_unfairness(self) -> float:
        """``1 - γ``: 0 = unanimous pairwise agreement, ½ = a coin-flip pair."""

        return 1.0 - self.gamma


def fairness_report(orders: Mapping[int, Sequence[int]]) -> FairnessReport:
    """Compute every metric over one set of receive orders."""

    return FairnessReport(
        gamma=gamma_fairness(orders),
        inversion_rate=pairwise_inversion_rate(orders),
        num_orders=len(orders),
        num_transactions=len(_common_transactions(orders)),
    )
