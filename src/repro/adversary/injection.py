"""Per-protocol injection and censorship levers.

Every strategy in the zoo eventually has to *act*: put an adversarial
transaction on the wire, or suppress a victim's.  What it is allowed to do
differs per protocol, and those differences are the paper's point (§VIII-F):

* **HERMES** — relays only accept transactions from legitimate overlay
  predecessors carrying a valid TRS, so the adversary *must* go through the
  committee (paying the seed round-trip) and over a randomly assigned overlay
  it cannot choose.
* **L∅** — mempool commitments make out-of-band injection attributable, so the
  adversarial transaction travels through ordinary partner gossip.
* **Narwhal** — no dissemination accountability; the adversary broadcasts its
  own batch immediately.
* **Mercury** — no sender verification at all: the adversary injects the
  transaction *directly* to every cluster landmark, skipping cluster routing.
* **F3B** — injection is ordinary commit-then-reveal, but the adversary's
  *reaction time* is what the defense attacks: by the time content is
  observable, every honest node has already locked the victim's position.

These helpers started life in :mod:`repro.attacks.frontrun` and moved here
when the strategy zoo became their primary consumer; the old module re-exports
them unchanged.
"""

from __future__ import annotations

from typing import Callable

from ..baselines.mercury import MERCURY_TX_KIND, MercurySystem
from ..mempool.transaction import Transaction
from ..net.events import Message

__all__ = [
    "adversarial_strategy_for",
    "censorship_is_deniable",
    "default_adversarial_submit",
    "mercury_direct_injection",
]


def default_adversarial_submit(system, node, tx: Transaction) -> None:
    """Submit through the protocol (what accountability forces)."""

    node.submit_transaction(tx)


def mercury_direct_injection(system: MercurySystem, node, tx: Transaction) -> None:
    """Target Mercury's critical cluster nodes directly.

    Mercury performs no sender verification, so the adversary pushes its
    transaction straight to every cluster landmark (the relays every cluster's
    traffic funnels through) in addition to its own peers — skipping the
    cluster routing the victim's transaction has to take.
    """

    system.network.stats.record_dissemination_start(tx.tx_id, system.simulator.now)
    node.deliver_locally(tx)
    message = Message(MERCURY_TX_KIND, tx, tx.size_bytes)
    targets = set(node.peers) | set(system.landmarks)
    for peer in targets:
        if peer != node.node_id:
            node.send(peer, message)


def adversarial_strategy_for(system) -> Callable:
    """The fastest injection the protocol's checks still permit."""

    if isinstance(system, MercurySystem):
        return mercury_direct_injection
    return default_adversarial_submit


def censorship_is_deniable(system) -> bool:
    """Whether a colluding relay can suppress the victim tx without exposure.

    A rational adversary only censors where it cannot be attributed:

    * **HERMES** — relays must prove they forwarded along the signed overlay
      (§I: nodes "prove adherence to the mempool's dissemination policies");
      every receiver knows its f+1 predecessors, so a silent predecessor is
      identified and excluded.  No deniable censorship.
    * **L∅** — mempool commitments and witnessing uncover selective forwarding
      with high probability.  No deniable censorship.
    * **F3B** — commits are indistinguishable ciphertexts, so *targeted*
      pre-reveal censorship is impossible outright; post-reveal suppression is
      deniable but too late to change positions.  Treated as non-deniable
      because the lever the zoo models (withhold the victim's frames before
      the proposer sees them) does not exist.
    * **Narwhal / Mercury / plain gossip** — no relay accountability at all.
    """

    from ..baselines.f3b import F3BSystem
    from ..baselines.lzero import LZeroSystem
    from ..core.protocol import HermesSystem

    return not isinstance(system, (LZeroSystem, HermesSystem, F3BSystem))
