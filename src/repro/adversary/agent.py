"""Strategy agents: stateful adversaries that observe taps and act in-protocol.

The legacy attack drivers (:mod:`repro.attacks`) hard-coded one behaviour per
trial function.  The zoo splits the adversary into a reusable shape:

* a **coalition** — the malicious node set a
  :class:`~repro.net.faults.FaultPlan` drew, all running the agent's declared
  :class:`~repro.net.faults.Behavior`;
* one **agent** — a single stateful object that *is* the adversary's brain.
  It observes through every coalition node at once (colluders share
  knowledge instantly — the strongest standard assumption) and acts through
  whichever node is best placed.

Agents observe through three channels, cheapest first:

1. **content taps** — :meth:`StrategyAgent.on_observe` fires whenever a
   coalition node's mempool learns a transaction's *content* (the
   ``observe_hook`` every system already threads to its nodes);
2. **send taps** — :meth:`StrategyAgent.on_send` sees every frame a coalition
   node transmits *or is about to be sent* (wired to
   :attr:`Network.on_send`, filtered to coalition-adjacent traffic);
3. **receive taps** — :meth:`StrategyAgent.on_receive` sees frames arriving
   at coalition nodes.  Opt-in via :attr:`StrategyAgent.wants_receive_tap`
   because installing :attr:`Network.on_receive` disables the simulator's
   flyweight scheduling fast path for *every* delivery — the benchmark in
   ``benchmarks/test_adversary_throughput.py`` holds send-tap-only agents to
   <10% overhead, a budget a receive tap would not meet.

Taps chain: installing an agent composes with whatever callback chaos
invariant monitors (or another agent) already registered, so strategies and
fault-window scenarios can observe the same run.

Acting happens through :mod:`repro.adversary.injection` — the fastest path
each protocol's checks still permit — and targeted censorship through
:meth:`AgentContext.censor`, which only takes effect where suppression is
deniable (:func:`~repro.adversary.injection.censorship_is_deniable`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import ConfigurationError
from ..mempool.transaction import Transaction
from ..net.events import Message
from ..net.faults import Behavior
from .economics import AttackLedger, ValueModel
from .injection import adversarial_strategy_for, censorship_is_deniable

__all__ = [
    "AgentContext",
    "StrategyAgent",
    "get_strategy",
    "register_strategy",
    "strategy_names",
]


@dataclass
class AgentContext:
    """Everything an attached agent needs to perceive and act on one trial."""

    system: object
    coalition: frozenset[int]
    ledger: AttackLedger
    value_model: ValueModel = field(default_factory=ValueModel)
    victim_tx_id: int | None = None
    #: A distinguished honest node of interest (the proposer in zoo trials);
    #: strategies that aim traffic at infrastructure (flooding) default to it.
    target: int | None = None
    #: Optional live fee market (:class:`repro.population.FeeMarket`).  When
    #: set, :meth:`bid_fee` prices attack legs against the *current* base fee
    #: instead of a flat premium over the victim's bid — so a spiking market
    #: raises the cost of every landed leg (see ``economics.settle``).
    fee_market: object | None = None

    @property
    def now(self) -> float:
        return self.system.simulator.now

    @property
    def deniable(self) -> bool:
        return censorship_is_deniable(self.system)

    def is_victim(self, tx: Transaction) -> bool:
        return self.victim_tx_id is not None and tx.tx_id == self.victim_tx_id

    def bid_fee(self, reference_fee: float) -> float:
        """The fee an attack leg bids to outrank a *reference_fee* bid.

        Without a :attr:`fee_market` this is the historical flat premium
        (``reference_fee + value_model.fee_premium`` — byte-identical to the
        pre-market zoo).  With one, the leg must also clear the current base
        fee, so market spikes make attacking more expensive — potentially
        unprofitable (``settle()`` charges this bid for every landed leg).
        """

        premium = self.value_model.fee_premium
        market = self.fee_market
        if market is None:
            return reference_fee + premium
        return max(reference_fee, market.base_fee) + premium

    def inject(self, node, tx: Transaction, role: str) -> None:
        """Launch *tx* from *node* on the protocol's fastest permitted path."""

        self.ledger.record(tx, role, self.now)
        adversarial_strategy_for(self.system)(self.system, node, tx)

    def censor(self, tx: Transaction) -> bool:
        """Have the whole coalition withhold *tx* — where deniable.

        Returns whether censorship was actually armed; against accountable
        protocols (HERMES, L∅) and F3B this is a no-op, because a rational
        adversary does not censor where it would be attributed (or cannot
        target ciphertexts it cannot read).
        """

        if not self.deniable:
            return False
        for node_id in self.coalition:
            self.system.nodes[node_id].censor_ids.add(tx.tx_id)
        return True


# ----------------------------------------------------------------------
# The agent base class
# ----------------------------------------------------------------------


def _chain(existing: Callable | None, addition: Callable) -> Callable:
    """Compose single-slot network callbacks, existing first."""

    if existing is None:
        return addition

    def chained(src: int, dst: int, message: Message, now: float) -> None:
        existing(src, dst, message, now)
        addition(src, dst, message, now)

    return chained


class StrategyAgent:
    """Base class for zoo strategies.

    Subclasses override the ``on_*`` hooks they care about, declare the
    coalition's :class:`Behavior` via :attr:`behavior`, and register
    themselves with :func:`register_strategy`.  One instance drives one
    trial; instances are cheap and never reused across runs.
    """

    #: Registry key; subclasses must override.
    name: str = ""
    #: The Behavior every coalition node runs as (what the FaultPlan draws).
    behavior: Behavior = Behavior.FRONT_RUN
    #: Whether the proposer judges this strategy's block on the fee market
    #: (descending :attr:`Transaction.fee`) instead of arrival order.
    block_priority: bool = False
    #: Opt into the expensive receive tap (see module docstring).
    wants_receive_tap: bool = False

    def __init__(self) -> None:
        self.ctx: AgentContext | None = None
        #: tx_id -> first simulation time any coalition-adjacent frame
        #: carrying it was witnessed (transport-level sighting — earlier than
        #: content observation for protocols that relay before delivering).
        self.first_frame_ms: dict[int, float] = {}
        self.frames_seen: int = 0

    # -- lifecycle ------------------------------------------------------

    def attach(self, ctx: AgentContext) -> None:
        """Bind to a built (unstarted) system and install the taps."""

        self.ctx = ctx
        network = ctx.system.network
        network.on_send = _chain(network.on_send, self._tap_send)
        if self.wants_receive_tap:
            network.on_receive = _chain(network.on_receive, self._tap_receive)
        self.on_attach()

    def on_attach(self) -> None:
        """Called once after taps are installed, before the system starts."""

    # -- observation channels ------------------------------------------

    def observe(self, node, tx: Transaction) -> None:
        """Content-tap entry point (called for coalition nodes only)."""

        self.on_observe(node, tx)

    def on_observe(self, node, tx: Transaction) -> None:
        """A coalition node's mempool just learned *tx* (content visible)."""

    def _tap_send(self, src: int, dst: int, message: Message, now: float) -> None:
        coalition = self.ctx.coalition
        if src in coalition or dst in coalition:
            self.frames_seen += 1
            tx_id = message.tx_id
            if tx_id is not None and tx_id not in self.first_frame_ms:
                self.first_frame_ms[tx_id] = now
            self.on_send(src, dst, message, now)

    def on_send(self, src: int, dst: int, message: Message, now: float) -> None:
        """A frame touching the coalition was put on the wire."""

    def _tap_receive(self, src: int, dst: int, message: Message, now: float) -> None:
        if dst in self.ctx.coalition:
            self.on_receive(src, dst, message, now)

    def on_receive(self, src: int, dst: int, message: Message, now: float) -> None:
        """A frame arrived at a coalition node (receive tap opted in)."""

    # -- wrap-up --------------------------------------------------------

    def finalize(self) -> None:
        """Called after the simulation horizon, before settlement."""


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: dict[str, type[StrategyAgent]] = {}


def register_strategy(cls: type[StrategyAgent]) -> type[StrategyAgent]:
    """Class decorator adding a strategy to the zoo under ``cls.name``."""

    if not cls.name:
        raise ConfigurationError(f"{cls.__name__} must set a non-empty name")
    if cls.name in _REGISTRY:
        raise ConfigurationError(f"strategy {cls.name!r} registered twice")
    _REGISTRY[cls.name] = cls
    return cls


def strategy_names() -> tuple[str, ...]:
    """Every registered strategy, sorted."""

    from . import strategies  # noqa: F401  (ensure builtins are registered)

    return tuple(sorted(_REGISTRY))


def get_strategy(name: str, **params) -> StrategyAgent:
    """Instantiate the registered strategy *name* with *params*."""

    from . import strategies  # noqa: F401  (ensure builtins are registered)

    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise ConfigurationError(
            f"unknown strategy {name!r} (known: {known})"
        ) from None
    return cls(**params)
