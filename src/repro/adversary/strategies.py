"""The built-in strategy zoo.

Five strategies spanning the attack surface the paper (§VIII) and the
defenses it compares against care about:

* :class:`SandwichStrategy` — the canonical DeFi extraction: a leading leg
  racing ahead of the victim plus a trailing leg behind it.  Full value only
  on a complete sandwich.
* :class:`PriorityRaceStrategy` — outbid instead of outrun: launch a copy
  with ``victim.fee + fee_premium`` and let a fee-market proposer
  (``priority`` blocks) do the reordering.  Dissemination speed stops
  mattering; the bid does — and the bid is subtracted from the profit.
* :class:`CensorReorderStrategy` — the coalition withholds the victim's
  frames (where the protocol cannot attribute it) while its first observer
  pushes a replacement.  This is exactly the composed adversary of the
  legacy :func:`repro.attacks.frontrun.run_front_running_trial`.
* :class:`BlackoutStrategy` — no extraction at all: every coalition node
  silently drops relayed traffic (``DROP_RELAY``).  The zoo measures honest
  coverage; this is the legacy censorship trial (fig5b) as a strategy.
* :class:`FloodStrategy` — infrastructure attack: an out-of-population
  flooder directs junk at one relay (the proposer by default), degrading
  every delivery that routes through it.  The legacy overload trial as a
  strategy.

Each strategy acts through :meth:`AgentContext.inject` / ``censor``, so the
per-protocol levers (Mercury direct injection, HERMES committee path,
accountability gating) apply uniformly — a strategy never special-cases a
protocol.
"""

from __future__ import annotations

from ..mempool.transaction import Transaction
from ..net.events import Message
from ..net.faults import Behavior
from ..net.node import ProtocolNode
from .agent import StrategyAgent, register_strategy

__all__ = [
    "BlackoutStrategy",
    "CensorReorderStrategy",
    "FlooderNode",
    "FloodStrategy",
    "PriorityRaceStrategy",
    "SandwichStrategy",
]


class _FirstObserverStrategy(StrategyAgent):
    """Shared scaffolding: trigger once, on the first coalition sighting."""

    def __init__(self) -> None:
        super().__init__()
        self.attacker: int | None = None
        self.observation_time: float | None = None

    def on_observe(self, node, tx: Transaction) -> None:
        ctx = self.ctx
        if not ctx.is_victim(tx):
            return
        self.on_victim_everywhere(node, tx)
        if self.attacker is not None:
            return
        self.attacker = node.node_id
        self.observation_time = node.now
        self.on_victim_first(node, tx)

    def on_victim_everywhere(self, node, tx: Transaction) -> None:
        """Every coalition node's reaction to seeing the victim's content."""

    def on_victim_first(self, node, tx: Transaction) -> None:
        """The first observer's reaction (launch legs here)."""


@register_strategy
class SandwichStrategy(_FirstObserverStrategy):
    """Lead ahead of the victim, trail behind it, capture the spread.

    The leading leg launches the instant any coalition node reads the
    victim's content, bidding ``victim.fee + fee_premium`` (on arrival-order
    proposers the bid buys nothing but is still paid if included — sandwiches
    are not free).  The trailing leg launches ``trail_delay_ms`` later with
    no bid: it *wants* to be behind the victim.
    """

    name = "sandwich"

    def __init__(self, trail_delay_ms: float = 150.0) -> None:
        super().__init__()
        if trail_delay_ms < 0:
            raise ValueError(f"trail_delay_ms must be >= 0, got {trail_delay_ms}")
        self.trail_delay_ms = trail_delay_ms

    def on_victim_first(self, node, tx: Transaction) -> None:
        ctx = self.ctx
        lead = Transaction.create(
            origin=node.node_id,
            created_at=node.now,
            tag="adversarial",
            fee=ctx.bid_fee(tx.fee),
        )
        ctx.inject(node, lead, role="lead")

        def launch_trail() -> None:
            trail = Transaction.create(
                origin=node.node_id, created_at=node.now, tag="adversarial"
            )
            ctx.inject(node, trail, role="trail")

        node.schedule(self.trail_delay_ms, launch_trail)


@register_strategy
class PriorityRaceStrategy(_FirstObserverStrategy):
    """Outbid the victim on a fee market instead of outrunning it.

    Declares :attr:`block_priority`, so the zoo's proposer packs the block by
    descending fee — the race is decided by ``victim.fee + fee_premium``
    arriving *at all* before the proposal cutoff, not by arriving first.
    Against fast dissemination this almost always succeeds; the defense story
    moves entirely into economics (the premium is paid win or lose-to-cutoff)
    and fairness metrics.
    """

    name = "priority-race"
    block_priority = True

    def on_victim_first(self, node, tx: Transaction) -> None:
        ctx = self.ctx
        race = Transaction.create(
            origin=node.node_id,
            created_at=node.now,
            tag="adversarial",
            fee=ctx.bid_fee(tx.fee),
        )
        ctx.inject(node, race, role="race")


@register_strategy
class CensorReorderStrategy(_FirstObserverStrategy):
    """Withhold the victim's frames coalition-wide while pushing a rival.

    Censorship arms on *every* coalition node the moment any of them reads
    the victim's content (colluders share knowledge), but only where the
    protocol cannot attribute suppression — against HERMES and L∅ the
    censor half is a no-op and the strategy degrades to a plain race.
    """

    name = "censor-reorder"

    def on_victim_everywhere(self, node, tx: Transaction) -> None:
        # Arm this node (and, on first sighting, the whole coalition —
        # re-arming is idempotent for the rest).
        self.ctx.censor(tx)

    def on_victim_first(self, node, tx: Transaction) -> None:
        push = Transaction.create(
            origin=node.node_id, created_at=node.now, tag="adversarial"
        )
        self.ctx.inject(node, push, role="push")


@register_strategy
class BlackoutStrategy(StrategyAgent):
    """Indiscriminate relay blackout: the legacy censorship trial.

    The coalition's entire effect is its :attr:`behavior` — every malicious
    node runs ``DROP_RELAY`` and silently consumes what it should forward.
    No injection, no targeting; success is measured as the complement of
    honest coverage, not extracted value.
    """

    name = "blackout"
    behavior = Behavior.DROP_RELAY


_JUNK_KIND = "overload-junk"
_JUNK_BYTES = 250


class FlooderNode(ProtocolNode):
    """Sends junk to one target at a fixed rate.

    Registered with an id outside the protocol population, so it participates
    in no overlay — pure background pressure on the target's inbox.  (Moved
    here from :mod:`repro.attacks.overload`, which re-exports it.)
    """

    def __init__(
        self, node_id: int, network, target: int, interval_ms: float
    ) -> None:
        super().__init__(node_id, network)
        if interval_ms <= 0:
            raise ValueError(f"interval_ms must be positive, got {interval_ms}")
        self.target = target
        self.interval_ms = interval_ms

    def on_start(self) -> None:
        self._flood()

    def _flood(self) -> None:
        self.send(self.target, Message(_JUNK_KIND, None, _JUNK_BYTES))
        self.schedule(self.interval_ms, self._flood)

    def on_message(self, sender: int, message: Message) -> None:
        pass  # the flooder ignores everything


@register_strategy
class FloodStrategy(StrategyAgent):
    """Overwhelm one relay with junk traffic: the legacy overload trial.

    Spawns a :class:`FlooderNode` against ``target`` (the trial's proposer
    when unset) at attach time.  Only bites when the network models per-node
    service time (``Network.service_time_ms > 0``) — with infinite-capacity
    nodes, flooding is free for the defender too.  Coalition nodes otherwise
    behave honestly: the flooder is the whole attack.
    """

    name = "flood"
    behavior = Behavior.HONEST

    def __init__(self, target: int | None = None, interval_ms: float = 0.5) -> None:
        super().__init__()
        self.target = target
        self.interval_ms = interval_ms
        self.flooder: FlooderNode | None = None

    def on_attach(self) -> None:
        ctx = self.ctx
        target = self.target if self.target is not None else ctx.target
        if target is None:
            raise ValueError("FloodStrategy needs a target (or a trial proposer)")
        network = ctx.system.network
        flooder_id = max(network.node_ids()) + 1
        self.flooder = FlooderNode(
            flooder_id, network, target, interval_ms=self.interval_ms
        )
