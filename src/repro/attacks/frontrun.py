"""Front-running adversary (paper §VIII-F).

Threat model: a fraction of nodes is malicious.  The *first* malicious node to
observe a victim transaction immediately generates an adversarial transaction
and disseminates it, racing the victim to the block proposer.  The attack
succeeds when the adversarial transaction precedes the victim's in the
proposer's block (built in local-arrival order).

How each protocol constrains the adversary:

* **HERMES** — relays only accept transactions from legitimate overlay
  predecessors carrying a valid TRS, so the adversary *must* go through the
  committee (paying the seed round-trip) and over a randomly assigned overlay
  it cannot choose.
* **L∅** — mempool commitments make out-of-band injection attributable, so the
  adversarial transaction travels through ordinary partner gossip.
* **Narwhal** — no dissemination accountability; the adversary broadcasts its
  own batch immediately (but so did the victim's origin, one hop to everyone).
* **Mercury** — no sender verification at all: the adversary injects the
  transaction *directly* to every node, skipping cluster routing entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..adversary.injection import (
    adversarial_strategy_for,
    censorship_is_deniable,
    default_adversarial_submit,
    mercury_direct_injection,
)
from ..baselines.base import BaseSystem
from ..core.protocol import HermesSystem
from ..mempool.blocks import build_block
from ..mempool.ordering import FrontRunVerdict, judge_front_running
from ..mempool.transaction import Transaction
from ..net.faults import Behavior, FaultPlan

__all__ = ["FrontRunResult", "FrontRunTrial", "run_front_running_trial"]

# The per-protocol levers moved to repro.adversary.injection when the strategy
# zoo became their primary consumer; the historical private names stay bound
# for callers that reached in.
_default_adversarial_submit = default_adversarial_submit
_mercury_direct_injection = mercury_direct_injection


@dataclass(frozen=True, slots=True)
class FrontRunResult:
    """Outcome of one front-running trial."""

    verdict: FrontRunVerdict
    attacker: int | None
    observation_time: float | None
    victim_arrival_at_proposer: float | None
    adversarial_arrival_at_proposer: float | None
    #: :meth:`~repro.core.accountability.ViolationLog.summary` of the evidence
    #: the run produced, when the protocol keeps a violation log (HERMES);
    #: None for unaccountable baselines.
    violation_summary: dict | None = None

    @property
    def attack_launched(self) -> bool:
        return self.attacker is not None


@dataclass
class FrontRunTrial:
    """Mutable state shared by the observe hooks during one trial."""

    victim_tx_id: int
    attacker: int | None = None
    observation_time: float | None = None
    adversarial_tx: Transaction | None = None


def run_front_running_trial(
    system_factory: Callable[[FaultPlan, Callable], "BaseSystem | HermesSystem"],
    node_ids: list[int],
    malicious_fraction: float,
    victim: int,
    proposer: int,
    horizon_ms: float = 5_000.0,
    seed: int = 0,
    protected: tuple[int, ...] = (),
) -> FrontRunResult:
    """Run one complete front-running trial.

    *system_factory* receives the fault plan and an observe hook and must
    return a ready (unstarted) system.  The victim and proposer (and any
    *protected* ids, e.g. the TRS committee) are never corrupted.
    """

    plan = FaultPlan.random_fraction(
        node_ids,
        malicious_fraction,
        Behavior.FRONT_RUN,
        seed=seed,
        protected=(victim, proposer, *protected),
    )

    trial = FrontRunTrial(victim_tx_id=-1)
    strategy_holder: list[Callable] = []
    system_holder: list[object] = []

    def observe_hook(node, tx: Transaction) -> None:
        if node.behavior is not Behavior.FRONT_RUN:
            return
        if tx.tx_id != trial.victim_tx_id:
            return
        system = system_holder[0]
        # Every colluding observer censors the victim transaction where the
        # protocol cannot attribute it (set before the caller forwards).
        if censorship_is_deniable(system):
            node.censor_ids.add(tx.tx_id)
        # Only the first observer launches the adversarial transaction.
        if trial.attacker is not None:
            return
        trial.attacker = node.node_id
        trial.observation_time = node.now
        adversarial = Transaction.create(
            origin=node.node_id, created_at=node.now, tag="adversarial"
        )
        trial.adversarial_tx = adversarial
        strategy_holder[0](system, node, adversarial)

    system = system_factory(plan, observe_hook)
    system_holder.append(system)
    strategy_holder.append(adversarial_strategy_for(system))

    system.start()
    victim_tx = Transaction.create(origin=victim, created_at=0.0, tag="victim")
    trial.victim_tx_id = victim_tx.tx_id
    system.submit(victim, victim_tx)
    system.run(until_ms=horizon_ms)

    proposer_node = system.nodes[proposer]
    block = build_block(proposer_node.mempool, system.simulator.now)
    adversarial_ids = (
        [trial.adversarial_tx.tx_id] if trial.adversarial_tx is not None else []
    )
    verdict = judge_front_running(block, victim_tx.tx_id, adversarial_ids)

    def arrival(tx_id: int | None) -> float | None:
        if tx_id is None or tx_id not in proposer_node.mempool:
            return None
        return proposer_node.mempool.arrival_time(tx_id)

    violation_log = getattr(system, "violation_log", None)
    return FrontRunResult(
        verdict=verdict,
        attacker=trial.attacker,
        observation_time=trial.observation_time,
        victim_arrival_at_proposer=arrival(victim_tx.tx_id),
        adversarial_arrival_at_proposer=arrival(
            trial.adversarial_tx.tx_id if trial.adversarial_tx else None
        ),
        violation_summary=(
            violation_log.summary() if violation_log is not None else None
        ),
    )
