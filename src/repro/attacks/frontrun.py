"""Front-running adversary (paper §VIII-F).

Threat model: a fraction of nodes is malicious.  The *first* malicious node to
observe a victim transaction immediately generates an adversarial transaction
and disseminates it, racing the victim to the block proposer.  The attack
succeeds when the adversarial transaction precedes the victim's in the
proposer's block (built in local-arrival order).

How each protocol constrains the adversary:

* **HERMES** — relays only accept transactions from legitimate overlay
  predecessors carrying a valid TRS, so the adversary *must* go through the
  committee (paying the seed round-trip) and over a randomly assigned overlay
  it cannot choose.
* **L∅** — mempool commitments make out-of-band injection attributable, so the
  adversarial transaction travels through ordinary partner gossip.
* **Narwhal** — no dissemination accountability; the adversary broadcasts its
  own batch immediately (but so did the victim's origin, one hop to everyone).
* **Mercury** — no sender verification at all: the adversary injects the
  transaction *directly* to every node, skipping cluster routing entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..baselines.base import BaseSystem
from ..baselines.mercury import MERCURY_TX_KIND, MercurySystem
from ..core.protocol import HermesSystem
from ..mempool.blocks import build_block
from ..mempool.ordering import FrontRunVerdict, judge_front_running
from ..mempool.transaction import Transaction
from ..net.events import Message
from ..net.faults import Behavior, FaultPlan
from ..utils.rng import derive_rng

__all__ = ["FrontRunResult", "FrontRunTrial", "run_front_running_trial"]


@dataclass(frozen=True, slots=True)
class FrontRunResult:
    """Outcome of one front-running trial."""

    verdict: FrontRunVerdict
    attacker: int | None
    observation_time: float | None
    victim_arrival_at_proposer: float | None
    adversarial_arrival_at_proposer: float | None
    #: :meth:`~repro.core.accountability.ViolationLog.summary` of the evidence
    #: the run produced, when the protocol keeps a violation log (HERMES);
    #: None for unaccountable baselines.
    violation_summary: dict | None = None

    @property
    def attack_launched(self) -> bool:
        return self.attacker is not None


@dataclass
class FrontRunTrial:
    """Mutable state shared by the observe hooks during one trial."""

    victim_tx_id: int
    attacker: int | None = None
    observation_time: float | None = None
    adversarial_tx: Transaction | None = None


def _default_adversarial_submit(system, node, tx: Transaction) -> None:
    """Submit through the protocol (what accountability forces)."""

    node.submit_transaction(tx)


def _mercury_direct_injection(system: MercurySystem, node, tx: Transaction) -> None:
    """Target Mercury's critical cluster nodes directly.

    Mercury performs no sender verification, so the adversary pushes its
    transaction straight to every cluster landmark (the relays every cluster's
    traffic funnels through) in addition to its own peers — skipping the
    cluster routing the victim's transaction has to take.
    """

    system.network.stats.record_dissemination_start(tx.tx_id, system.simulator.now)
    node.deliver_locally(tx)
    message = Message(MERCURY_TX_KIND, tx, tx.size_bytes)
    targets = set(node.peers) | set(system.landmarks)
    for peer in targets:
        if peer != node.node_id:
            node.send(peer, message)


def adversarial_strategy_for(system) -> Callable:
    """The fastest injection the protocol's checks still permit."""

    if isinstance(system, MercurySystem):
        return _mercury_direct_injection
    return _default_adversarial_submit


def censorship_is_deniable(system) -> bool:
    """Whether a colluding relay can suppress the victim tx without exposure.

    A rational adversary only censors where it cannot be attributed:

    * **HERMES** — relays must prove they forwarded along the signed overlay
      (§I: nodes "prove adherence to the mempool's dissemination policies");
      every receiver knows its f+1 predecessors, so a silent predecessor is
      identified and excluded.  No deniable censorship.
    * **L∅** — mempool commitments and witnessing uncover selective forwarding
      with high probability.  No deniable censorship.
    * **Narwhal / Mercury / plain gossip** — no relay accountability at all.
    """

    from ..baselines.lzero import LZeroSystem
    from ..core.protocol import HermesSystem

    return not isinstance(system, (LZeroSystem, HermesSystem))


def run_front_running_trial(
    system_factory: Callable[[FaultPlan, Callable], "BaseSystem | HermesSystem"],
    node_ids: list[int],
    malicious_fraction: float,
    victim: int,
    proposer: int,
    horizon_ms: float = 5_000.0,
    seed: int = 0,
    protected: tuple[int, ...] = (),
) -> FrontRunResult:
    """Run one complete front-running trial.

    *system_factory* receives the fault plan and an observe hook and must
    return a ready (unstarted) system.  The victim and proposer (and any
    *protected* ids, e.g. the TRS committee) are never corrupted.
    """

    plan = FaultPlan.random_fraction(
        node_ids,
        malicious_fraction,
        Behavior.FRONT_RUN,
        seed=seed,
        protected=(victim, proposer, *protected),
    )

    trial = FrontRunTrial(victim_tx_id=-1)
    strategy_holder: list[Callable] = []
    system_holder: list[object] = []

    def observe_hook(node, tx: Transaction) -> None:
        if node.behavior is not Behavior.FRONT_RUN:
            return
        if tx.tx_id != trial.victim_tx_id:
            return
        system = system_holder[0]
        # Every colluding observer censors the victim transaction where the
        # protocol cannot attribute it (set before the caller forwards).
        if censorship_is_deniable(system):
            node.censor_ids.add(tx.tx_id)
        # Only the first observer launches the adversarial transaction.
        if trial.attacker is not None:
            return
        trial.attacker = node.node_id
        trial.observation_time = node.now
        adversarial = Transaction.create(
            origin=node.node_id, created_at=node.now, tag="adversarial"
        )
        trial.adversarial_tx = adversarial
        strategy_holder[0](system, node, adversarial)

    system = system_factory(plan, observe_hook)
    system_holder.append(system)
    strategy_holder.append(adversarial_strategy_for(system))

    system.start()
    victim_tx = Transaction.create(origin=victim, created_at=0.0, tag="victim")
    trial.victim_tx_id = victim_tx.tx_id
    system.submit(victim, victim_tx)
    system.run(until_ms=horizon_ms)

    proposer_node = system.nodes[proposer]
    block = build_block(proposer_node.mempool, system.simulator.now)
    adversarial_ids = (
        [trial.adversarial_tx.tx_id] if trial.adversarial_tx is not None else []
    )
    verdict = judge_front_running(block, victim_tx.tx_id, adversarial_ids)

    def arrival(tx_id: int | None) -> float | None:
        if tx_id is None or tx_id not in proposer_node.mempool:
            return None
        return proposer_node.mempool.arrival_time(tx_id)

    violation_log = getattr(system, "violation_log", None)
    return FrontRunResult(
        verdict=verdict,
        attacker=trial.attacker,
        observation_time=trial.observation_time,
        victim_arrival_at_proposer=arrival(victim_tx.tx_id),
        adversarial_arrival_at_proposer=arrival(
            trial.adversarial_tx.tx_id if trial.adversarial_tx else None
        ),
        violation_summary=(
            violation_log.summary() if violation_log is not None else None
        ),
    )
