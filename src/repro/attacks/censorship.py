"""Censorship / robustness trials (paper §VIII-G, Fig. 5b).

.. deprecated::
    The canonical implementation moved to :mod:`repro.adversary.zoo`, where
    the trial runs the strategy-agent API's
    :class:`~repro.adversary.strategies.BlackoutStrategy` (the same
    ``DROP_RELAY`` fault plan, bit-identical measurements).  This module
    re-exports the public names unchanged for older callers; import from
    :mod:`repro.adversary` in new code.
"""

from __future__ import annotations

from ..adversary.zoo import CensorshipResult, run_censorship_trial

__all__ = ["CensorshipResult", "run_censorship_trial"]
