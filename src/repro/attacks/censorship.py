"""Censorship / robustness trials (paper §VIII-G, Fig. 5b).

A fraction of nodes silently consumes messages without forwarding
(``DROP_RELAY``).  Robustness is the fraction of *honest* nodes that still
receive a disseminated message within the horizon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..mempool.transaction import Transaction
from ..net.faults import Behavior, FaultPlan

__all__ = ["CensorshipResult", "run_censorship_trial"]


@dataclass(frozen=True, slots=True)
class CensorshipResult:
    """Coverage outcome of one censorship trial."""

    malicious_fraction: float
    honest_nodes: int
    reached: int
    #: :meth:`~repro.core.accountability.ViolationLog.summary` of the evidence
    #: the run produced, when the protocol keeps a violation log (HERMES);
    #: None for unaccountable baselines.
    violation_summary: dict | None = None

    @property
    def coverage(self) -> float:
        return self.reached / self.honest_nodes if self.honest_nodes else 0.0


def run_censorship_trial(
    system_factory: Callable[[FaultPlan], object],
    node_ids: list[int],
    malicious_fraction: float,
    sender: int,
    horizon_ms: float = 5_000.0,
    seed: int = 0,
    protected: tuple[int, ...] = (),
) -> CensorshipResult:
    """Disseminate one message under censorship and measure honest coverage."""

    plan = FaultPlan.random_fraction(
        node_ids,
        malicious_fraction,
        Behavior.DROP_RELAY,
        seed=seed,
        protected=(sender, *protected),
    )
    system = system_factory(plan)
    system.start()
    tx = Transaction.create(origin=sender, created_at=0.0)
    system.submit(sender, tx)
    system.run(until_ms=horizon_ms)

    honest = plan.honest_nodes(node_ids)
    delivered = set(system.stats.deliveries.get(tx.tx_id, {}))
    reached = sum(1 for node in honest if node in delivered)
    violation_log = getattr(system, "violation_log", None)
    return CensorshipResult(
        malicious_fraction=malicious_fraction,
        honest_nodes=len(honest),
        reached=reached,
        violation_summary=(
            violation_log.summary() if violation_log is not None else None
        ),
    )
