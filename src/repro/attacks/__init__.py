"""Adversary drivers: front-running, censorship, and targeted overload.

These modules inject the same adversary into HERMES and every baseline so the
protocols can be compared under identical attack pressure (Figs. 5a/5b).

.. deprecated::
    The censorship and overload trials (and the per-protocol injection
    levers) migrated to the strategy zoo in :mod:`repro.adversary`; this
    package re-exports them unchanged.  :mod:`frontrun` remains the Fig. 5a
    driver, now built on the zoo's levers.
"""

from .censorship import CensorshipResult, run_censorship_trial
from .frontrun import FrontRunResult, FrontRunTrial, run_front_running_trial
from .overload import OverloadResult, run_overload_trial

__all__ = [
    "CensorshipResult",
    "FrontRunResult",
    "FrontRunTrial",
    "OverloadResult",
    "run_censorship_trial",
    "run_front_running_trial",
    "run_overload_trial",
]
