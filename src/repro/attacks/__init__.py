"""Adversary drivers: front-running, censorship, and targeted overload.

These modules inject the same adversary into HERMES and every baseline so the
protocols can be compared under identical attack pressure (Figs. 5a/5b).
"""

from .censorship import CensorshipResult, run_censorship_trial
from .frontrun import FrontRunResult, FrontRunTrial, run_front_running_trial
from .overload import OverloadResult, run_overload_trial

__all__ = [
    "CensorshipResult",
    "FrontRunResult",
    "FrontRunTrial",
    "OverloadResult",
    "run_censorship_trial",
    "run_front_running_trial",
    "run_overload_trial",
]
