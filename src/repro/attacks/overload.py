"""Targeted overload attack.

.. deprecated::
    The canonical implementation moved to the strategy zoo: the flooder node
    lives in :mod:`repro.adversary.strategies` (spawnable in any trial via
    :class:`~repro.adversary.strategies.FloodStrategy`) and the paired
    with/without-flooder measurement in :mod:`repro.adversary.zoo`.  This
    module re-exports the public names unchanged for older callers; import
    from :mod:`repro.adversary` in new code.
"""

from __future__ import annotations

from ..adversary.strategies import FlooderNode
from ..adversary.zoo import OverloadResult, run_overload_trial

__all__ = ["FlooderNode", "OverloadResult", "run_overload_trial"]
