"""Targeted overload attack.

The introduction's second threat: "nodes can be systematically overwhelmed by
a flood of dissemination requests".  A flooder directs junk traffic at one
victim relay; with per-node sequential service (``Network.service_time_ms``),
the victim's queue grows and every message it should relay is delayed.

HERMES's defence is structural — ``f+1`` predecessors per node and role
rotation across ``k`` overlays mean no single overloaded relay sits on the
only path — so the experiment compares delivery latency degradation between a
single fixed tree (one bottleneck) and HERMES's robust overlays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..mempool.transaction import Transaction
from ..net.events import Message
from ..net.node import ProtocolNode

__all__ = ["FlooderNode", "OverloadResult", "run_overload_trial"]

_JUNK_KIND = "overload-junk"
_JUNK_BYTES = 250


class FlooderNode(ProtocolNode):
    """Sends junk to one target at a fixed rate.

    Registered with an id outside the protocol population, so it participates
    in no overlay — pure background pressure on the target's inbox.
    """

    def __init__(
        self, node_id: int, network, target: int, interval_ms: float
    ) -> None:
        super().__init__(node_id, network)
        if interval_ms <= 0:
            raise ValueError(f"interval_ms must be positive, got {interval_ms}")
        self.target = target
        self.interval_ms = interval_ms

    def on_start(self) -> None:
        self._flood()

    def _flood(self) -> None:
        self.send(self.target, Message(_JUNK_KIND, None, _JUNK_BYTES))
        self.schedule(self.interval_ms, self._flood)

    def on_message(self, sender: int, message: Message) -> None:
        pass  # the flooder ignores everything


@dataclass(frozen=True, slots=True)
class OverloadResult:
    """Latency with and without the flooder."""

    baseline_mean_ms: float
    attacked_mean_ms: float

    @property
    def degradation(self) -> float:
        """Multiplicative latency blow-up caused by the attack."""

        if self.baseline_mean_ms == 0:
            return float("inf")
        return self.attacked_mean_ms / self.baseline_mean_ms


def run_overload_trial(
    system_factory: Callable[[], object],
    sender: int,
    target: int,
    flood_interval_ms: float = 0.5,
    horizon_ms: float = 5_000.0,
) -> OverloadResult:
    """Measure mean delivery latency without and with a flooder on *target*.

    The factory must build systems whose network has ``service_time_ms > 0``
    (otherwise nodes have infinite capacity and flooding is free).
    """

    def measure(with_flooder: bool) -> float:
        system = system_factory()
        if with_flooder:
            flooder_id = max(system.network.node_ids()) + 1
            FlooderNode(
                flooder_id, system.network, target, interval_ms=flood_interval_ms
            )
        system.start()
        tx = Transaction.create(origin=sender, created_at=0.0)
        system.submit(sender, tx)
        system.run(until_ms=horizon_ms)
        latencies = system.stats.delivery_latencies(tx.tx_id)
        return sum(latencies) / len(latencies) if latencies else float("inf")

    return OverloadResult(
        baseline_mean_ms=measure(False), attacked_mean_ms=measure(True)
    )
