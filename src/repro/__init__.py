"""HERMES: fair and resilient transaction dissemination (DSN 2025 reproduction).

Top-level convenience re-exports. The subpackages are:

- :mod:`repro.crypto` — signatures, threshold signatures, hashing (from scratch)
- :mod:`repro.net` — deterministic discrete-event P2P simulation framework
- :mod:`repro.overlay` — robust trees, annealing optimization, comparison overlays
- :mod:`repro.rbc` — Bracha reliable broadcast
- :mod:`repro.trs` — Threshold Random Seed committee protocol
- :mod:`repro.core` — the HERMES dissemination protocol
- :mod:`repro.mempool` — transactions, mempools, block ordering
- :mod:`repro.baselines` — L-zero, Narwhal, Mercury, gossip, simple tree
- :mod:`repro.attacks` — legacy attack drivers (now thin aliases over the zoo)
- :mod:`repro.adversary` — strategy zoo: attacker agents, economics, fairness
- :mod:`repro.chaos` — fault-injection campaigns with online invariant checking
- :mod:`repro.load` — open-loop workload generation and link capacity modeling
- :mod:`repro.population` — million-client workloads: fee market, admission control
- :mod:`repro.obs` — structured observability: tracing, metrics, profiling
- :mod:`repro.runner` — parallel sweep engine with a content-addressed result cache
- :mod:`repro.sharding` — sharded multi-proposer dissemination: per-shard TRS committees
- :mod:`repro.experiments` — one module per paper table/figure

``repro.__all__`` is the documented public surface: exactly the subpackages
above.  Subpackages import lazily (``repro.obs`` etc. materialize on first
attribute access), so ``import repro`` stays cheap; the docs link-checker
(``tests/unit/test_docs_links.py``) verifies every name the documentation
mentions against this list and each subpackage's own ``__all__``.
"""

import importlib

__version__ = "1.0.0"

_SUBPACKAGES = (
    "adversary",
    "attacks",
    "baselines",
    "chaos",
    "core",
    "crypto",
    "experiments",
    "load",
    "mempool",
    "net",
    "obs",
    "overlay",
    "population",
    "rbc",
    "runner",
    "sharding",
    "trs",
    "utils",
)

__all__ = list(_SUBPACKAGES)


def __getattr__(name: str):
    if name in _SUBPACKAGES:
        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_SUBPACKAGES))
