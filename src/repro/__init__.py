"""HERMES: fair and resilient transaction dissemination (DSN 2025 reproduction).

Top-level convenience re-exports. The subpackages are:

- :mod:`repro.crypto` — signatures, threshold signatures, hashing (from scratch)
- :mod:`repro.net` — deterministic discrete-event P2P simulation framework
- :mod:`repro.overlay` — robust trees, annealing optimization, comparison overlays
- :mod:`repro.rbc` — Bracha reliable broadcast
- :mod:`repro.trs` — Threshold Random Seed committee protocol
- :mod:`repro.core` — the HERMES dissemination protocol
- :mod:`repro.mempool` — transactions, mempools, block ordering
- :mod:`repro.baselines` — L-zero, Narwhal, Mercury, gossip, simple tree
- :mod:`repro.attacks` — front-running and censorship adversaries
- :mod:`repro.experiments` — one module per paper table/figure
"""

__version__ = "1.0.0"
