"""``python -m repro sweep`` — run ad-hoc parameter sweeps from the shell.

Two modes:

* ``--task NAME`` with repeated ``--set key=v1,v2,...`` flags builds a
  cartesian grid over the given axes and submits it to
  :func:`repro.runner.run_sweep`::

      python -m repro sweep --task dissemination \\
          --set protocol=hermes,lzero --set seed=0,1,2 \\
          --jobs 4 --results-dir results/adhoc

* ``--figure fig3a|fig3b|fig5a|fig5b|fig6|fig7|fig8|fig9`` submits the
  corresponding figure script's repetition grid and prints the figure table
  (``--list-figures`` enumerates them with one-line descriptions)::

      python -m repro sweep --figure fig5a --jobs 4 --results-dir results/f5a

With ``--results-dir`` every completed cell lands as one JSON record in a
content-addressed store, and re-invoking the same sweep resumes: finished
cells are loaded instead of re-executed (disable with ``--no-resume``).

``--timeline PATH`` additionally records a ``repro.sweeptrace/1``
worker-lifecycle timeline (wall-clock phases of every run and worker) for
``python -m repro analyze-sweep``, and ``--progress`` renders a live console
line (cells done, runs/s, per-worker utilization, ETA) while the sweep runs.
See ``docs/runner.md`` for the concepts and ``docs/observability.md``
("Measuring a sweep") for the telemetry layer.
"""

from __future__ import annotations

import argparse
import json
from typing import Any

from ..errors import ConfigurationError, ReproError

__all__ = ["main", "parse_axis"]

_FIGURES = ("fig3a", "fig3b", "fig5a", "fig5b", "fig6", "fig7", "fig8", "fig9")

#: One-line descriptions for ``--list-figures`` (kept in _FIGURES order).
_FIGURE_DESCRIPTIONS = {
    "fig3a": "dissemination latency CDF across protocols (paper Fig. 3a)",
    "fig3b": "bandwidth overhead per protocol (paper Fig. 3b)",
    "fig5a": "front-running resistance vs adversary fraction (paper Fig. 5a)",
    "fig5b": "delivery robustness under censorship (paper Fig. 5b)",
    "fig6": "offered-load saturation sweep under finite link capacity (extension)",
    "fig7": "strategy-zoo adversary grid: economics and fairness (extension)",
    "fig8": "sustained million-client population load with a fee market (extension)",
    "fig9": "sharding scaling grid: aggregate goodput and cross-shard fairness (extension)",
}


def parse_axis(text: str) -> tuple[str, list[Any]]:
    """``"key=v1,v2"`` → ``("key", [v1, v2])`` with JSON-typed values.

    Each value is decoded as JSON when possible (``3`` → int, ``0.5`` →
    float, ``true`` → bool) and kept as a bare string otherwise, so
    ``--set protocol=hermes,lzero --set seed=0,1`` does what it reads as.
    """

    key, sep, rest = text.partition("=")
    key = key.strip()
    if not sep or not key or not rest:
        raise ConfigurationError(
            f"bad --set {text!r}: expected key=value[,value...]"
        )
    values: list[Any] = []
    for raw in rest.split(","):
        raw = raw.strip()
        try:
            values.append(json.loads(raw))
        except json.JSONDecodeError:
            values.append(raw)
    return key, values


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    what = parser.add_mutually_exclusive_group()
    what.add_argument("--task", help="registered task name (see --list-tasks)")
    what.add_argument(
        "--figure", choices=_FIGURES,
        help="submit a figure script's repetition grid instead of an ad-hoc task",
    )
    what.add_argument(
        "--list-tasks", action="store_true", help="print registered tasks and exit"
    )
    what.add_argument(
        "--list-figures", action="store_true",
        help="print the available --figure grids and exit",
    )
    parser.add_argument(
        "--set", dest="axes", metavar="KEY=V1[,V2...]", action="append", default=[],
        help="one grid axis; repeat for a cartesian product (task mode only)",
    )
    parser.add_argument("--jobs", type=int, default=1, help="worker processes (default 1 = serial)")
    parser.add_argument(
        "--results-dir", metavar="DIR",
        help="content-addressed result store; enables resume across invocations",
    )
    parser.add_argument(
        "--no-resume", dest="resume", action="store_false",
        help="re-execute cells even when the store already has their records",
    )
    parser.add_argument("--timeout", type=float, metavar="SECONDS", help="per-run timeout")
    parser.add_argument(
        "--retries", type=int, default=2, help="requeue attempts after a worker crash (default 2)"
    )
    parser.add_argument(
        "--timeline", metavar="PATH",
        help="write a repro.sweeptrace/1 worker-lifecycle timeline (JSONL); "
        "feed it to `python -m repro analyze-sweep`",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="render a live console line (cells done, runs/s, per-worker "
        "utilization, ETA) from the telemetry stream",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed (figure mode)")
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller, faster figure configuration (figure mode)",
    )
    return parser


def _figure_config(figure: str, *, seed: int, quick: bool):
    """The (module, config) pair behind a ``--figure`` invocation."""

    if figure == "fig3a":
        from ..experiments import fig3a_latency as module

        config = module.Fig3aConfig(
            num_nodes=80 if quick else 200, transactions=4 if quick else 10, seed=seed
        )
    elif figure == "fig3b":
        from ..experiments import fig3b_bandwidth as module

        config = module.Fig3bConfig(num_nodes=80 if quick else 200, seed=seed)
    elif figure == "fig5a":
        from ..experiments import fig5a_frontrunning as module

        config = module.Fig5aConfig(
            num_nodes=60 if quick else 150, trials=6 if quick else 20, seed=seed
        )
    elif figure == "fig5b":
        from ..experiments import fig5b_robustness as module

        config = module.Fig5bConfig(
            num_nodes=60 if quick else 150, trials=4 if quick else 10, seed=seed
        )
    elif figure == "fig6":
        from ..experiments import fig6_saturation as module

        config = module.Fig6Config(
            num_nodes=24 if quick else 40,
            rates_tps=(2.0, 8.0, 24.0) if quick else module.DEFAULT_RATES,
            duration_ms=4_000.0 if quick else 6_000.0,
            seed=seed,
        )
    elif figure == "fig7":
        from ..experiments import fig7_adversary as module

        config = module.Fig7Config(
            num_nodes=60 if quick else 200,
            fractions=(0.20, 0.33) if quick else (0.10, 0.20, 0.33),
            trials=4 if quick else 10,
            seed=seed,
        )
    elif figure == "fig8":
        from ..experiments import fig8_sustained as module

        config = module.Fig8Config(
            num_nodes=16 if quick else 24,
            rates_tps=(2.0, 8.0, 24.0) if quick else module.DEFAULT_RATES,
            duration_ms=20_000.0 if quick else 60_000.0,
            drain_ms=3_000.0 if quick else 5_000.0,
            num_clients=100_000 if quick else 1_000_000,
            seed=seed,
        )
    elif figure == "fig9":
        from ..experiments import fig9_sharding as module

        config = module.Fig9Config(
            shard_counts=(1, 2) if quick else module.DEFAULT_SHARDS,
            total_nodes=32 if quick else 48,
            duration_ms=3_000.0 if quick else 5_000.0,
            trials=2 if quick else 3,
            seed=seed,
        )
    else:  # pragma: no cover - argparse's choices guard this
        raise ConfigurationError(f"unknown figure {figure!r}")
    return module, config


def _build_telemetry(args: argparse.Namespace):
    """The optional SweepTelemetry collector behind --timeline/--progress."""

    if not args.timeline and not args.progress:
        return None
    from .telemetry import ProgressConsole, SweepTelemetry

    listener = ProgressConsole() if args.progress else None
    return SweepTelemetry(args.timeline, listener=listener)


def _run_figure(args: argparse.Namespace) -> None:
    module, config = _figure_config(args.figure, seed=args.seed, quick=args.quick)
    telemetry = _build_telemetry(args)
    try:
        result, report = module.run_parallel(
            config,
            jobs=args.jobs,
            results_dir=args.results_dir,
            resume=args.resume,
            timeout_s=args.timeout,
            telemetry=telemetry,
        )
    finally:
        if telemetry is not None:
            telemetry.close()
    print(report.summary_line())
    print(module.format_result(result))
    if args.timeline:
        print(f"timeline: {args.timeline} (analyze with `python -m repro analyze-sweep`)")


def _run_task(args: argparse.Namespace) -> None:
    from . import ResultStore, SweepSpec, latency_summaries, run_sweep

    grid: dict[str, list[Any]] = {}
    for axis in args.axes:
        key, values = parse_axis(axis)
        if key in grid:
            raise ConfigurationError(f"duplicate --set axis {key!r}")
        grid[key] = values
    sweep = SweepSpec(task=args.task, grid=grid)
    store = ResultStore(args.results_dir) if args.results_dir else None
    telemetry = _build_telemetry(args)
    try:
        report = run_sweep(
            sweep,
            store=store,
            jobs=args.jobs,
            resume=args.resume,
            timeout_s=args.timeout,
            retries=args.retries,
            telemetry=telemetry,
        )
    finally:
        if telemetry is not None:
            telemetry.close()
    print(report.summary_line())
    if args.timeline:
        print(f"timeline: {args.timeline} (analyze with `python -m repro analyze-sweep`)")
    for record in report.records:
        if not record.ok:
            print(f"  FAILED {record['spec']['params']}: {record.get('error')}")
    summaries = latency_summaries(report.records)
    for protocol in sorted(summaries, key=str):
        s = summaries[protocol]
        if protocol is None or s.count == 0:
            continue
        print(
            f"  {protocol}: mean {s.mean:.2f} ms, "
            f"p5 {s.p5:.2f} ms, p95 {s.p95:.2f} ms (n={s.count})"
        )


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.list_tasks:
            from . import task_names

            for name in task_names():
                print(name)
            return 0
        if args.list_figures:
            width = max(len(name) for name in _FIGURES)
            for name in _FIGURES:
                print(f"{name:<{width}}  {_FIGURE_DESCRIPTIONS.get(name, '')}")
            return 0
        if args.figure:
            _run_figure(args)
            return 0
        if not args.task:
            parser.error(
                "one of --task, --figure, --list-tasks or --list-figures "
                "is required"
            )
        _run_task(args)
        return 0
    except ReproError as exc:
        parser.exit(2, f"error: {exc}\n")
        return 2  # pragma: no cover - parser.exit raises


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
