"""Content-addressed on-disk result storage.

One JSON record per run, stored at ``<root>/<spec_hash>.json``.  The record
schema (``repro.runner/1``) follows the :mod:`repro.obs` run-manifest
conventions — a ``schema`` tag, a free-form ``meta`` section, and only
deterministic content — so a stored cell can be byte-compared across serial
and parallel executions of the same seeded sweep::

    {
      "schema": "repro.runner/1",
      "spec": {"task": ..., "params": {...}},
      "spec_hash": "...",
      "status": "ok" | "error",
      "result": {...} | null,        # the task's JSON return value
      "error": null | "message",
      "attempts": n,
      "meta": {...}                  # caller-provided, manifest-style
    }

Records are written atomically (temp file + rename), so an interrupted sweep
never leaves a truncated record behind — a re-invocation either sees a
complete cell and skips it, or no cell and recomputes it.  That is the whole
resume mechanism: resumability falls out of content addressing.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator, Mapping

from ..errors import ConfigurationError
from .spec import RunSpec, canonical_json

__all__ = ["RECORD_SCHEMA", "RunRecord", "ResultStore", "MemoryStore"]

RECORD_SCHEMA = "repro.runner/1"


class RunRecord(dict):
    """A stored run record (a plain dict with typed convenience accessors)."""

    @property
    def ok(self) -> bool:
        return self.get("status") == "ok"

    @property
    def spec(self) -> RunSpec:
        return RunSpec.from_json(self["spec"])

    @property
    def result(self) -> Any:
        return self.get("result")

    @classmethod
    def build(
        cls,
        spec: RunSpec,
        result: Any = None,
        *,
        status: str = "ok",
        error: str | None = None,
        attempts: int = 1,
        meta: Mapping[str, Any] | None = None,
    ) -> "RunRecord":
        return cls(
            schema=RECORD_SCHEMA,
            spec=spec.to_json(),
            spec_hash=spec.spec_hash,
            status=status,
            result=result,
            error=error,
            attempts=attempts,
            meta=dict(meta or {}),
        )


class ResultStore:
    """A directory of content-addressed run records.

    The store is safe for concurrent writers on one machine: each record is
    keyed by its spec hash and written atomically, and two workers computing
    the same cell write identical bytes (everything in a record is
    deterministic for a fixed spec).
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- addressing ----------------------------------------------------

    def path_for(self, spec_or_hash: RunSpec | str) -> Path:
        digest = (
            spec_or_hash.spec_hash
            if isinstance(spec_or_hash, RunSpec)
            else spec_or_hash
        )
        return self.root / f"{digest}.json"

    # -- reads ---------------------------------------------------------

    def __contains__(self, spec_or_hash: RunSpec | str) -> bool:
        return self.path_for(spec_or_hash).exists()

    def load(self, spec_or_hash: RunSpec | str) -> RunRecord | None:
        """The stored record, or ``None`` if absent or unreadable.

        A corrupt record (truncated by an unclean shutdown predating atomic
        writes, say) is treated as missing so the run is simply recomputed.
        """

        path = self.path_for(spec_or_hash)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(doc, dict) or doc.get("schema") != RECORD_SCHEMA:
            return None
        return RunRecord(doc)

    def completed_hashes(self) -> set[str]:
        """Hashes of every successfully completed run in the store."""

        return {
            record["spec_hash"]
            for record in self.records()
            if record.ok and "spec_hash" in record
        }

    def records(self) -> Iterator[RunRecord]:
        """Every readable record in the store, in deterministic (hash) order."""

        for path in sorted(self.root.glob("*.json")):
            record = self.load(path.stem)
            if record is not None:
                yield record

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    # -- writes --------------------------------------------------------

    def save(self, record: RunRecord | Mapping[str, Any]) -> Path:
        """Atomically persist *record*; returns the record path."""

        doc = dict(record)
        if doc.get("schema") != RECORD_SCHEMA:
            raise ConfigurationError(
                f"record schema must be {RECORD_SCHEMA!r}, got {doc.get('schema')!r}"
            )
        digest = doc.get("spec_hash")
        if not digest:
            raise ConfigurationError("record lacks a spec_hash")
        path = self.path_for(digest)
        payload = canonical_json(doc) + "\n"
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=f".{digest[:12]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path


class MemoryStore:
    """An in-process stand-in for :class:`ResultStore` (no persistence).

    Used when a sweep runs without ``--results-dir``: execution and
    aggregation still speak the store interface, there is just nothing to
    resume from afterwards.
    """

    def __init__(self) -> None:
        self._records: dict[str, RunRecord] = {}

    def __contains__(self, spec_or_hash: RunSpec | str) -> bool:
        digest = (
            spec_or_hash.spec_hash
            if isinstance(spec_or_hash, RunSpec)
            else spec_or_hash
        )
        return digest in self._records

    def load(self, spec_or_hash: RunSpec | str) -> RunRecord | None:
        digest = (
            spec_or_hash.spec_hash
            if isinstance(spec_or_hash, RunSpec)
            else spec_or_hash
        )
        return self._records.get(digest)

    def completed_hashes(self) -> set[str]:
        return {h for h, record in self._records.items() if record.ok}

    def records(self) -> Iterator[RunRecord]:
        for digest in sorted(self._records):
            yield self._records[digest]

    def __len__(self) -> int:
        return len(self._records)

    def save(self, record: RunRecord | Mapping[str, Any]) -> None:
        doc = RunRecord(record)
        self._records[doc["spec_hash"]] = doc
