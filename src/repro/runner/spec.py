"""Declarative run and sweep specifications.

A :class:`RunSpec` names one deterministic simulation cell: a registered task
(see :mod:`repro.runner.tasks`) plus its JSON-serializable parameters.  Its
:attr:`~RunSpec.spec_hash` is a content hash of exactly ``(task, params)`` in
canonical JSON form, so the same cell always maps to the same key no matter
which sweep, process or machine produced it — the property the
content-addressed :class:`~repro.runner.store.ResultStore` builds on.

A :class:`SweepSpec` is the cartesian product of a parameter grid over a base
configuration; :meth:`SweepSpec.expand` yields the individual
:class:`RunSpec` cells in a deterministic order.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from ..errors import ConfigurationError

__all__ = ["RunSpec", "SweepSpec", "canonical_json", "spec_hash"]


def canonical_json(value: Any) -> str:
    """Serialize *value* to a canonical JSON string.

    Keys are sorted and separators are fixed, so two equal values always
    produce the same bytes — the invariant both hashing and the store's
    byte-identical-records guarantee rely on.  Non-JSON types are rejected
    rather than coerced: a spec that cannot round-trip through JSON cannot be
    content-addressed.
    """

    try:
        return json.dumps(
            value, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"spec is not canonical-JSON-serializable: {exc}")


def spec_hash(task: str, params: Mapping[str, Any]) -> str:
    """The content hash (hex SHA-256) of one ``(task, params)`` cell."""

    payload = canonical_json({"task": task, "params": dict(params)})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunSpec:
    """One deterministic run: a task name plus its parameters.

    Parameters must be JSON-serializable scalars/containers; the seed (and any
    other source of randomness) must be part of ``params`` so the hash fully
    determines the result.
    """

    task: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.task:
            raise ConfigurationError("RunSpec.task must be a non-empty name")
        # Freeze to a plain dict copy and validate serializability eagerly so
        # a bad spec fails at construction, not inside a worker process.
        object.__setattr__(self, "params", dict(self.params))
        canonical_json(self.params)

    @property
    def spec_hash(self) -> str:
        return spec_hash(self.task, self.params)

    def to_json(self) -> dict[str, Any]:
        return {"task": self.task, "params": dict(self.params)}

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "RunSpec":
        return cls(task=doc["task"], params=dict(doc.get("params", {})))

    def __hash__(self) -> int:  # params is a dict, so derive from content
        return hash(self.spec_hash)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunSpec):
            return NotImplemented
        return self.task == other.task and dict(self.params) == dict(other.params)


@dataclass(frozen=True)
class SweepSpec:
    """A cartesian parameter grid over a base configuration.

    ``base`` holds the fixed parameters; ``grid`` maps parameter names to the
    sequence of values to sweep.  Grid keys override base keys.  Expansion
    order is deterministic: grid axes vary in insertion order, with the last
    axis fastest (like nested for-loops).
    """

    task: str
    base: Mapping[str, Any] = field(default_factory=dict)
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "base", dict(self.base))
        object.__setattr__(
            self, "grid", {key: tuple(values) for key, values in self.grid.items()}
        )
        for key, values in self.grid.items():
            if not values:
                raise ConfigurationError(f"grid axis {key!r} has no values")

    def __len__(self) -> int:
        size = 1
        for values in self.grid.values():
            size *= len(values)
        return size

    def expand(self) -> list[RunSpec]:
        """All cells of the grid as individual :class:`RunSpec` runs."""

        return list(self)

    def __iter__(self) -> Iterator[RunSpec]:
        axes = list(self.grid.items())
        names = [name for name, _ in axes]
        for combo in itertools.product(*(values for _, values in axes)):
            params = dict(self.base)
            params.update(zip(names, combo))
            yield RunSpec(task=self.task, params=params)
