"""The sweep executor: serial or process-pool execution of run specs.

Execution model
---------------
Every run is an independent, fully seeded simulation cell, so the executor
can schedule them in any order on any number of workers without changing a
single result.  ``jobs=1`` runs everything in-process (the debugging
fallback — breakpoints and print statements behave normally); ``jobs>1``
fans runs out over a ``spawn`` process pool.  Workers receive only
``(task name, params)`` pairs and look the task up in
:mod:`repro.runner.tasks` after a fresh import, so nothing unpicklable ever
crosses the process boundary.  Each worker process keeps the
:func:`~repro.experiments.harness.build_environment` memo cache it
accumulates, so the expensive overlay construction is paid once per distinct
environment per worker, not once per run.

Fault handling
--------------
* A task that *raises* fails deterministically: the error is recorded once
  and never retried (re-running a deterministic function cannot help).
* A run that exceeds ``timeout_s`` is interrupted (SIGALRM, in the worker
  that owns it) and recorded as an error.
* A *worker crash* (segfault, OOM kill, ``os._exit``) breaks the pool; the
  executor rebuilds it and requeues the runs that were in flight, each at
  most ``retries`` times, then records the survivors as failed.

Resume
------
With a persistent :class:`~repro.runner.store.ResultStore` and
``resume=True`` (the default), runs whose records already exist are never
re-executed — an interrupted sweep continues where it stopped, and a
completed sweep re-invoked with the same specs executes nothing.
"""

from __future__ import annotations

import os
import pickle
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..errors import ConfigurationError, SweepExecutionError
from ..obs.wall import Stopwatch, WallClock
from .spec import RunSpec, SweepSpec
from .store import MemoryStore, ResultStore, RunRecord
from .tasks import get_task
from .telemetry import SweepTelemetry

__all__ = ["SweepReport", "run_sweep"]

ProgressFn = Callable[[RunRecord, int, int], None]


@dataclass
class SweepReport:
    """Outcome of one :func:`run_sweep` invocation.

    ``records`` holds one record per requested (deduplicated) spec, in
    request order — freshly executed and resumed-from-store alike — so
    aggregation code never needs to know how a sweep was scheduled.
    """

    executed: int = 0
    skipped: int = 0
    failed: int = 0
    wall_seconds: float = 0.0
    records: list[RunRecord] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.records)

    def results(self) -> list[Any]:
        """The task return values of every successful run, in request order."""

        return [record.result for record in self.records if record.ok]

    def summary_line(self) -> str:
        return (
            f"{self.total} runs: {self.executed} executed, "
            f"{self.skipped} resumed, {self.failed} failed "
            f"({self.wall_seconds:.1f}s)"
        )


# ----------------------------------------------------------------------
# Single-run execution (shared by the serial path and pool workers)
# ----------------------------------------------------------------------


class _RunTimeout(SweepExecutionError):
    """Internal: a run exceeded its per-run wall-clock budget."""


def _alarm_supported() -> bool:
    # SIGALRM only exists on POSIX and only fires in a process's main
    # thread; pool workers execute tasks on their main thread, so this holds
    # everywhere except exotic embedding scenarios.
    return hasattr(signal, "SIGALRM") and (
        threading.current_thread() is threading.main_thread()
    )


def _reset_global_counters() -> None:
    """Start every run from pristine global id-counter state.

    Transaction ids feed the TRS digest (and thus the overlay draw), so a
    cell's measurements would otherwise depend on what else happened to run
    in the same process first.  Resetting before each run makes every record
    a pure function of its spec — the invariant behind the serial-vs-parallel
    byte-identity guarantee.
    """

    from ..mempool.transaction import reset_tx_ids
    from ..net.events import reset_message_ids

    reset_tx_ids()
    reset_message_ids()


def _execute_record(spec: RunSpec, timeout_s: float | None) -> RunRecord:
    """Run one spec to completion and wrap the outcome in a record.

    Task exceptions are captured as ``status="error"`` records rather than
    raised: a failing cell must not abort the sweep around it.
    """

    task = get_task(spec.task)
    _reset_global_counters()
    use_alarm = timeout_s is not None and timeout_s > 0 and _alarm_supported()
    previous_handler = None
    if use_alarm:

        def _on_alarm(signum, frame):
            raise _RunTimeout(f"run exceeded timeout of {timeout_s:g}s")

        previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        result = task(dict(spec.params))
    except _RunTimeout as exc:
        return RunRecord.build(spec, status="error", error=str(exc))
    except Exception as exc:  # noqa: BLE001 - captured into the record
        return RunRecord.build(
            spec, status="error", error=f"{type(exc).__name__}: {exc}"
        )
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)
    return RunRecord.build(spec, result=result)


def _worker_execute(spec_doc: dict, timeout_s: float | None) -> dict:
    """Pool-worker entry point: plain dicts in, plain dict out."""

    record = _execute_record(RunSpec.from_json(spec_doc), timeout_s)
    return dict(record)


# ----------------------------------------------------------------------
# Telemetered workers (observation-only wrappers around the same path)
# ----------------------------------------------------------------------

# Set once per worker process by the telemetry pool initializer.
_WORKER_CLOCK: WallClock | None = None
_WORKER_INFO: dict[str, Any] | None = None


def _worker_init_timed(origin: float, t_pool: float) -> None:
    """Pool initializer: join the parent's timebase, time spawn + env build.

    ``spawn`` is everything between the parent creating the pool and this
    initializer running (interpreter start-up, ``repro`` module imports);
    ``env_build`` is the warm-up import of the experiment harness, the module
    whose construction caches all simulation tasks share.  Both are one-time
    per-worker costs, which is exactly why they deserve their own timeline
    phase: amortizing them is the whole battle the parallel sweep is losing.
    """

    global _WORKER_CLOCK, _WORKER_INFO
    clock = WallClock(origin=origin)
    t_spawned = clock.now()
    try:
        from ..experiments import harness  # noqa: F401 - warm-up import only
    except Exception:  # pragma: no cover - harness import is load-bearing
        pass  # telemetry must never take a worker down
    t_ready = clock.now()
    _WORKER_CLOCK = clock
    _WORKER_INFO = {
        "pid": os.getpid(),
        "t_spawned": t_spawned,
        "t_ready": t_ready,
        "spawn": max(0.0, t_spawned - t_pool),
        "env_build": max(0.0, t_ready - t_spawned),
    }


def _worker_execute_timed(
    spec_doc: dict, timeout_s: float | None, t_submit: float
) -> dict:
    """Like :func:`_worker_execute`, but measuring each lifecycle phase.

    The record itself comes from the identical :func:`_execute_record` path —
    timing wraps around it, never inside it — so telemetered and plain runs
    store byte-identical results.  ``serialize`` is measured as an explicit
    ``pickle.dumps`` of the outgoing document: the pool pickles the return
    value right after we return, so this is a faithful (and cheap, few-KB)
    proxy for the real IPC serialization cost.
    """

    clock = _WORKER_CLOCK if _WORKER_CLOCK is not None else WallClock()
    t_start = clock.now()
    watch = Stopwatch()
    spec = RunSpec.from_json(spec_doc)
    deserialize_s = watch.lap()
    record = _execute_record(spec, timeout_s)
    execute_s = watch.lap()
    doc = dict(record)
    pickle.dumps(doc)
    serialize_s = watch.lap()
    return {
        "record": doc,
        "timing": {
            "worker": os.getpid(),
            "t_submit": t_submit,
            "t_start": t_start,
            "t_end": clock.now(),
            "phases": {
                "enqueue_wait": max(0.0, t_start - t_submit),
                "deserialize": deserialize_s,
                "execute": execute_s,
                "serialize": serialize_s,
            },
        },
        "worker_info": _WORKER_INFO,
    }


# ----------------------------------------------------------------------
# The sweep driver
# ----------------------------------------------------------------------


def _normalize_specs(specs: SweepSpec | Iterable[RunSpec]) -> list[RunSpec]:
    expanded = specs.expand() if isinstance(specs, SweepSpec) else list(specs)
    if not expanded:
        raise ConfigurationError("run_sweep needs at least one RunSpec")
    unique: dict[str, RunSpec] = {}
    for spec in expanded:
        if not isinstance(spec, RunSpec):
            raise ConfigurationError(f"expected RunSpec, got {type(spec).__name__}")
        unique.setdefault(spec.spec_hash, spec)
    return list(unique.values())


def _ensure_importable_pythonpath() -> None:
    """Make sure spawn children can ``import repro``.

    Spawned workers re-import this module from scratch; when the library is
    used straight from a source tree (``PYTHONPATH=src``), the child only
    inherits what the environment carries.  Prepending the package's own
    parent directory to ``PYTHONPATH`` covers source-tree, editable and
    installed layouts alike.
    """

    package_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    current = os.environ.get("PYTHONPATH", "")
    parts = current.split(os.pathsep) if current else []
    if package_root not in parts:
        os.environ["PYTHONPATH"] = os.pathsep.join([package_root, *parts])


def run_sweep(
    specs: SweepSpec | Iterable[RunSpec],
    *,
    store: ResultStore | MemoryStore | None = None,
    jobs: int = 1,
    resume: bool = True,
    timeout_s: float | None = None,
    retries: int = 2,
    progress: ProgressFn | None = None,
    telemetry: SweepTelemetry | None = None,
) -> SweepReport:
    """Execute every spec, skipping completed ones, and report all records.

    Parameters
    ----------
    specs: a :class:`SweepSpec` (expanded in grid order) or any iterable of
        :class:`RunSpec`; duplicate cells are executed once.
    store: where records live.  ``None`` means a throwaway in-memory store
        (nothing to resume from later).
    jobs: worker processes; ``1`` (default) executes serially in-process.
    resume: skip cells whose records already exist in *store*.
    timeout_s: per-run wall-clock budget, enforced inside the executing
        process; a timed-out run is recorded as an error.
    retries: how many times a run may be requeued after a *worker crash*
        before being recorded as failed (deterministic task errors are never
        retried).
    progress: optional callback ``(record, done, total)`` invoked as each
        run finishes (including resumed ones, with their stored records).
    telemetry: optional :class:`~repro.runner.telemetry.SweepTelemetry`
        collector; when given, every run (and every pool worker) emits a
        wall-clock lifecycle record into the ``repro.sweeptrace/1`` timeline.
        Telemetry is observation-only: stored records are byte-identical with
        it on or off.
    """

    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    ordered = _normalize_specs(specs)
    if store is None:
        store = MemoryStore()

    started = time.perf_counter()
    report = SweepReport()
    by_hash: dict[str, RunRecord] = {}
    pending: list[RunSpec] = []
    if resume:
        for spec in ordered:
            record = store.load(spec)
            if record is not None and record.ok:
                by_hash[spec.spec_hash] = record
            else:
                pending.append(spec)
        report.skipped = len(ordered) - len(pending)
    else:
        pending = list(ordered)

    done_count = len(ordered) - len(pending)
    total = len(ordered)
    if telemetry is not None:
        telemetry.sweep_started(jobs=jobs, cells=total, resumed=report.skipped)
    for spec in ordered:
        if spec.spec_hash in by_hash:
            if telemetry is not None:
                telemetry.run_resumed(spec.spec_hash)
            if progress is not None:
                progress(by_hash[spec.spec_hash], done_count, total)

    def finish(
        record: RunRecord,
        timing: Mapping[str, Any] | None = None,
        attempt: int = 1,
    ) -> None:
        nonlocal done_count
        by_hash[record["spec_hash"]] = record
        if telemetry is None:
            store.save(record)
        else:
            write_started = telemetry.clock.now()
            store.save(record)
            telemetry.run_finished(
                record,
                timing or {},
                store_write_s=max(0.0, telemetry.clock.now() - write_started),
                attempt=attempt,
            )
        report.executed += 1
        if not record.ok:
            report.failed += 1
        done_count += 1
        if progress is not None:
            progress(record, done_count, total)

    if pending:
        if jobs == 1:
            _run_serial(pending, timeout_s, finish, telemetry)
        else:
            _run_parallel(pending, jobs, timeout_s, retries, finish, telemetry)

    report.records = [by_hash[spec.spec_hash] for spec in ordered]
    report.wall_seconds = time.perf_counter() - started
    if telemetry is not None:
        telemetry.sweep_finished(
            wall_s=report.wall_seconds,
            executed=report.executed,
            skipped=report.skipped,
            failed=report.failed,
            cells=total,
        )
    return report


def _run_serial(
    pending: Sequence[RunSpec],
    timeout_s: float | None,
    finish: Callable[..., None],
    telemetry: SweepTelemetry | None,
) -> None:
    """Execute *pending* in-process, in order.

    Serial runs have no pool, so the queueing and pickling phases are
    genuinely zero; the timeline records only ``execute`` and (via ``finish``)
    ``store_write``, all on worker id 0.
    """

    for spec in pending:
        if telemetry is None:
            finish(_execute_record(spec, timeout_s))
            continue
        t_submit = telemetry.clock.now()
        record = _execute_record(spec, timeout_s)
        t_end = telemetry.clock.now()
        timing = {
            "worker": 0,
            "t_submit": t_submit,
            "t_start": t_submit,
            "t_end": t_end,
            "phases": {
                "enqueue_wait": 0.0,
                "deserialize": 0.0,
                "execute": max(0.0, t_end - t_submit),
                "serialize": 0.0,
            },
        }
        finish(record, timing)


def _run_parallel(
    pending: Sequence[RunSpec],
    jobs: int,
    timeout_s: float | None,
    retries: int,
    finish: Callable[..., None],
    telemetry: SweepTelemetry | None = None,
) -> None:
    """Fan *pending* out over a spawn pool, rebuilding it after crashes."""

    _ensure_importable_pythonpath()
    context = get_context("spawn")
    queue = deque(pending)
    attempts: dict[str, int] = {}
    while queue:
        batch = list(queue)
        queue.clear()
        requeued: list[RunSpec] = []
        pool_kwargs: dict[str, Any] = {}
        if telemetry is not None:
            pool_kwargs = {
                "initializer": _worker_init_timed,
                "initargs": (telemetry.clock.origin, telemetry.clock.now()),
            }
        with ProcessPoolExecutor(
            max_workers=jobs, mp_context=context, **pool_kwargs
        ) as pool:
            if telemetry is None:
                future_to_spec = {
                    pool.submit(_worker_execute, spec.to_json(), timeout_s): spec
                    for spec in batch
                }
            else:
                future_to_spec = {
                    pool.submit(
                        _worker_execute_timed,
                        spec.to_json(),
                        timeout_s,
                        telemetry.clock.now(),
                    ): spec
                    for spec in batch
                }
            outstanding = set(future_to_spec)
            broken = False
            while outstanding:
                finished, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in finished:
                    spec = future_to_spec[future]
                    try:
                        doc = future.result()
                    except BrokenExecutor:
                        broken = True
                        count = attempts.get(spec.spec_hash, 0) + 1
                        attempts[spec.spec_hash] = count
                        if count > retries:
                            finish(
                                RunRecord.build(
                                    spec,
                                    status="error",
                                    error=(
                                        "worker crashed and retry budget "
                                        f"exhausted after {count} attempts"
                                    ),
                                    attempts=count,
                                ),
                                None,
                                count,
                            )
                        else:
                            if telemetry is not None:
                                telemetry.run_crashed(
                                    spec, attempt=count, requeued=True
                                )
                            requeued.append(spec)
                    except Exception as exc:  # unpicklable result etc.
                        finish(
                            RunRecord.build(
                                spec,
                                status="error",
                                error=f"{type(exc).__name__}: {exc}",
                            )
                        )
                    else:
                        if telemetry is None:
                            finish(RunRecord(doc))
                        else:
                            telemetry.worker_seen(doc.get("worker_info"))
                            finish(
                                RunRecord(doc["record"]),
                                doc["timing"],
                                attempts.get(spec.spec_hash, 0) + 1,
                            )
                if broken:
                    # The pool is unusable; everything still outstanding
                    # comes back as BrokenExecutor on the next wait() pass.
                    continue
        queue.extend(requeued)
