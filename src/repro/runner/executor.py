"""The sweep executor: serial or process-pool execution of run specs.

Execution model
---------------
Every run is an independent, fully seeded simulation cell, so the executor
can schedule them in any order on any number of workers without changing a
single result.  ``jobs=1`` runs everything in-process (the debugging
fallback — breakpoints and print statements behave normally); ``jobs>1``
fans runs out over a ``spawn`` process pool.  Workers receive only
``(task name, params)`` pairs and look the task up in
:mod:`repro.runner.tasks` after a fresh import, so nothing unpicklable ever
crosses the process boundary.  Each worker process keeps the
:func:`~repro.experiments.harness.build_environment` memo cache it
accumulates, so the expensive overlay construction is paid once per distinct
environment per worker, not once per run.

Fault handling
--------------
* A task that *raises* fails deterministically: the error is recorded once
  and never retried (re-running a deterministic function cannot help).
* A run that exceeds ``timeout_s`` is interrupted (SIGALRM, in the worker
  that owns it) and recorded as an error.
* A *worker crash* (segfault, OOM kill, ``os._exit``) breaks the pool; the
  executor rebuilds it and requeues the runs that were in flight, each at
  most ``retries`` times, then records the survivors as failed.

Resume
------
With a persistent :class:`~repro.runner.store.ResultStore` and
``resume=True`` (the default), runs whose records already exist are never
re-executed — an interrupted sweep continues where it stopped, and a
completed sweep re-invoked with the same specs executes nothing.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Callable, Iterable, Sequence

from ..errors import ConfigurationError, SweepExecutionError
from .spec import RunSpec, SweepSpec
from .store import MemoryStore, ResultStore, RunRecord
from .tasks import get_task

__all__ = ["SweepReport", "run_sweep"]

ProgressFn = Callable[[RunRecord, int, int], None]


@dataclass
class SweepReport:
    """Outcome of one :func:`run_sweep` invocation.

    ``records`` holds one record per requested (deduplicated) spec, in
    request order — freshly executed and resumed-from-store alike — so
    aggregation code never needs to know how a sweep was scheduled.
    """

    executed: int = 0
    skipped: int = 0
    failed: int = 0
    wall_seconds: float = 0.0
    records: list[RunRecord] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.records)

    def results(self) -> list[Any]:
        """The task return values of every successful run, in request order."""

        return [record.result for record in self.records if record.ok]

    def summary_line(self) -> str:
        return (
            f"{self.total} runs: {self.executed} executed, "
            f"{self.skipped} resumed, {self.failed} failed "
            f"({self.wall_seconds:.1f}s)"
        )


# ----------------------------------------------------------------------
# Single-run execution (shared by the serial path and pool workers)
# ----------------------------------------------------------------------


class _RunTimeout(SweepExecutionError):
    """Internal: a run exceeded its per-run wall-clock budget."""


def _alarm_supported() -> bool:
    # SIGALRM only exists on POSIX and only fires in a process's main
    # thread; pool workers execute tasks on their main thread, so this holds
    # everywhere except exotic embedding scenarios.
    return hasattr(signal, "SIGALRM") and (
        threading.current_thread() is threading.main_thread()
    )


def _reset_global_counters() -> None:
    """Start every run from pristine global id-counter state.

    Transaction ids feed the TRS digest (and thus the overlay draw), so a
    cell's measurements would otherwise depend on what else happened to run
    in the same process first.  Resetting before each run makes every record
    a pure function of its spec — the invariant behind the serial-vs-parallel
    byte-identity guarantee.
    """

    from ..mempool.transaction import reset_tx_ids
    from ..net.events import reset_message_ids

    reset_tx_ids()
    reset_message_ids()


def _execute_record(spec: RunSpec, timeout_s: float | None) -> RunRecord:
    """Run one spec to completion and wrap the outcome in a record.

    Task exceptions are captured as ``status="error"`` records rather than
    raised: a failing cell must not abort the sweep around it.
    """

    task = get_task(spec.task)
    _reset_global_counters()
    use_alarm = timeout_s is not None and timeout_s > 0 and _alarm_supported()
    previous_handler = None
    if use_alarm:

        def _on_alarm(signum, frame):
            raise _RunTimeout(f"run exceeded timeout of {timeout_s:g}s")

        previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        result = task(dict(spec.params))
    except _RunTimeout as exc:
        return RunRecord.build(spec, status="error", error=str(exc))
    except Exception as exc:  # noqa: BLE001 - captured into the record
        return RunRecord.build(
            spec, status="error", error=f"{type(exc).__name__}: {exc}"
        )
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)
    return RunRecord.build(spec, result=result)


def _worker_execute(spec_doc: dict, timeout_s: float | None) -> dict:
    """Pool-worker entry point: plain dicts in, plain dict out."""

    record = _execute_record(RunSpec.from_json(spec_doc), timeout_s)
    return dict(record)


# ----------------------------------------------------------------------
# The sweep driver
# ----------------------------------------------------------------------


def _normalize_specs(specs: SweepSpec | Iterable[RunSpec]) -> list[RunSpec]:
    expanded = specs.expand() if isinstance(specs, SweepSpec) else list(specs)
    if not expanded:
        raise ConfigurationError("run_sweep needs at least one RunSpec")
    unique: dict[str, RunSpec] = {}
    for spec in expanded:
        if not isinstance(spec, RunSpec):
            raise ConfigurationError(f"expected RunSpec, got {type(spec).__name__}")
        unique.setdefault(spec.spec_hash, spec)
    return list(unique.values())


def _ensure_importable_pythonpath() -> None:
    """Make sure spawn children can ``import repro``.

    Spawned workers re-import this module from scratch; when the library is
    used straight from a source tree (``PYTHONPATH=src``), the child only
    inherits what the environment carries.  Prepending the package's own
    parent directory to ``PYTHONPATH`` covers source-tree, editable and
    installed layouts alike.
    """

    package_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    current = os.environ.get("PYTHONPATH", "")
    parts = current.split(os.pathsep) if current else []
    if package_root not in parts:
        os.environ["PYTHONPATH"] = os.pathsep.join([package_root, *parts])


def run_sweep(
    specs: SweepSpec | Iterable[RunSpec],
    *,
    store: ResultStore | MemoryStore | None = None,
    jobs: int = 1,
    resume: bool = True,
    timeout_s: float | None = None,
    retries: int = 2,
    progress: ProgressFn | None = None,
) -> SweepReport:
    """Execute every spec, skipping completed ones, and report all records.

    Parameters
    ----------
    specs: a :class:`SweepSpec` (expanded in grid order) or any iterable of
        :class:`RunSpec`; duplicate cells are executed once.
    store: where records live.  ``None`` means a throwaway in-memory store
        (nothing to resume from later).
    jobs: worker processes; ``1`` (default) executes serially in-process.
    resume: skip cells whose records already exist in *store*.
    timeout_s: per-run wall-clock budget, enforced inside the executing
        process; a timed-out run is recorded as an error.
    retries: how many times a run may be requeued after a *worker crash*
        before being recorded as failed (deterministic task errors are never
        retried).
    progress: optional callback ``(record, done, total)`` invoked as each
        run finishes (including resumed ones, with their stored records).
    """

    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    ordered = _normalize_specs(specs)
    if store is None:
        store = MemoryStore()

    started = time.perf_counter()
    report = SweepReport()
    by_hash: dict[str, RunRecord] = {}
    pending: list[RunSpec] = []
    if resume:
        for spec in ordered:
            record = store.load(spec)
            if record is not None and record.ok:
                by_hash[spec.spec_hash] = record
            else:
                pending.append(spec)
        report.skipped = len(ordered) - len(pending)
    else:
        pending = list(ordered)

    done_count = len(ordered) - len(pending)
    total = len(ordered)
    if progress is not None:
        for spec in ordered:
            if spec.spec_hash in by_hash:
                progress(by_hash[spec.spec_hash], done_count, total)

    def finish(record: RunRecord) -> None:
        nonlocal done_count
        by_hash[record["spec_hash"]] = record
        store.save(record)
        report.executed += 1
        if not record.ok:
            report.failed += 1
        done_count += 1
        if progress is not None:
            progress(record, done_count, total)

    if pending:
        if jobs == 1:
            for spec in pending:
                finish(_execute_record(spec, timeout_s))
        else:
            _run_parallel(pending, jobs, timeout_s, retries, finish)

    report.records = [by_hash[spec.spec_hash] for spec in ordered]
    report.wall_seconds = time.perf_counter() - started
    return report


def _run_parallel(
    pending: Sequence[RunSpec],
    jobs: int,
    timeout_s: float | None,
    retries: int,
    finish: Callable[[RunRecord], None],
) -> None:
    """Fan *pending* out over a spawn pool, rebuilding it after crashes."""

    _ensure_importable_pythonpath()
    context = get_context("spawn")
    queue = deque(pending)
    attempts: dict[str, int] = {}
    while queue:
        batch = list(queue)
        queue.clear()
        requeued: list[RunSpec] = []
        with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
            future_to_spec = {
                pool.submit(_worker_execute, spec.to_json(), timeout_s): spec
                for spec in batch
            }
            outstanding = set(future_to_spec)
            broken = False
            while outstanding:
                finished, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in finished:
                    spec = future_to_spec[future]
                    try:
                        doc = future.result()
                    except BrokenExecutor:
                        broken = True
                        count = attempts.get(spec.spec_hash, 0) + 1
                        attempts[spec.spec_hash] = count
                        if count > retries:
                            finish(
                                RunRecord.build(
                                    spec,
                                    status="error",
                                    error=(
                                        "worker crashed and retry budget "
                                        f"exhausted after {count} attempts"
                                    ),
                                    attempts=count,
                                )
                            )
                        else:
                            requeued.append(spec)
                    except Exception as exc:  # unpicklable result etc.
                        finish(
                            RunRecord.build(
                                spec,
                                status="error",
                                error=f"{type(exc).__name__}: {exc}",
                            )
                        )
                    else:
                        finish(RunRecord(doc))
                if broken:
                    # The pool is unusable; everything still outstanding
                    # comes back as BrokenExecutor on the next wait() pass.
                    continue
        queue.extend(requeued)
