"""Parallel sweep engine with a content-addressed result cache.

Every experiment in this repository is a grid of independent, fully seeded
simulations.  ``repro.runner`` turns that structure into throughput:

* :class:`~repro.runner.spec.RunSpec` / :class:`~repro.runner.spec.SweepSpec`
  declare a cartesian parameter grid and give every cell a stable content
  hash of its parameters;
* :func:`~repro.runner.executor.run_sweep` executes cells serially or over a
  spawn-safe process pool with per-run timeouts and bounded crash retry;
* :class:`~repro.runner.store.ResultStore` persists one deterministic JSON
  record per cell, keyed by spec hash, which makes every sweep resumable by
  construction — re-invoking a finished sweep executes nothing;
* :mod:`~repro.runner.aggregate` folds stored records back into the
  :class:`~repro.net.stats.LatencySummary`-shaped outputs the figure scripts
  consume;
* :mod:`~repro.runner.telemetry` decomposes every run into wall-clock
  lifecycle phases (``repro.sweeptrace/1`` JSONL timelines, the live
  ``--progress`` console); ``python -m repro analyze-sweep`` turns a timeline
  into an overhead-attribution report.

Typical use::

    from repro.runner import ResultStore, SweepSpec, run_sweep, latency_summaries

    sweep = SweepSpec(
        task="dissemination",
        base={"num_nodes": 200, "transactions": 5, "seed": 0},
        grid={"protocol": ["hermes", "lzero", "narwhal", "mercury"]},
    )
    report = run_sweep(sweep, store=ResultStore("results/"), jobs=4)
    print(report.summary_line())
    print(latency_summaries(report.records))

The command line equivalent is ``python -m repro sweep``; see
``docs/runner.md`` for the concept guide (spec hashing, the record schema,
resume semantics and a worked example).
"""

from __future__ import annotations

from .aggregate import (
    group_records,
    latency_summaries,
    mean_by_group,
    merged_latencies,
)
from .executor import SweepReport, run_sweep
from .spec import RunSpec, SweepSpec, canonical_json, spec_hash
from .store import RECORD_SCHEMA, MemoryStore, ResultStore, RunRecord
from .tasks import get_task, register_task, task_names
from .telemetry import (
    PHASES,
    SWEEPTRACE_SCHEMA,
    ProgressConsole,
    SweepTelemetry,
    SweepTimeline,
    read_timeline,
)

__all__ = [
    "PHASES",
    "SWEEPTRACE_SCHEMA",
    "ProgressConsole",
    "SweepTelemetry",
    "SweepTimeline",
    "read_timeline",
    "RunSpec",
    "SweepSpec",
    "canonical_json",
    "spec_hash",
    "ResultStore",
    "MemoryStore",
    "RunRecord",
    "RECORD_SCHEMA",
    "run_sweep",
    "SweepReport",
    "register_task",
    "get_task",
    "task_names",
    "group_records",
    "latency_summaries",
    "mean_by_group",
    "merged_latencies",
]
