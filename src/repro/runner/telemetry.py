"""Worker-lifecycle telemetry for the sweep executor (``repro.sweeptrace/1``).

``BENCH_sweep.json`` says the process pool runs *slower* than serial
(speedup 0.382 at jobs=2) — but a single wall-clock total cannot say where
the time goes.  This module decomposes every run of a sweep into named
wall-clock phases and streams them, one JSON object per line, into a
*timeline* file next to the :class:`~repro.runner.store.ResultStore`:

``enqueue_wait``
    run submitted to the pool → a worker actually picks it up;
``spawn`` / ``env_build``
    per-*worker* one-time costs, measured by a pool initializer: interpreter
    start-up + module imports since pool creation (``spawn``) and the warm-up
    import of the experiment harness (``env_build``);
``deserialize``
    decoding the ``(task, params)`` spec document in the worker;
``execute``
    the task function itself (per-cell environment construction included);
``serialize``
    pickling the result document for the trip back (measured explicitly, as
    a faithful proxy for the pool's own result pickling);
``store_write``
    the parent persisting the record into the result store.

Timestamps are seconds on one shared monotonic timebase: the parent anchors a
:class:`~repro.obs.wall.WallClock` at sweep start and ships the raw origin to
every worker, which works because ``CLOCK_MONOTONIC`` is system-wide on
Linux (the only place the spawn pool runs in this repository).

The timeline is **observation only**.  Workers execute the exact same
``_execute_record`` path with telemetry on or off, and the stored records
never contain wall-clock data — serial sweeps with telemetry enabled are
byte-identical to untelemetered ones (pinned by a golden-hash test).

Schema (one JSON object per line)::

    {"schema": "repro.sweeptrace/1", "v": 1, "kind": "header",
     "jobs": n, "cells": n, "resumed": n}
    {"kind": "worker", "worker": pid, "t_spawned": s, "t_ready": s,
     "phases": {"spawn": s, "env_build": s}}
    {"kind": "run", "spec_hash": ..., "task": ..., "status": "ok"|"error"|
     "crash", "tags": [...], "worker": pid, "attempt": n,
     "t_submit": s, "t_start": s, "t_end": s, "t_stored": s,
     "phases": {"enqueue_wait": s, "deserialize": s, "execute": s,
                "serialize": s, "store_write": s}}
    {"kind": "resumed", "spec_hash": ...}
    {"kind": "summary", "wall_s": s, "executed": n, "skipped": n,
     "failed": n, "cells": n, "jobs": n}

Failure paths are first-class timeline citizens: a run killed by the
per-run SIGALRM timeout lands tagged ``["timeout"]``, and a worker crash
lands as a ``status="crash"`` record tagged ``["crash", "retry"]`` (requeued)
or ``["crash", "failed"]`` (retry budget exhausted).

Read a timeline back with :func:`read_timeline`; turn it into an
overhead-attribution report with ``python -m repro analyze-sweep`` (see
:mod:`repro.obs.analysis.sweep_report`); watch it live with
``python -m repro sweep --progress``.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Callable, Mapping

from ..errors import TraceReadError
from ..obs.wall import WallClock

__all__ = [
    "SWEEPTRACE_SCHEMA",
    "RUN_PHASES",
    "WORKER_PHASES",
    "PHASES",
    "SweepTelemetry",
    "SweepTimeline",
    "ProgressConsole",
    "read_timeline",
    "run_tags",
]

SWEEPTRACE_SCHEMA = "repro.sweeptrace/1"

#: Per-run phases, in lifecycle order.
RUN_PHASES = ("enqueue_wait", "deserialize", "execute", "serialize", "store_write")
#: Per-worker one-time phases.
WORKER_PHASES = ("spawn", "env_build")
#: Every named phase the attribution report accounts against.
PHASES = ("enqueue_wait",) + WORKER_PHASES + RUN_PHASES[1:]

#: The timeout marker `_execute_record` embeds in a timed-out run's error.
_TIMEOUT_MARKER = "run exceeded timeout"


def run_tags(record: Mapping[str, Any]) -> list[str]:
    """Timeline tags derived from a finished run record.

    The store schema is frozen (``repro.runner/1`` has only ``ok``/``error``
    statuses), so failure *classes* are recovered from the record rather than
    added to it: a SIGALRM timeout is recognizable by the deterministic error
    message ``_execute_record`` writes.
    """

    if record.get("status") == "ok":
        return []
    error = str(record.get("error") or "")
    if error.startswith(_TIMEOUT_MARKER):
        return ["timeout"]
    if error.startswith("worker crashed"):
        return ["crash", "failed"]
    return ["error"]


class SweepTelemetry:
    """Collects one sweep's worker-lifecycle records; optionally writes JSONL.

    The executor drives the ``sweep_started`` / ``run_*`` / ``worker_seen`` /
    ``sweep_finished`` hooks; every emitted record also reaches *listener*
    (the live progress console plugs in there).  Pass ``path=None`` to keep
    records in memory only (:attr:`records`).
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        listener: Callable[[dict[str, Any]], None] | None = None,
        clock: WallClock | None = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.listener = listener
        self.clock = clock if clock is not None else WallClock()
        self.records: list[dict[str, Any]] = []
        self.jobs = 1
        self._handle: IO[str] | None = None
        self._workers_seen: set[int] = set()

    # -- record plumbing -------------------------------------------------

    def _emit(self, record: dict[str, Any]) -> None:
        self.records.append(record)
        if self._handle is not None:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        if self.listener is not None:
            self.listener(record)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- executor hooks --------------------------------------------------

    def sweep_started(self, *, jobs: int, cells: int, resumed: int) -> None:
        self.jobs = jobs
        if self.path is not None and self._handle is None:
            self._handle = open(self.path, "w", encoding="utf-8")
        self._emit(
            {
                "schema": SWEEPTRACE_SCHEMA,
                "v": 1,
                "kind": "header",
                "jobs": jobs,
                "cells": cells,
                "resumed": resumed,
            }
        )

    def run_resumed(self, spec_hash: str) -> None:
        self._emit({"kind": "resumed", "spec_hash": spec_hash})

    def worker_seen(self, info: Mapping[str, Any] | None) -> None:
        """Emit one ``worker`` record per distinct pool worker."""

        if not info:
            return
        pid = int(info.get("pid", 0))
        if pid in self._workers_seen:
            return
        self._workers_seen.add(pid)
        self._emit(
            {
                "kind": "worker",
                "worker": pid,
                "t_spawned": float(info.get("t_spawned", 0.0)),
                "t_ready": float(info.get("t_ready", 0.0)),
                "phases": {
                    "spawn": float(info.get("spawn", 0.0)),
                    "env_build": float(info.get("env_build", 0.0)),
                },
            }
        )

    def run_finished(
        self,
        record: Mapping[str, Any],
        timing: Mapping[str, Any],
        *,
        store_write_s: float,
        attempt: int = 1,
    ) -> None:
        """One completed (ok or error) run, with its measured phases."""

        phases = dict(timing.get("phases", {}))
        phases.setdefault("enqueue_wait", 0.0)
        phases.setdefault("deserialize", 0.0)
        phases.setdefault("execute", 0.0)
        phases.setdefault("serialize", 0.0)
        phases["store_write"] = store_write_s
        spec = record.get("spec", {})
        self._emit(
            {
                "kind": "run",
                "spec_hash": record.get("spec_hash"),
                "task": spec.get("task") if isinstance(spec, Mapping) else None,
                "status": record.get("status"),
                "tags": run_tags(record),
                "worker": int(timing.get("worker", 0)),
                "attempt": attempt,
                "t_submit": float(timing.get("t_submit", 0.0)),
                "t_start": float(timing.get("t_start", 0.0)),
                "t_end": float(timing.get("t_end", 0.0)),
                "t_stored": self.clock.now(),
                "phases": {name: float(phases[name]) for name in sorted(phases)},
            }
        )

    def run_crashed(self, spec: Any, *, attempt: int, requeued: bool) -> None:
        """A worker died mid-run; the run itself produced no timing."""

        now = self.clock.now()
        self._emit(
            {
                "kind": "run",
                "spec_hash": spec.spec_hash,
                "task": spec.task,
                "status": "crash",
                "tags": ["crash", "retry" if requeued else "failed"],
                "worker": 0,
                "attempt": attempt,
                "t_submit": 0.0,
                "t_start": 0.0,
                "t_end": now,
                "t_stored": now,
                "phases": {},
            }
        )

    def sweep_finished(
        self, *, wall_s: float, executed: int, skipped: int, failed: int, cells: int
    ) -> None:
        self._emit(
            {
                "kind": "summary",
                "wall_s": wall_s,
                "executed": executed,
                "skipped": skipped,
                "failed": failed,
                "cells": cells,
                "jobs": self.jobs,
            }
        )
        self.close()


# ----------------------------------------------------------------------
# Reading timelines back
# ----------------------------------------------------------------------


@dataclass
class SweepTimeline:
    """A parsed ``repro.sweeptrace/1`` timeline."""

    header: dict[str, Any]
    runs: list[dict[str, Any]] = field(default_factory=list)
    workers: list[dict[str, Any]] = field(default_factory=list)
    resumed: list[str] = field(default_factory=list)
    summary: dict[str, Any] | None = None

    @property
    def jobs(self) -> int:
        return int(self.header.get("jobs", 1))

    @property
    def cells(self) -> int:
        return int(self.header.get("cells", 0))

    def completed_runs(self) -> list[dict[str, Any]]:
        """Runs that executed to a stored record (crash records excluded)."""

        return [r for r in self.runs if r.get("status") != "crash"]

    def wall_seconds(self) -> float:
        """The sweep's wall clock: the summary's figure, else the last stamp."""

        if self.summary is not None:
            return float(self.summary.get("wall_s", 0.0))
        return max((float(r.get("t_stored", 0.0)) for r in self.runs), default=0.0)


def read_timeline(path: str | Path) -> SweepTimeline:
    """Parse a timeline file, validating the schema header.

    Raises :class:`~repro.errors.TraceReadError` on a missing/foreign header,
    an unsupported version, or a malformed line — a truncated *tail* (the
    sweep was killed mid-write) only costs the truncated line itself.
    """

    path = Path(path)
    timeline: SweepTimeline | None = None
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                if timeline is not None:
                    break  # torn tail of an interrupted sweep: keep the prefix
                raise TraceReadError(f"{path}:{lineno}: not JSON: {exc}") from exc
            if timeline is None:
                if doc.get("schema") != SWEEPTRACE_SCHEMA:
                    raise TraceReadError(
                        f"{path}: not a {SWEEPTRACE_SCHEMA} timeline "
                        f"(schema={doc.get('schema')!r})"
                    )
                if doc.get("v") != 1:
                    raise TraceReadError(
                        f"{path}: unsupported timeline version {doc.get('v')!r}"
                    )
                timeline = SweepTimeline(header=doc)
                continue
            kind = doc.get("kind")
            if kind == "run":
                timeline.runs.append(doc)
            elif kind == "worker":
                timeline.workers.append(doc)
            elif kind == "resumed":
                timeline.resumed.append(str(doc.get("spec_hash")))
            elif kind == "summary":
                timeline.summary = doc
    if timeline is None:
        raise TraceReadError(f"{path}: empty timeline (no header line)")
    return timeline


# ----------------------------------------------------------------------
# Live progress console
# ----------------------------------------------------------------------


class ProgressConsole:
    """Renders a one-line live view of a sweep from its telemetry stream.

    Plug an instance in as the :class:`SweepTelemetry` *listener*; each
    emitted record refreshes a ``\\r``-rewritten status line showing
    cells-done/total, aggregate runs/s, per-worker utilization (busy phase
    time over time-since-ready) and an ETA extrapolated from the finish rate.
    The summary record replaces the live line with a final one.
    """

    def __init__(
        self,
        stream: IO[str] | None = None,
        *,
        clock: WallClock | None = None,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock if clock is not None else WallClock()
        self.total = 0
        self.done = 0
        self.failed = 0
        self.executed = 0
        self._busy: dict[int, float] = {}
        self._ready_at: dict[int, float] = {}
        self._width = 0

    # -- listener entry point -------------------------------------------

    def __call__(self, record: Mapping[str, Any]) -> None:
        kind = record.get("kind")
        if kind == "header":
            self.total = int(record.get("cells", 0))
            self.done = int(record.get("resumed", 0))
        elif kind == "resumed":
            pass  # already counted via the header's resumed field
        elif kind == "worker":
            self._ready_at[int(record.get("worker", 0))] = float(
                record.get("t_ready", 0.0)
            )
        elif kind == "run":
            if record.get("status") == "crash" and "retry" in record.get("tags", ()):
                return  # the run is still pending; don't count it done
            self.done += 1
            self.executed += 1
            if record.get("status") != "ok":
                self.failed += 1
            worker = int(record.get("worker", 0))
            phases = record.get("phases", {})
            busy = sum(
                float(phases.get(name, 0.0))
                for name in ("deserialize", "execute", "serialize")
            )
            self._busy[worker] = self._busy.get(worker, 0.0) + busy
        elif kind == "summary":
            self._finish(record)
            return
        self._render()

    # -- rendering -------------------------------------------------------

    def _rate(self, now: float) -> float:
        return self.executed / now if now > 0 else 0.0

    def _eta_s(self, now: float) -> float | None:
        rate = self._rate(now)
        remaining = self.total - self.done
        if rate <= 0 or remaining <= 0:
            return None
        return remaining / rate

    def _utilization(self, now: float) -> list[tuple[int, float]]:
        out = []
        for worker in sorted(self._busy):
            ready = self._ready_at.get(worker, 0.0)
            window = max(now - ready, 1e-9)
            out.append((worker, min(1.0, self._busy[worker] / window)))
        return out

    def _render(self) -> None:
        now = self.clock.now()
        line = self._compose(now)
        pad = max(0, self._width - len(line))
        self._width = len(line)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()

    def _compose(self, now: float) -> str:
        pct = (self.done / self.total * 100.0) if self.total else 0.0
        parts = [
            f"sweep {self.done}/{self.total} cells ({pct:.0f}%)",
            f"{self._rate(now):.2f} runs/s",
        ]
        eta = self._eta_s(now)
        if eta is not None:
            parts.append(f"eta {eta:.0f}s")
        if self.failed:
            parts.append(f"{self.failed} failed")
        util = self._utilization(now)
        if util:
            parts.append(
                "workers "
                + " ".join(
                    f"w{index} {frac * 100.0:.0f}%"
                    for index, (_, frac) in enumerate(util, start=1)
                )
            )
        return "  ".join(parts)

    def _finish(self, summary: Mapping[str, Any]) -> None:
        line = (
            f"sweep done: {summary.get('executed', 0)} executed, "
            f"{summary.get('skipped', 0)} resumed, "
            f"{summary.get('failed', 0)} failed "
            f"in {float(summary.get('wall_s', 0.0)):.1f}s "
            f"(jobs={summary.get('jobs', 1)})"
        )
        pad = max(0, self._width - len(line))
        self.stream.write("\r" + line + " " * pad + "\n")
        self.stream.flush()
