"""Folding stored run records into experiment-shaped outputs.

The executor and store deliberately know nothing about what a task measures;
this module is the bridge back to the shapes the figure scripts and report
already consume: :class:`~repro.net.stats.LatencySummary` per group, mean
scalars per group, grids keyed by swept parameters.

Grouping is by *parameter value*: ``group_records(records, "protocol")``
buckets records by ``spec.params["protocol"]``, so the aggregation mirrors
exactly how the sweep was declared.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable, Mapping, Sequence

from ..net.stats import LatencySummary, summarize_latencies
from .store import RunRecord

__all__ = [
    "group_records",
    "latency_summaries",
    "mean_by_group",
    "merged_latencies",
]


def _param(record: Mapping[str, Any], key: str) -> Any:
    return record["spec"]["params"].get(key)


def group_records(
    records: Iterable[RunRecord | Mapping[str, Any]], *keys: str
) -> dict[tuple, list[RunRecord]]:
    """Bucket successful records by the values of the given spec parameters.

    Returns ``{(value, ...): [record, ...]}`` with the records of each bucket
    in input order.  Failed records are excluded — aggregation only ever sees
    completed measurements.
    """

    if not keys:
        raise ValueError("group_records needs at least one parameter name")
    grouped: dict[tuple, list[RunRecord]] = defaultdict(list)
    for record in records:
        record = RunRecord(record)
        if not record.ok:
            continue
        grouped[tuple(_param(record, key) for key in keys)].append(record)
    return dict(grouped)


def merged_latencies(records: Iterable[RunRecord | Mapping[str, Any]]) -> list[float]:
    """Concatenate the ``latencies`` lists of every successful record."""

    out: list[float] = []
    for record in records:
        record = RunRecord(record)
        if record.ok:
            out.extend(record.result.get("latencies", ()))
    return out


def latency_summaries(
    records: Iterable[RunRecord | Mapping[str, Any]], key: str = "protocol"
) -> dict[Any, LatencySummary]:
    """Per-group latency summaries from each record's ``latencies`` list.

    This folds stored cells into the same :class:`LatencySummary` values an
    in-process run computes from ``NetworkStats.latency_summary()`` — the
    populations are identical, so the statistics are too.
    """

    return {
        group[0]: summarize_latencies(merged_latencies(bucket))
        for group, bucket in group_records(records, key).items()
    }


def mean_by_group(
    records: Iterable[RunRecord | Mapping[str, Any]],
    value_key: str,
    *group_keys: str,
) -> dict[tuple, float]:
    """Mean of ``result[value_key]`` per bucket of the given spec parameters."""

    out: dict[tuple, float] = {}
    for group, bucket in group_records(records, *group_keys).items():
        values: Sequence[float] = [record.result[value_key] for record in bucket]
        out[group] = sum(values) / len(values)
    return out
