"""The task registry: named, spawn-safe run functions.

A *task* is a module-level function ``params -> JSON-serializable result``
registered under a stable name.  Workers receive only ``(task name, params)``
across the process boundary and look the function up in this registry after
importing it fresh, which is what makes the executor spawn-safe: nothing
unpicklable ever travels to a worker.

Tasks must be deterministic functions of their parameters — every seed they
consume has to be part of ``params`` — because the result store addresses
records by the content hash of exactly those parameters.

Built-in tasks:

``dissemination``
    One protocol disseminating a transaction workload over a generated
    network, optionally under a byzantine fault plan.  The general-purpose
    cell for ad-hoc ``python -m repro sweep`` grids.
``fig3a.protocol`` / ``fig3b.protocol`` / ``fig5a.trial`` / ``fig5b.trial`` /
``fig6.point`` / ``fig7.point`` / ``fig8.point`` / ``fig9.point``
    The repetition cells of the corresponding figure scripts (see each
    ``repro.experiments.fig*`` module's ``run_cell``).
``selftest.*``
    Tiny diagnostic tasks (echo / sleep / crash) used by the harness's own
    tests and by operators validating a new results directory.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Mapping

from ..errors import ConfigurationError

__all__ = ["register_task", "get_task", "task_names", "dissemination"]

TaskFn = Callable[[Mapping[str, Any]], Any]

_REGISTRY: dict[str, TaskFn] = {}


def register_task(name: str) -> Callable[[TaskFn], TaskFn]:
    """Register a task function under *name* (decorator)."""

    def decorate(fn: TaskFn) -> TaskFn:
        if name in _REGISTRY:
            raise ConfigurationError(f"task {name!r} is already registered")
        _REGISTRY[name] = fn
        return fn

    return decorate


def get_task(name: str) -> TaskFn:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown task {name!r}; known tasks: {', '.join(task_names())}"
        )


def task_names() -> list[str]:
    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# General-purpose dissemination cell
# ----------------------------------------------------------------------


@register_task("dissemination")
def dissemination(params: Mapping[str, Any]) -> dict[str, Any]:
    """One protocol run: workload of transactions, optional fault fraction.

    Parameters (all JSON scalars; defaults in parentheses): ``protocol``
    ('hermes'), ``num_nodes`` (60), ``f`` (1), ``k`` (4), ``transactions``
    (3), ``horizon_ms`` (6000), ``fault_fraction`` (0.0), ``behavior``
    ('drop-relay'), ``seed`` (0).

    Returns the raw per-run measurements the aggregation layer folds:
    delivery latencies, setup overheads, honest coverage, bandwidth.
    """

    from ..experiments.harness import build_environment, protocol_factories
    from ..mempool.transaction import Transaction
    from ..net.faults import Behavior, FaultPlan
    from ..utils.rng import derive_rng

    protocol = str(params.get("protocol", "hermes"))
    num_nodes = int(params.get("num_nodes", 60))
    f = int(params.get("f", 1))
    k = int(params.get("k", 4))
    transactions = int(params.get("transactions", 3))
    horizon_ms = float(params.get("horizon_ms", 6_000.0))
    fault_fraction = float(params.get("fault_fraction", 0.0))
    behavior = Behavior(str(params.get("behavior", "drop-relay")))
    seed = int(params.get("seed", 0))

    env = build_environment(num_nodes=num_nodes, f=f, k=k, seed=seed)
    factories = protocol_factories(env)
    if protocol not in factories:
        raise ConfigurationError(
            f"unknown protocol {protocol!r}; choose from {sorted(factories)}"
        )
    nodes = env.physical.nodes()
    rng = derive_rng(seed, "runner-dissemination", protocol)
    origins = [rng.choice(nodes) for _ in range(transactions)]
    plan = (
        FaultPlan.random_fraction(
            nodes, fault_fraction, behavior, seed=seed, protected=tuple(origins)
        )
        if fault_fraction > 0
        else None
    )
    system = factories[protocol](plan)
    system.start()
    items = []
    for origin in origins:
        tx = Transaction.create(origin=origin, created_at=0.0)
        items.append(tx.tx_id)
        system.submit(origin, tx)
    system.run(until_ms=horizon_ms)

    stats = system.stats
    honest = plan.honest_nodes(nodes) if plan is not None else list(nodes)
    coverages = []
    for item in items:
        delivered = set(stats.deliveries.get(item, {}))
        coverages.append(
            sum(1 for n in honest if n in delivered) / len(honest) if honest else 0.0
        )
    return {
        "protocol": protocol,
        "latencies": stats.all_delivery_latencies(),
        "setup_overheads": stats.setup_overheads(),
        "coverage": sum(coverages) / len(coverages) if coverages else 0.0,
        "total_bytes": stats.total_bytes(),
        "kb_per_minute": stats.bandwidth_kb_per_minute(horizon_ms),
        "messages_dropped": stats.messages_dropped,
    }


# ----------------------------------------------------------------------
# Figure repetition cells (implemented next to their figure scripts; the
# lazy imports keep `repro.runner` importable without pulling in the whole
# experiments package, and avoid an import cycle with the fig modules'
# own `run_parallel` entry points).
# ----------------------------------------------------------------------


@register_task("fig3a.protocol")
def _fig3a_protocol(params: Mapping[str, Any]) -> dict[str, Any]:
    from ..experiments import fig3a_latency

    return fig3a_latency.run_cell(params)


@register_task("fig3b.protocol")
def _fig3b_protocol(params: Mapping[str, Any]) -> dict[str, Any]:
    from ..experiments import fig3b_bandwidth

    return fig3b_bandwidth.run_cell(params)


@register_task("fig5a.trial")
def _fig5a_trial(params: Mapping[str, Any]) -> dict[str, Any]:
    from ..experiments import fig5a_frontrunning

    return fig5a_frontrunning.run_cell(params)


@register_task("fig5b.trial")
def _fig5b_trial(params: Mapping[str, Any]) -> dict[str, Any]:
    from ..experiments import fig5b_robustness

    return fig5b_robustness.run_cell(params)


@register_task("fig6.point")
def _fig6_point(params: Mapping[str, Any]) -> dict[str, Any]:
    from ..experiments import fig6_saturation

    return fig6_saturation.run_cell(params)


@register_task("fig7.point")
def _fig7_point(params: Mapping[str, Any]) -> dict[str, Any]:
    from ..experiments import fig7_adversary

    return fig7_adversary.run_cell(params)


@register_task("fig8.point")
def _fig8_point(params: Mapping[str, Any]) -> dict[str, Any]:
    from ..experiments import fig8_sustained

    return fig8_sustained.run_cell(params)


@register_task("fig9.point")
def _fig9_point(params: Mapping[str, Any]) -> dict[str, Any]:
    from ..experiments import fig9_sharding

    return fig9_sharding.run_cell(params)


@register_task("chaos.run")
def _chaos_run(params: Mapping[str, Any]) -> dict[str, Any]:
    """One chaos campaign: a scenario against one protocol (see docs/chaos.md).

    Parameters: ``scenario`` ('escalation' — a bundled name or a path to a
    scenario JSON file), ``protocol`` ('hermes'), ``num_nodes`` (48), ``f``
    (1), ``k`` (4), ``seed`` (0).  Returns the full
    :class:`~repro.chaos.report.ChaosReport` as JSON — deterministic for a
    given parameter set, so finished sweeps replay entirely from the store.
    """

    from ..chaos import get_scenario, run_chaos

    scenario = get_scenario(str(params.get("scenario", "escalation")))
    report = run_chaos(
        scenario,
        protocol=str(params.get("protocol", "hermes")),
        num_nodes=int(params.get("num_nodes", 48)),
        f=int(params.get("f", 1)),
        k=int(params.get("k", 4)),
        seed=int(params.get("seed", 0)),
    )
    return report.to_json()


# ----------------------------------------------------------------------
# Diagnostic tasks (harness self-tests)
# ----------------------------------------------------------------------


@register_task("selftest.echo")
def _selftest_echo(params: Mapping[str, Any]) -> dict[str, Any]:
    """Return the parameters unchanged (pipeline smoke test)."""

    return dict(params)


@register_task("selftest.sleep")
def _selftest_sleep(params: Mapping[str, Any]) -> dict[str, Any]:
    """Sleep ``seconds`` then echo (exercises per-run timeouts)."""

    seconds = float(params.get("seconds", 0.0))
    time.sleep(seconds)
    return {"slept": seconds}


@register_task("selftest.crash")
def _selftest_crash(params: Mapping[str, Any]) -> dict[str, Any]:
    """Kill the executing process outright (exercises crash retry)."""

    os._exit(int(params.get("code", 17)))
