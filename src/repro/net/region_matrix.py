"""Region-pair latency matrix: a finer-grained inter-regional model.

The paper fits *one* normal distribution (µ = 90 ms) to all inter-regional
links.  Real WAN latencies are strongly pair-dependent (Frankfurt↔London is
~8 ms one-way, Sydney↔Ireland ~140 ms).  This module ships a matrix of
approximate one-way latencies between the paper's nine regions (derived from
public cloud inter-region RTT tables, halved) and a latency model that uses
pair-specific means while keeping the paper's distribution families.

Using it is optional: the experiment defaults keep the paper's single-mean
fit so the reproduction stays comparable; pass
``realistic_latency_model(...)``'s parameters when you want geographic
structure (the region-aware examples and a couple of tests exercise it).
"""

from __future__ import annotations

import math
import random
from typing import Mapping

from ..types import Region
from .latency import MIN_LATENCY_MS, LatencyModel, LatencyParameters

__all__ = [
    "REALISTIC_ONE_WAY_MS",
    "MatrixLatencyModel",
    "realistic_latency_model",
]

# Approximate one-way latencies (ms) between region pairs; symmetric.
_RAW: dict[tuple[Region, Region], float] = {
    (Region.NEW_YORK, Region.OHIO): 10.0,
    (Region.NEW_YORK, Region.CALIFORNIA): 35.0,
    (Region.NEW_YORK, Region.LONDON): 38.0,
    (Region.NEW_YORK, Region.IRELAND): 34.0,
    (Region.NEW_YORK, Region.FRANKFURT): 45.0,
    (Region.NEW_YORK, Region.TOKYO): 85.0,
    (Region.NEW_YORK, Region.SINGAPORE): 115.0,
    (Region.NEW_YORK, Region.SYDNEY): 100.0,
    (Region.OHIO, Region.CALIFORNIA): 25.0,
    (Region.OHIO, Region.LONDON): 43.0,
    (Region.OHIO, Region.IRELAND): 40.0,
    (Region.OHIO, Region.FRANKFURT): 50.0,
    (Region.OHIO, Region.TOKYO): 80.0,
    (Region.OHIO, Region.SINGAPORE): 110.0,
    (Region.OHIO, Region.SYDNEY): 97.0,
    (Region.CALIFORNIA, Region.LONDON): 68.0,
    (Region.CALIFORNIA, Region.IRELAND): 65.0,
    (Region.CALIFORNIA, Region.FRANKFURT): 73.0,
    (Region.CALIFORNIA, Region.TOKYO): 55.0,
    (Region.CALIFORNIA, Region.SINGAPORE): 85.0,
    (Region.CALIFORNIA, Region.SYDNEY): 70.0,
    (Region.LONDON, Region.IRELAND): 6.0,
    (Region.LONDON, Region.FRANKFURT): 8.0,
    (Region.LONDON, Region.TOKYO): 110.0,
    (Region.LONDON, Region.SINGAPORE): 85.0,
    (Region.LONDON, Region.SYDNEY): 140.0,
    (Region.IRELAND, Region.FRANKFURT): 12.0,
    (Region.IRELAND, Region.TOKYO): 105.0,
    (Region.IRELAND, Region.SINGAPORE): 90.0,
    (Region.IRELAND, Region.SYDNEY): 140.0,
    (Region.FRANKFURT, Region.TOKYO): 112.0,
    (Region.FRANKFURT, Region.SINGAPORE): 80.0,
    (Region.FRANKFURT, Region.SYDNEY): 145.0,
    (Region.TOKYO, Region.SINGAPORE): 35.0,
    (Region.TOKYO, Region.SYDNEY): 52.0,
    (Region.SINGAPORE, Region.SYDNEY): 46.0,
}


def _symmetrize(raw: Mapping[tuple[Region, Region], float]):
    table: dict[tuple[Region, Region], float] = {}
    for (a, b), value in raw.items():
        table[(a, b)] = value
        table[(b, a)] = value
    return table


REALISTIC_ONE_WAY_MS: Mapping[tuple[Region, Region], float] = _symmetrize(_RAW)


class MatrixLatencyModel(LatencyModel):
    """A latency model whose inter-regional mean is pair-specific.

    Intra-regional sampling keeps the paper's inverse-gamma fit; the
    inter-regional normal keeps the paper's variance but centres on the
    matrix value for the pair.
    """

    def __init__(
        self,
        matrix: Mapping[tuple[Region, Region], float] | None = None,
        parameters: LatencyParameters | None = None,
        rng: random.Random | None = None,
    ) -> None:
        super().__init__(parameters, rng)
        self.matrix = dict(matrix) if matrix is not None else dict(REALISTIC_ONE_WAY_MS)

    def _pair_mean(self, src: Region, dst: Region) -> float:
        return self.matrix.get((src, dst), self.parameters.inter_mean)

    def sample(self, src: Region, dst: Region) -> float:
        if src == dst:
            return self._sample_intra(self._rng)
        return self._sample_inter_pair(self._rng, src, dst)

    def sample_pair(self, seed: int, u: int, v: int, src: Region, dst: Region) -> float:
        from ..utils.rng import derive_rng

        rng = derive_rng(seed, "pair", min(u, v), max(u, v))
        if src == dst:
            return self._sample_intra(rng)
        return self._sample_inter_pair(rng, src, dst)

    def expected(self, src: Region, dst: Region) -> float:
        if src == dst:
            return super().expected(src, dst)
        return self._pair_mean(src, dst)

    def _sample_inter_pair(
        self, rng: random.Random, src: Region, dst: Region
    ) -> float:
        mean = self._pair_mean(src, dst)
        draw = rng.normalvariate(mean, math.sqrt(self.parameters.inter_variance))
        return max(MIN_LATENCY_MS, draw)


def realistic_latency_model(
    seed: int = 0, parameters: LatencyParameters | None = None
) -> MatrixLatencyModel:
    """The nine-region matrix model with the paper's distribution families."""

    return MatrixLatencyModel(
        REALISTIC_ONE_WAY_MS, parameters, random.Random(seed)
    )
