"""The paper's latency model.

Section VIII-A: latencies were fit from CAIDA / RIPE Atlas / AWS / Azure and
Ethereum measurements over nine regions, with

* intra-regional latency ~ InverseGamma(shape α = 2.5, scale β = 14)
  ("resulting in a mean latency of 7 ms"), and
* inter-regional latency ~ Normal(µ = 90 ms, σ² = 20).

We implement exactly those distributions.  (For the stated parameters the
analytic inverse-gamma mean is β/(α−1) ≈ 9.3 ms rather than 7 ms; we keep the
published α/β since the comparison between protocols — the thing the paper
measures — is invariant to that 2 ms discrepancy.)

Inverse-gamma sampling uses the reciprocal relationship: if
``X ~ Gamma(shape=α, scale=1/β)`` then ``1/X ~ InvGamma(α, β)``, so we draw
``gammavariate(α, 1/β)`` and return its reciprocal.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..types import Region
from ..utils.validation import require_positive
from .sampling import gamma_block, normal_block

__all__ = ["LatencyParameters", "LatencyModel", "MIN_LATENCY_MS"]

# Floor applied to every sample: physical links never deliver in < 0.1 ms.
# Shared with the pair-specific matrix model (repro.net.region_matrix) so
# every sampling path clamps to the same physical floor.
MIN_LATENCY_MS = 0.1


@dataclass(frozen=True, slots=True)
class LatencyParameters:
    """Distribution parameters, defaulting to the paper's published fit."""

    intra_shape: float = 2.5
    intra_scale: float = 14.0
    inter_mean: float = 90.0
    inter_variance: float = 20.0

    def __post_init__(self) -> None:
        require_positive(self.intra_shape, "intra_shape")
        require_positive(self.intra_scale, "intra_scale")
        require_positive(self.inter_mean, "inter_mean")
        require_positive(self.inter_variance, "inter_variance")
        if self.intra_shape <= 1.0:
            # The mean of an inverse gamma is only finite for shape > 1.
            raise ValueError("intra_shape must exceed 1 for a finite mean latency")


class LatencyModel:
    """Samples link latencies between (region, region) pairs."""

    def __init__(
        self,
        parameters: LatencyParameters | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self.parameters = parameters if parameters is not None else LatencyParameters()
        self._rng = rng if rng is not None else random.Random(0)

    def sample(self, src: Region, dst: Region) -> float:
        """One latency draw in milliseconds for a link from *src* to *dst*."""

        if src == dst:
            return self._sample_intra(self._rng)
        return self._sample_inter(self._rng)

    def sample_block(
        self, src: Region, dst: Region, n: int, rng: random.Random | None = None
    ) -> list[float]:
        """*n* latency draws for the region pair, batched but byte-identical.

        Exactly ``[self.sample(src, dst) for _ in range(n)]`` on the same
        generator (see :mod:`repro.net.sampling` for the equivalence
        contract); the underlying uniforms are drawn in one vectorized block
        per call, which is how topology generation amortizes per-edge draws
        at paper scale.
        """

        if src == dst:
            return self.sample_intra_block(n, rng)
        return self.sample_inter_block(n, rng)

    def sample_intra_block(self, n: int, rng: random.Random | None = None) -> list[float]:
        """*n* intra-regional draws — exactly *n* scalar ``_sample_intra``."""

        p = self.parameters
        draws = gamma_block(
            rng if rng is not None else self._rng, p.intra_shape, 1.0 / p.intra_scale, n
        )
        return [
            max(MIN_LATENCY_MS, 1.0 / g) if g > 0.0 else MIN_LATENCY_MS for g in draws
        ]

    def sample_inter_block(self, n: int, rng: random.Random | None = None) -> list[float]:
        """*n* inter-regional draws — exactly *n* scalar ``_sample_inter``."""

        p = self.parameters
        draws = normal_block(
            rng if rng is not None else self._rng,
            p.inter_mean,
            math.sqrt(p.inter_variance),
            n,
        )
        return [max(MIN_LATENCY_MS, d) for d in draws]

    def sample_pair(self, seed: int, u: int, v: int, src: Region, dst: Region) -> float:
        """A *stable* latency draw for the unordered node pair ``(u, v)``.

        The draw depends only on ``(seed, {u, v})``, never on query order, so
        overlay construction and the transport layer agree on the latency of
        every pair without sharing mutable state.
        """

        from ..utils.rng import derive_rng

        rng = derive_rng(seed, "pair", min(u, v), max(u, v))
        if src == dst:
            return self._sample_intra(rng)
        return self._sample_inter(rng)

    def expected(self, src: Region, dst: Region) -> float:
        """The distribution mean — used as the deterministic edge label
        ``lat(e)`` during overlay construction."""

        p = self.parameters
        if src == dst:
            return p.intra_scale / (p.intra_shape - 1.0)
        return p.inter_mean

    def _sample_intra(self, rng: random.Random) -> float:
        p = self.parameters
        # 1 / Gamma(shape, rate=scale) ~ InvGamma(shape, scale).
        gamma_draw = rng.gammavariate(p.intra_shape, 1.0 / p.intra_scale)
        if gamma_draw <= 0.0:  # pragma: no cover - gammavariate is positive
            return MIN_LATENCY_MS
        return max(MIN_LATENCY_MS, 1.0 / gamma_draw)

    def _sample_inter(self, rng: random.Random) -> float:
        p = self.parameters
        draw = rng.normalvariate(p.inter_mean, math.sqrt(p.inter_variance))
        return max(MIN_LATENCY_MS, draw)
