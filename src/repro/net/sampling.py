"""Exact-stream block sampling: vectorized draws, byte-identical results.

The kernel's byte-identity contract says a seeded run must produce the same
results no matter which performance features are enabled.  Batched sampling
therefore cannot merely be *statistically* equivalent to scalar sampling — a
block of ``n`` draws must return the exact floats that ``n`` scalar calls on
the same ``random.Random`` would have returned, and must leave the generator
in the exact state those calls would have left it in.

This is achievable because CPython's ``random.Random`` and NumPy's legacy
``RandomState`` share the same core generator (MT19937) *and* the same
double-extraction recipe (two 32-bit words → one 53-bit double), so a
``random.Random`` state can be transplanted into a ``RandomState``, a block
of uniforms drawn vectorized, and the advanced state transplanted back —
bit-for-bit the stream the scalar ``random()`` method would have produced.
On top of that uniform stream we re-implement the distribution algorithms of
``random.py`` (Kinderman–Monahan for normals, Cheng's GB for gammas) with one
hard rule: **every transcendental that feeds an output value is computed with
scalar ``math`` calls**, because NumPy's SIMD ``log``/``exp`` may differ from
libm by one ulp on a small fraction of inputs.  Vectorized transcendentals
are used only for accept/reject *decisions*, and any decision within a guard
band of the boundary is re-checked with ``math.log`` — so a one-ulp
discrepancy can never flip an accept into a reject.

State transplants cost tens of microseconds each (the 624-word MT key
crosses the C boundary four times), so :class:`BlockSampler` keeps its NumPy
mirror *persistent*: consecutive blocks drawn through the same sampler skip
the transplant-in entirely (a cheap state comparison detects out-of-band
scalar draws and resynchronizes).  Use one long-lived sampler per hot
stream; the module-level ``*_block`` functions construct an ephemeral one
and are meant for occasional or test use.

When NumPy is unavailable (notably on PyPy, where the scalar interpreter is
fast anyway) every block falls back to plain scalar draws, which is
byte-identical by construction.  ``set_batching(False)`` forces that
fallback for A/B testing; the golden-hash determinism tests run both paths.
"""

from __future__ import annotations

import random
from math import exp as _exp
from math import log as _log
from math import sqrt as _sqrt

__all__ = [
    "have_numpy",
    "batching_enabled",
    "set_batching",
    "BlockSampler",
    "uniform_block",
    "normal_block",
    "lognorm_block",
    "gamma_block",
]

# NumPy is imported lazily on the first batched draw: this module sits under
# repro.net.channel and therefore on every import path, and eagerly paying
# NumPy's ~100 ms import would slow down every short-lived process (sweep
# workers, CLI invocations) whether or not they ever sample in blocks.
_np = None
_np_checked = False


def _numpy():
    """The numpy module, imported on first use; None when unavailable."""

    global _np, _np_checked
    if not _np_checked:
        _np_checked = True
        try:  # pragma: no cover - exercised implicitly by every batched test
            import numpy

            _np = numpy
        except ImportError:  # pragma: no cover - the PyPy / minimal-env path
            _np = None
    return _np


def have_numpy() -> bool:
    """True when NumPy can be imported (the vectorized path exists)."""

    return _numpy() is not None

# Constants from CPython's random.py (identical across 3.10–3.13).
_NV_MAGICCONST = 4 * _exp(-0.5) / _sqrt(2.0)
_LOG4 = _log(4.0)
_SG_MAGICCONST = 1.0 + _log(4.5)

# Relative half-width of the boundary band inside which vectorized
# accept/reject decisions are re-verified with scalar math.log.  NumPy's log
# is within 1 ulp of libm (~2.3e-16 relative), so 1e-12 is a >1000× margin.
_DECISION_BAND = 1e-12

_batching = True


def batching_enabled() -> bool:
    """True when block draws take the vectorized path (NumPy present + on)."""

    return _batching and _numpy() is not None


def set_batching(enabled: bool) -> None:
    """Globally enable/disable vectorized block sampling (A/B testing).

    Results are byte-identical either way; only speed changes.
    """

    global _batching
    _batching = bool(enabled)


class BlockSampler:
    """A persistent vectorized view of one ``random.Random``'s draw stream.

    Every method returns exactly what the same number of scalar calls on the
    wrapped generator would have returned, and leaves the generator in the
    state those calls would have left it in — so scalar and block draws may
    be interleaved freely.
    """

    __slots__ = ("_rng", "_bitgen", "_mirror", "_expected")

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._bitgen = None
        self._mirror = None
        self._expected: tuple | None = None

    # -- mirror plumbing ------------------------------------------------

    def _begin(self) -> tuple:
        """Position the NumPy mirror at the wrapped rng's current state."""

        state = self._rng.getstate()
        if self._mirror is None:
            self._bitgen = _np.random.MT19937()
            self._mirror = _np.random.RandomState(self._bitgen)
            self._expected = None
        if state != self._expected:
            self._seek(state, 0)
        return state

    def _seek(self, state: tuple, consumed: int) -> None:
        """Point the mirror *consumed* uniforms past *state*."""

        internal = state[1]
        self._bitgen.state = {
            "bit_generator": "MT19937",
            "state": {
                "key": _np.array(internal[:-1], dtype=_np.uint32),
                "pos": internal[-1],
            },
        }
        if consumed:
            self._mirror.random_sample(consumed)

    def _commit(self, state: tuple) -> None:
        """Write the mirror's position back into the wrapped rng."""

        mt = self._bitgen.state["state"]
        expected = (
            state[0],
            tuple(mt["key"].tolist()) + (int(mt["pos"]),),
            state[2],
        )
        self._rng.setstate(expected)
        self._expected = expected

    # -- distributions ---------------------------------------------------

    def uniforms(self, n: int) -> list[float]:
        """The next *n* uniforms — exactly ``[rng.random() for _ in ...]``."""

        if n <= 0:
            return []
        if not batching_enabled():
            scalar = self._rng.random
            return [scalar() for _ in range(n)]
        state = self._begin()
        block = self._mirror.random_sample(n)
        self._commit(state)
        return block.tolist()

    def normals(self, mu: float, sigma: float, n: int) -> list[float]:
        """The next *n* draws of ``rng.normalvariate(mu, sigma)``."""

        if n <= 0:
            return []
        if not batching_enabled():
            scalar = self._rng.normalvariate
            return [scalar(mu, sigma) for _ in range(n)]
        state = self._begin()
        out: list[float] = []
        consumed = 0
        overdrawn = False
        while len(out) < n:
            need = n - len(out)
            # Kinderman–Monahan accepts ~73% of candidate pairs; oversample
            # so one chunk usually suffices.
            pairs = max(64, need + (need >> 1) + 16)
            u = self._mirror.random_sample(2 * pairs)
            u1 = u[0::2]
            u2 = 1.0 - u[1::2]
            z = _NV_MAGICCONST * (u1 - 0.5) / u2
            zz = z * z / 4.0
            neg_log = -_np.log(u2)
            ok = zz <= neg_log
            # Re-verify decisions near the boundary with libm's log: NumPy's
            # vectorized log may differ in the last ulp, and only there could
            # that ulp flip the comparison.
            band = _np.flatnonzero(
                _np.abs(zz - neg_log) <= _DECISION_BAND * (1.0 + _np.abs(neg_log))
            )
            for i in band:
                ok[i] = zz[i] <= -_log(u2[i])
            accepted = _np.flatnonzero(ok)
            if len(accepted) >= need:
                accepted = accepted[:need]
                used_pairs = int(accepted[-1]) + 1
                consumed += 2 * used_pairs
                overdrawn = used_pairs < pairs
                out.extend((mu + z[accepted] * sigma).tolist())
                break
            consumed += 2 * pairs
            out.extend((mu + z[accepted] * sigma).tolist())
        if overdrawn:
            # The final chunk was drawn speculatively past the n-th accept;
            # rewind the mirror to the exact consumption point.
            self._seek(state, consumed)
        self._commit(state)
        return out

    def lognorms(self, mu: float, sigma: float, n: int) -> list[float]:
        """The next *n* draws of ``rng.lognormvariate(mu, sigma)``.

        ``exp`` feeds the output value, so it stays scalar (module contract).
        """

        if n <= 0:
            return []
        if not batching_enabled():
            scalar = self._rng.lognormvariate
            return [scalar(mu, sigma) for _ in range(n)]
        return [_exp(x) for x in self.normals(mu, sigma, n)]

    def gammas(self, alpha: float, beta: float, n: int) -> list[float]:
        """The next *n* draws of ``rng.gammavariate(alpha, beta)``.

        For ``alpha > 1`` (Cheng's GB algorithm — the inverse-gamma latency
        path) the uniform stream is drawn in vectorized blocks; the
        per-candidate ``log``/``exp`` feed output values and therefore stay
        scalar, so the win here is the prefetched uniforms, not full
        vectorization.  Other alpha ranges fall back to scalar draws.
        """

        if n <= 0:
            return []
        if not (batching_enabled() and alpha > 1.0):
            scalar = self._rng.gammavariate
            return [scalar(alpha, beta) for _ in range(n)]
        state = self._begin()
        buffer = self._mirror.random_sample(max(256, 2 * n + (n >> 1) + 16))
        drawn = len(buffer)
        cursor = 0
        ainv = _sqrt(2.0 * alpha - 1.0)
        bbb = alpha - _LOG4
        ccc = alpha + ainv
        out: list[float] = []
        used = 0
        while len(out) < n:
            if cursor == len(buffer):
                buffer = self._mirror.random_sample(len(buffer))
                drawn += len(buffer)
                cursor = 0
            u1 = float(buffer[cursor])
            cursor += 1
            used += 1
            if not 1e-7 < u1 < 0.9999999:
                continue
            if cursor == len(buffer):
                buffer = self._mirror.random_sample(len(buffer))
                drawn += len(buffer)
                cursor = 0
            u2 = 1.0 - float(buffer[cursor])
            cursor += 1
            used += 1
            v = _log(u1 / (1.0 - u1)) / ainv
            x = alpha * _exp(v)
            z = u1 * u1 * u2
            r = bbb + ccc * v - x
            if r + _SG_MAGICCONST - 4.5 * z >= 0.0 or r >= _log(z):
                out.append(x * beta)
        if used < drawn:
            self._seek(state, used)
        self._commit(state)
        return out


def uniform_block(rng: random.Random, n: int) -> list[float]:
    """The next *n* uniforms of *rng* — exactly ``n`` ``rng.random()`` calls."""

    return BlockSampler(rng).uniforms(n)


def normal_block(rng: random.Random, mu: float, sigma: float, n: int) -> list[float]:
    """The next *n* draws of ``rng.normalvariate(mu, sigma)``, vectorized."""

    return BlockSampler(rng).normals(mu, sigma, n)


def lognorm_block(rng: random.Random, mu: float, sigma: float, n: int) -> list[float]:
    """The next *n* draws of ``rng.lognormvariate(mu, sigma)``, vectorized."""

    return BlockSampler(rng).lognorms(mu, sigma, n)


def gamma_block(rng: random.Random, alpha: float, beta: float, n: int) -> list[float]:
    """The next *n* draws of ``rng.gammavariate(alpha, beta)``, vectorized."""

    return BlockSampler(rng).gammas(alpha, beta, n)
