"""Fault and adversary planning.

A :class:`FaultPlan` decides *which* nodes misbehave and *how*; protocol
implementations consult it when constructing their node actors.  Keeping the
plan separate from the protocols lets every experiment inject the same
adversary into HERMES and each baseline.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..errors import ConfigurationError
from ..utils.rng import derive_rng

__all__ = ["Behavior", "FaultPlan"]


class Behavior(enum.Enum):
    """How a node deviates from the protocol."""

    HONEST = "honest"
    CRASH = "crash"  # never sends anything
    DROP_RELAY = "drop-relay"  # receives but never forwards (censorship)
    FRONT_RUN = "front-run"  # forwards, but injects adversarial transactions
    EQUIVOCATE = "equivocate"  # sends conflicting protocol messages


@dataclass
class FaultPlan:
    """Assignment of behaviours to node ids (everyone else is honest)."""

    behaviors: dict[int, Behavior] = field(default_factory=dict)

    @classmethod
    def honest(cls) -> "FaultPlan":
        return cls()

    @classmethod
    def random_fraction(
        cls,
        node_ids: Sequence[int],
        fraction: float,
        behavior: Behavior,
        seed: int = 0,
        protected: Iterable[int] = (),
    ) -> "FaultPlan":
        """Mark a random *fraction* of *node_ids* with *behavior*.

        Nodes in *protected* (e.g. the designated sender or the block
        proposer) are never corrupted.  The Byzantine count is capped at
        ``floor(n/3)`` to respect the global fault bound of §IV.
        """

        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
        eligible = [n for n in node_ids if n not in set(protected)]
        target = int(round(fraction * len(node_ids)))
        cap = len(node_ids) // 3
        count = min(target, cap, len(eligible))
        rng = derive_rng(seed, "fault-plan", behavior.value)
        chosen = rng.sample(eligible, count) if count else []
        return cls(behaviors={n: behavior for n in chosen})

    def behavior_of(self, node_id: int) -> Behavior:
        return self.behaviors.get(node_id, Behavior.HONEST)

    def is_byzantine(self, node_id: int) -> bool:
        return self.behavior_of(node_id) is not Behavior.HONEST

    def byzantine_nodes(self) -> list[int]:
        return sorted(self.behaviors)

    def honest_nodes(self, node_ids: Iterable[int]) -> list[int]:
        return sorted(n for n in node_ids if not self.is_byzantine(n))

    def count(self) -> int:
        return len(self.behaviors)
