"""Fault and adversary planning.

A :class:`FaultPlan` decides *which* nodes misbehave and *how*; protocol
implementations consult it when constructing their node actors.  Keeping the
plan separate from the protocols lets every experiment inject the same
adversary into HERMES and each baseline.

Plans answer two kinds of query:

* :meth:`FaultPlan.behavior_of` — the *static* assignment used when nodes are
  constructed (every existing experiment);
* :meth:`FaultPlan.behavior_at` — the behavior at a given simulation time.
  For a plain :class:`FaultPlan` the answer never changes; a
  :class:`TimelineFaultPlan` (built by :mod:`repro.chaos` when it compiles a
  scenario onto the simulator) additionally records mid-run behavior flips so
  invariant checkers can ask "was node 17 Byzantine when this happened?".
"""

from __future__ import annotations

import bisect
import enum
import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..errors import ConfigurationError
from ..utils.rng import derive_rng

__all__ = ["Behavior", "FaultPlan", "TimelineFaultPlan"]


class Behavior(enum.Enum):
    """How a node deviates from the protocol."""

    HONEST = "honest"
    CRASH = "crash"  # never sends anything
    DROP_RELAY = "drop-relay"  # receives but never forwards (censorship)
    FRONT_RUN = "front-run"  # forwards, but injects adversarial transactions
    EQUIVOCATE = "equivocate"  # sends conflicting protocol messages


@dataclass
class FaultPlan:
    """Assignment of behaviours to node ids (everyone else is honest)."""

    behaviors: dict[int, Behavior] = field(default_factory=dict)

    @classmethod
    def honest(cls) -> "FaultPlan":
        return cls()

    @classmethod
    def random_fraction(
        cls,
        node_ids: Sequence[int],
        fraction: float,
        behavior: Behavior,
        seed: int = 0,
        protected: Iterable[int] = (),
    ) -> "FaultPlan":
        """Mark a random *fraction* of *node_ids* with *behavior*.

        Nodes in *protected* (e.g. the designated sender or the block
        proposer) are never corrupted.  The Byzantine count is capped at
        ``floor(n/3)`` to respect the global fault bound of §IV.
        """

        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
        eligible = [n for n in node_ids if n not in set(protected)]
        target = int(round(fraction * len(node_ids)))
        cap = len(node_ids) // 3
        count = min(target, cap, len(eligible))
        rng = derive_rng(seed, "fault-plan", behavior.value)
        chosen = rng.sample(eligible, count) if count else []
        return cls(behaviors={n: behavior for n in chosen})

    def behavior_of(self, node_id: int) -> Behavior:
        return self.behaviors.get(node_id, Behavior.HONEST)

    def behavior_at(self, node_id: int, time_ms: float) -> Behavior:
        """Behavior of *node_id* at simulation time *time_ms*.

        A static plan never changes its mind; time-varying subclasses
        (:class:`TimelineFaultPlan`) override this.
        """

        return self.behavior_of(node_id)

    def is_byzantine(self, node_id: int) -> bool:
        return self.behavior_of(node_id) is not Behavior.HONEST

    def ever_byzantine(self, node_id: int) -> bool:
        """True when *node_id* deviates at any point of the run."""

        return self.is_byzantine(node_id)

    def byzantine_nodes(self) -> list[int]:
        return sorted(self.behaviors)

    def honest_nodes(self, node_ids: Iterable[int]) -> list[int]:
        """Nodes that are honest for the *whole* run (never corrupted)."""

        return sorted(n for n in node_ids if not self.ever_byzantine(n))

    def count(self) -> int:
        return len(self.behaviors)


@dataclass
class TimelineFaultPlan(FaultPlan):
    """A fault plan whose behavior assignments change over simulation time.

    ``behaviors`` (inherited) holds the *initial* assignment — what protocols
    see when they construct their nodes — and ``transitions`` records every
    scheduled flip as ``node -> [(time_ms, Behavior), ...]`` sorted by time.
    The chaos controller appends a transition whenever it compiles a behavior
    flip onto the simulator, so the plan is a faithful written record of what
    the adversary did and when — exactly what the invariant monitors audit
    against.
    """

    transitions: dict[int, list[tuple[float, Behavior]]] = field(
        default_factory=dict
    )

    @classmethod
    def from_plan(cls, plan: FaultPlan) -> "TimelineFaultPlan":
        """Wrap a static plan as the t = 0 state of a timeline."""

        return cls(behaviors=dict(plan.behaviors))

    def record_flip(self, node_id: int, time_ms: float, behavior: Behavior) -> None:
        """Append a behavior transition (times must be non-decreasing)."""

        history = self.transitions.setdefault(node_id, [])
        if history and time_ms < history[-1][0]:
            raise ConfigurationError(
                f"transition at {time_ms}ms precedes recorded {history[-1][0]}ms"
            )
        history.append((time_ms, behavior))

    def behavior_at(self, node_id: int, time_ms: float) -> Behavior:
        """The behavior in force at *time_ms* (last transition wins)."""

        history = self.transitions.get(node_id)
        if not history:
            return self.behavior_of(node_id)
        index = bisect.bisect_right([t for t, _ in history], time_ms)
        if index == 0:
            return self.behavior_of(node_id)
        return history[index - 1][1]

    def ever_byzantine(self, node_id: int) -> bool:
        if self.is_byzantine(node_id):
            return True
        return any(
            behavior is not Behavior.HONEST
            for _, behavior in self.transitions.get(node_id, ())
        )

    def deviant_nodes(self) -> list[int]:
        """Every node that misbehaves at some point of the timeline."""

        candidates = set(self.behaviors) | set(self.transitions)
        return sorted(n for n in candidates if self.ever_byzantine(n))

    def byzantine_at(self, node_ids: Iterable[int], time_ms: float) -> list[int]:
        """Nodes whose behavior at *time_ms* is not honest."""

        return sorted(
            n
            for n in node_ids
            if self.behavior_at(n, time_ms) is not Behavior.HONEST
        )
