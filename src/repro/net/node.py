"""The network layer binding nodes, links, latency, loss and accounting.

Two connectivity views coexist, matching the paper's setup:

* the *physical graph* (``PhysicalNetwork``) with labeled links — overlay
  construction runs on this;
* the *transport*, which lets any node message any other (the internet under
  a P2P system).  Pairs joined by a physical link use the link's base latency;
  other pairs get a per-pair latency drawn once from the regional model and
  cached, so repeated sends see a stable RTT like a real TCP path would.

Protocols implement :class:`ProtocolNode` and interact with the world only
through it: ``send``, ``schedule`` and the ``on_start``/``on_message`` hooks.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Iterable

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> net.stats)
    from ..chaos.disruption import LinkDisruptor
    from ..load.capacity import CapacityModel
    from ..obs import Observability
from ..utils.rng import derive_rng
from .channel import JitterStream, LossModel
from .events import ENVELOPE_OVERHEAD_BYTES, Message
from .simulator import Simulator
from .stats import NetworkStats
from .topology import PhysicalNetwork

__all__ = ["Network", "ProtocolNode"]


class Network:
    """Routes messages between registered protocol nodes."""

    def __init__(
        self,
        simulator: Simulator,
        physical: PhysicalNetwork,
        loss_model: LossModel | None = None,
        processing_delay_ms: float = 0.05,
        service_time_ms: float = 0.0,
        seed: int = 0,
        obs: "Observability | None" = None,
    ) -> None:
        self.simulator = simulator
        # Observability is strictly read-only: it never draws randomness or
        # schedules events, so obs-on and obs-off runs replay identically.
        self.obs = obs
        if obs is not None:
            obs.attach(simulator)
        self.physical = physical
        self.loss_model = loss_model if loss_model is not None else LossModel()
        self.processing_delay_ms = processing_delay_ms
        # When positive, each node handles messages sequentially, one every
        # service_time_ms — this makes targeted overload attacks (flooding a
        # node to delay its relaying) observable in the simulation.
        self.service_time_ms = service_time_ms
        self._busy_until: dict[int, float] = {}
        self.stats = NetworkStats()
        self.seed = seed
        self._nodes: dict[int, "ProtocolNode"] = {}
        self._rng = derive_rng(seed, "network")
        # Batched view of the jitter stream (byte-identical to per-send scalar
        # draws, see JitterStream) and a per-pair base-latency cache keyed by
        # PhysicalNetwork.version so topology churn invalidates it.
        self._jitter = JitterStream(self._rng)
        self._latency_cache: dict[tuple[int, int], float] = {}
        self._latency_version = physical.version
        # Chaos hooks (repro.chaos): an optional link disruptor consulted per
        # transmission (partitions, latency spikes, loss windows) and an
        # optional send listener used by the invariant monitors to witness
        # forwarding *before* loss is sampled.  Both default to None and cost
        # nothing when absent.
        self.disruptor: "LinkDisruptor | None" = None
        # Load hook (repro.load): an optional per-node capacity model giving
        # links finite rates and bounded egress queues.  None (the default)
        # keeps the infinite-capacity transport, byte-identical to before the
        # hook existed; the model itself draws no randomness, so enabled runs
        # replay deterministically too.
        self.capacity: "CapacityModel | None" = None
        # Sharding hook (repro.sharding): which shard this network belongs to.
        # Purely descriptive — per-shard capacity/stats books key on it; None
        # (the default) means an unsharded deployment.
        self.shard_id: int | None = None
        self.on_send: Callable[[int, int, Message, float], None] | None = None
        # Fires at delivery time, just before the receiver processes the
        # message — i.e. only for transmissions that survived loss and
        # disruption.  on_send witnesses intent; on_receive witnesses arrival.
        self.on_receive: Callable[[int, int, Message, float], None] | None = None

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------

    def register(self, node: "ProtocolNode") -> None:
        if node.node_id in self._nodes:
            raise SimulationError(f"node {node.node_id} registered twice")
        self._nodes[node.node_id] = node

    def node(self, node_id: int) -> "ProtocolNode":
        try:
            return self._nodes[node_id]
        except KeyError:
            raise SimulationError(f"unknown node {node_id}") from None

    def node_ids(self) -> list[int]:
        return sorted(self._nodes)

    def start_all(self) -> None:
        """Invoke ``on_start`` on every registered node at time zero."""

        for node_id in self.node_ids():
            node = self._nodes[node_id]
            self.simulator.schedule(0.0, node.on_start)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def base_latency(self, src: int, dst: int) -> float:
        """Stable one-way latency between *src* and *dst* in milliseconds.

        Delegates to :meth:`PhysicalNetwork.transport_latency` so overlay
        optimization and actual message delays use identical numbers.  Nodes
        outside the physical membership (e.g. external attack traffic
        generators) fall back to the inter-regional mean.
        """

        try:
            return self.physical.transport_latency(src, dst)
        except KeyError:
            return self.physical.latency_model.parameters.inter_mean

    def send(self, src: int, dst: int, message: Message) -> None:
        """Deliver *message* from *src* to *dst* after link latency + jitter.

        Loss is sampled per transmission; dropped messages are only counted in
        the drop statistic (the sender still paid the bytes).
        """

        receiver = self._nodes.get(dst)
        if receiver is None:
            raise SimulationError(f"send to unknown node {dst}")
        # Message.wire_size() and NetworkStats.record_send(), inlined: this
        # method runs once per transmission and the two call frames were
        # measurable at paper scale.  Keep in sync with both definitions.
        wire = message.size_bytes + ENVELOPE_OVERHEAD_BYTES
        simulator = self.simulator
        now = simulator.now
        if self.on_send is not None:
            self.on_send(src, dst, message, now)
        stats = self.stats
        stats.bytes_sent[src] += wire
        stats.messages_sent[src] += 1
        stats.bytes_received[dst] += wire
        stats.messages_received[dst] += 1
        obs = self.obs
        if obs is not None:
            obs.metrics.counter("net.messages.sent", kind=message.kind).inc()
            obs.metrics.counter("net.bytes.sent", kind=message.kind).inc(wire)
        # Egress capacity runs before the wire: an overflowing uplink queue
        # drops the message at the sender, before loss or disruption can act.
        capacity = self.capacity
        egress = None
        if capacity is not None:
            egress = capacity.admit_egress(src, wire, now)
            if egress.dropped:
                self.stats.record_capacity_drop(src, wire)
                if obs is not None:
                    obs.metrics.counter(
                        "net.messages.capacity_dropped", kind=message.kind
                    ).inc()
                    obs.event(
                        "net.capacity_drop",
                        src=src,
                        dst=dst,
                        kind=message.kind,
                        bytes=wire,
                        tx_id=message.tx_id,
                    )
                return
        latency_factor = 1.0
        if self.disruptor is not None:
            verdict = self.disruptor.apply(src, dst, now)
            if verdict.dropped:
                self.stats.record_drop(wire)
                if obs is not None:
                    obs.metrics.counter(
                        "net.messages.disrupted", kind=message.kind
                    ).inc()
                return
            latency_factor = verdict.latency_factor
        loss_model = self.loss_model
        if loss_model.loss_probability > 0 and loss_model.drops(self._rng):
            self.stats.record_drop(wire)
            if obs is not None:
                obs.metrics.counter("net.messages.dropped", kind=message.kind).inc()
                obs.event(
                    "net.drop",
                    src=src,
                    dst=dst,
                    kind=message.kind,
                    bytes=wire,
                    tx_id=message.tx_id,
                )
            return
        if self._latency_version != self.physical.version:
            self._latency_cache.clear()
            self._latency_version = self.physical.version
        base = self._latency_cache.get((src, dst))
        if base is None:
            base = self.base_latency(src, dst)
            self._latency_cache[(src, dst)] = base
        link_ms = base * latency_factor * self._jitter.factor(loss_model)
        delay = link_ms + self.processing_delay_ms
        queue_ms = 0.0
        if capacity is not None and egress is not None:
            # Serialization: propagation starts when the last byte leaves the
            # uplink, and delivery completes once the receiver's downlink has
            # drained the message.
            finish = capacity.ingress_finish(dst, wire, egress.finish_ms + delay)
            delay = finish - now
            queue_ms += egress.queued_ms
            if obs is not None:
                obs.metrics.histogram("net.capacity.queue_ms").observe(
                    egress.queued_ms
                )
        if self.service_time_ms > 0:
            arrival = now + delay
            start = max(arrival, self._busy_until.get(dst, 0.0))
            finish = start + self.service_time_ms
            self._busy_until[dst] = finish
            delay = finish - now
            queue_ms += start - arrival
            if obs is not None:
                obs.metrics.histogram("net.service.queue_ms").observe(start - arrival)
        if obs is not None:
            # One record per scheduled transmission, decomposing its delay so
            # the offline critical-path analysis can attribute every hop:
            #   delay = queue + serialization + link + proc      (exactly)
            # Serialization is the residual — with the capacity model off and
            # service_time zero it is 0.0 by construction, so the identity
            # holds in every configuration.
            obs.event(
                "net.send",
                src=src,
                dst=dst,
                kind=message.kind,
                bytes=wire,
                msg_id=message.msg_id,
                tx_id=message.tx_id,
                overlay_id=message.overlay_id,
                queue_ms=queue_ms,
                serialization_ms=delay - queue_ms - link_ms - self.processing_delay_ms,
                link_ms=link_ms,
                proc_ms=self.processing_delay_ms,
                delay_ms=delay,
                deliver_ms=now + delay,
            )
        if self.on_receive is None:
            # Flyweight scheduling: no closure allocation on the hot path.
            simulator.schedule_call(delay, receiver.receive, src, message)
        else:

            def deliver() -> None:
                if self.on_receive is not None:
                    self.on_receive(src, dst, message, self.simulator.now)
                receiver.receive(src, message)

            simulator.schedule(delay, deliver)

    def multicast(self, src: int, dsts: Iterable[int], message: Message) -> None:
        """Send *message* to every destination (self is skipped)."""

        for dst in dsts:
            if dst != src:
                self.send(src, dst, message)


class ProtocolNode:
    """Base class for all protocol actors in the simulation.

    Subclasses override :meth:`on_start` and :meth:`on_message`; Byzantine
    variants typically override :meth:`receive` or individual handlers.
    """

    def __init__(self, node_id: int, network: Network) -> None:
        self.node_id = node_id
        self.network = network
        self.rng: random.Random = derive_rng(network.seed, "node", node_id)
        network.register(self)

    # -- conveniences ---------------------------------------------------

    @property
    def now(self) -> float:
        return self.network.simulator.now

    def send(self, dst: int, message: Message) -> None:
        self.network.send(self.node_id, dst, message)

    def multicast(self, dsts: Iterable[int], message: Message) -> None:
        self.network.multicast(self.node_id, dsts, message)

    def schedule(self, delay_ms: float, callback: Callable[[], None]) -> None:
        self.network.simulator.schedule(delay_ms, callback)

    # -- hooks ----------------------------------------------------------

    def on_start(self) -> None:
        """Called once when the simulation starts."""

    def receive(self, sender: int, message: Message) -> None:
        """Transport-level entry point; dispatches to :meth:`on_message`."""

        self.on_message(sender, message)

    def on_message(self, sender: int, message: Message) -> None:
        """Handle a delivered message.  Subclasses must override."""

        raise NotImplementedError
