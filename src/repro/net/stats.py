"""Measurement: bandwidth accounting and latency statistics.

Every send is charged to both endpoints (bytes out / bytes in), and protocols
record delivery times per disseminated item so the experiment harness can
compute the paper's metrics: average latency, 5th–95th percentile spread
(Fig. 3a), per-node bandwidth in KB/min (Fig. 3b), and delivery probability
(Fig. 5b).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .sketch import QuantileSketch, WindowedCounter, WindowedQuantiles

__all__ = [
    "NetworkStats",
    "StreamingNetworkStats",
    "LatencySummary",
    "percentile",
    "summarize_latencies",
]


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile (matching ``numpy.percentile`` default).

    >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.5
    """

    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    interpolated = ordered[low] * (1 - weight) + ordered[high] * weight
    # Clamp 1-ulp float drift so the result always lies within the sample.
    return min(max(interpolated, ordered[low]), ordered[high])


@dataclass(frozen=True, slots=True)
class LatencySummary:
    """Average and percentile spread of a latency population.

    An *empty* summary (``count == 0``, NaN statistics) represents a run that
    recorded no deliveries — e.g. every transmission was lost, or the horizon
    expired before the first delivery.  Check :attr:`is_empty` before
    comparing statistics; NaN propagates through arithmetic and formats as
    ``nan`` in tables rather than raising mid-experiment.
    """

    count: int
    mean: float
    p5: float
    p50: float
    p95: float

    @classmethod
    def empty(cls) -> "LatencySummary":
        """The summary of zero observations (all statistics NaN).

        >>> LatencySummary.empty().is_empty
        True
        """

        nan = float("nan")
        return cls(count=0, mean=nan, p5=nan, p50=nan, p95=nan)

    @property
    def is_empty(self) -> bool:
        return self.count == 0

    @property
    def spread(self) -> float:
        """The 5th–95th percentile range the paper plots as variability."""

        return self.p95 - self.p5


def summarize_latencies(values: Sequence[float]) -> LatencySummary:
    """Compute the Fig. 3a summary statistics for *values*.

    Unlike :func:`percentile`, an empty population is not an error here: it
    returns :meth:`LatencySummary.empty`, so experiment code that summarizes
    a run with zero recorded deliveries degrades to NaN cells instead of
    crashing after minutes of simulation.
    """

    if not values:
        return LatencySummary.empty()
    return LatencySummary(
        count=len(values),
        mean=sum(values) / len(values),
        p5=percentile(values, 5),
        p50=percentile(values, 50),
        p95=percentile(values, 95),
    )


@dataclass
class NetworkStats:
    """Mutable counters filled in by the network layer and protocols."""

    bytes_sent: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    bytes_received: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    messages_sent: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    messages_received: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    messages_dropped: int = 0
    # Wire bytes of every dropped transmission (loss, disruption or capacity
    # overflow) — what separates offered bytes from goodput.
    bytes_dropped: int = 0
    # Capacity-induced egress-queue overflows, kept distinct from stochastic
    # loss so saturation reports can attribute drops to the right cause.
    capacity_drops: int = 0
    capacity_dropped_bytes: int = 0
    capacity_drops_by_node: dict[int, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    # item id -> node id -> first delivery time (ms)
    deliveries: dict[object, dict[int, float]] = field(
        default_factory=lambda: defaultdict(dict)
    )
    # item id -> first transmission time of the item payload (ms)
    send_times: dict[object, float] = field(default_factory=dict)
    # item id -> time the application handed the item to the protocol (ms);
    # for HERMES this precedes send_times by the TRS acquisition delay.
    submit_times: dict[object, float] = field(default_factory=dict)

    def record_send(self, sender: int, receiver: int, wire_bytes: int) -> None:
        self.bytes_sent[sender] += wire_bytes
        self.messages_sent[sender] += 1
        self.bytes_received[receiver] += wire_bytes
        self.messages_received[receiver] += 1

    def record_drop(self, wire_bytes: int = 0) -> None:
        self.messages_dropped += 1
        self.bytes_dropped += wire_bytes

    def record_capacity_drop(self, sender: int, wire_bytes: int) -> None:
        """One egress-queue overflow at *sender* (also counted as a drop)."""

        self.record_drop(wire_bytes)
        self.capacity_drops += 1
        self.capacity_dropped_bytes += wire_bytes
        self.capacity_drops_by_node[sender] += 1

    def record_submission(self, item: object, time_ms: float) -> None:
        """Mark the moment the application submitted *item* to the protocol."""

        self.submit_times.setdefault(item, time_ms)

    def record_dissemination_start(self, item: object, time_ms: float) -> None:
        """Mark the moment *item* (e.g. a transaction id) entered the network.

        This is the paper's latency reference point: the first transmission of
        the item payload itself (for HERMES, after TRS acquisition — the TRS
        request carries only ``H(m)``, not the transaction).
        """

        self.send_times.setdefault(item, time_ms)
        self.submit_times.setdefault(item, time_ms)

    def record_delivery(self, item: object, node: int, time_ms: float) -> None:
        """Record the first delivery of *item* at *node* (later ones ignored)."""

        self.deliveries[item].setdefault(node, time_ms)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    def delivery_latencies(self, item: object) -> list[float]:
        """Per-node latency (delivery − send time) for *item*."""

        if item not in self.send_times:
            raise KeyError(f"item {item!r} was never sent")
        start = self.send_times[item]
        # The origin delivers to itself at submission, which may precede the
        # first transmission (HERMES acquires its TRS in between): clamp to 0.
        return [max(0.0, t - start) for t in self.deliveries.get(item, {}).values()]

    def all_delivery_latencies(self) -> list[float]:
        """Latencies across all items and receiving nodes."""

        out: list[float] = []
        for item in self.send_times:
            out.extend(self.delivery_latencies(item))
        return out

    def latency_summary(self) -> LatencySummary:
        return summarize_latencies(self.all_delivery_latencies())

    def setup_overheads(self) -> list[float]:
        """Per-item delay between submission and first payload transmission
        (for HERMES: the TRS acquisition time; zero for the baselines)."""

        return [
            self.send_times[item] - submit
            for item, submit in self.submit_times.items()
            if item in self.send_times
        ]

    def coverage(self, item: object, audience: Iterable[int]) -> float:
        """Fraction of *audience* that received *item* (Fig. 5b robustness)."""

        targets = set(audience)
        if not targets:
            raise ValueError("audience must be non-empty")
        reached = targets & set(self.deliveries.get(item, {}))
        return len(reached) / len(targets)

    def total_bytes(self) -> int:
        return sum(self.bytes_sent.values())

    def bandwidth_kb_per_minute(
        self, duration_ms: float, nodes: Iterable[int] | None = None
    ) -> float:
        """Average per-node bandwidth (sent) in KB/min over *duration_ms*.

        This is the Fig. 3b metric: protocol overhead normalized per node per
        minute of simulated time.
        """

        if duration_ms <= 0:
            raise ValueError(f"duration must be positive, got {duration_ms}")
        if nodes is None:
            population: Mapping[int, int] = self.bytes_sent
            node_count = len(population) or 1
            total = sum(population.values())
        else:
            node_list = list(nodes)
            node_count = len(node_list) or 1
            total = sum(self.bytes_sent.get(n, 0) for n in node_list)
        minutes = duration_ms / 60_000.0
        return (total / 1024.0) / (node_count * minutes)

    def load_per_node(self) -> dict[int, int]:
        """Messages forwarded per node — the Fig. 2 load metric."""

        return dict(self.messages_sent)

    def drop_rate(self) -> float:
        """Fraction of attempted transmissions that were dropped (any cause).

        Zero when nothing was sent; capacity overflows, stochastic loss and
        chaos disruption all count — use :attr:`capacity_drops` to attribute.
        """

        attempted = sum(self.messages_sent.values())
        if attempted == 0:
            return 0.0
        return self.messages_dropped / attempted

    def goodput_kb_per_minute(self, duration_ms: float) -> float:
        """Per-node *delivered* bandwidth in KB/min over *duration_ms*.

        The capacity-aware counterpart of :meth:`bandwidth_kb_per_minute`:
        wire bytes of dropped transmissions are subtracted, so under an
        egress-queue overload goodput plateaus while offered bandwidth keeps
        climbing.  Without drops the two accessors agree exactly.
        """

        if duration_ms <= 0:
            raise ValueError(f"duration must be positive, got {duration_ms}")
        node_count = len(self.bytes_sent) or 1
        delivered = self.total_bytes() - self.bytes_dropped
        minutes = duration_ms / 60_000.0
        return (delivered / 1024.0) / (node_count * minutes)


class _Inflight:
    """Per-transaction bookkeeping while deliveries are still arriving.

    ``times`` buffers raw delivery timestamps until the item crosses the
    delivery threshold (or its dissemination start is known); after the flush
    it is ``None`` and further deliveries stream straight into the sketches.
    """

    __slots__ = ("created", "send_time", "nodes", "times")

    def __init__(self, created: float) -> None:
        self.created = created
        self.send_time: float | None = None
        self.nodes: set[int] = set()
        self.times: list[float] | None = []


class StreamingNetworkStats(NetworkStats):
    """Drop-in :class:`NetworkStats` that folds latencies into sketches.

    The exact implementation keeps ``deliveries[item][node]`` — O(tx × N)
    memory that caps a run around 10⁴ transactions.  This subclass keeps the
    same byte/message counters (O(nodes)) but replaces the per-transaction
    delivery maps with:

    * one :class:`~repro.net.sketch.QuantileSketch` over the latency
      population (same population the load driver would build: every per-node
      latency of every item that reached ``delivery_fraction`` of nodes,
      clamped at 0) — so streaming and exact runs differ only by the sketch's
      documented :meth:`~repro.net.sketch.QuantileSketch.rank_error`;
    * a :class:`~repro.net.sketch.WindowedQuantiles` trajectory of the same
      latencies for tail-over-time reporting;
    * an in-flight table holding only items whose deliveries are still
      arriving — O(active transactions × nodes), independent of run length,
      provided the caller :meth:`expire`\\ s stragglers periodically.

    Recording is observation-only: installing this on ``network.stats`` draws
    no randomness and schedules no events, so the simulation trajectory is
    byte-identical to an exact-stats run of the same seed.
    """

    def __init__(
        self,
        node_count: int,
        *,
        delivery_fraction: float = 0.99,
        sketch_capacity: int = 512,
        window_ms: float = 60_000.0,
    ) -> None:
        super().__init__()
        if node_count < 1:
            raise ValueError(f"node_count must be >= 1, got {node_count}")
        if not 0.0 < delivery_fraction <= 1.0:
            raise ValueError(
                f"delivery_fraction must be in (0, 1], got {delivery_fraction}"
            )
        self.node_count = node_count
        self.delivery_fraction = delivery_fraction
        self.delivery_threshold = math.ceil(delivery_fraction * node_count)
        self.latency_sketch = QuantileSketch(sketch_capacity)
        self.latency_windows = WindowedQuantiles(window_ms, capacity=128)
        self.delivery_counter = WindowedCounter(window_ms)
        self._inflight: dict[object, _Inflight] = {}
        self.submitted = 0
        self.sent = 0
        self.delivered_items = 0
        self.expired_items = 0

    # -- recording (same call sites as the exact implementation) ----------

    def _entry(self, item: object, now: float) -> _Inflight:
        entry = self._inflight.get(item)
        if entry is None:
            entry = self._inflight[item] = _Inflight(now)
        return entry

    def record_submission(self, item: object, time_ms: float) -> None:
        if item not in self._inflight:
            self.submitted += 1
        self._entry(item, time_ms)

    def record_dissemination_start(self, item: object, time_ms: float) -> None:
        entry = self._entry(item, time_ms)
        if entry.send_time is None:
            entry.send_time = time_ms
            self.sent += 1
            self._maybe_flush(item, entry)

    def record_delivery(self, item: object, node: int, time_ms: float) -> None:
        entry = self._entry(item, time_ms)
        if node in entry.nodes:
            return
        entry.nodes.add(node)
        if entry.times is None:
            self._observe(entry, time_ms)
        else:
            entry.times.append(time_ms)
            self._maybe_flush(item, entry)
        if len(entry.nodes) >= self.node_count and entry.times is None:
            self._inflight.pop(item, None)

    def _maybe_flush(self, item: object, entry: _Inflight) -> None:
        """Promote *item* to delivered once threshold and send time are known."""

        if entry.times is None or entry.send_time is None:
            return
        if len(entry.nodes) < self.delivery_threshold:
            return
        for t in entry.times:
            self._observe(entry, t)
        entry.times = None
        self.delivered_items += 1
        self.delivery_counter.add(entry.send_time)
        if len(entry.nodes) >= self.node_count:
            self._inflight.pop(item, None)

    def _observe(self, entry: _Inflight, delivery_ms: float) -> None:
        # Same clamp as NetworkStats.delivery_latencies: the origin delivers
        # to itself at submission, which may precede the first transmission.
        latency = max(0.0, delivery_ms - (entry.send_time or 0.0))
        self.latency_sketch.observe(latency)
        self.latency_windows.observe(delivery_ms, latency)

    def expire(self, now_ms: float, ttl_ms: float) -> int:
        """Evict in-flight items older than *ttl_ms* that never crossed the
        delivery threshold, returning how many were dropped.

        Exact stats keep such stragglers forever (they simply never count as
        delivered); streaming stats must shed them or the in-flight table
        grows with every lost transaction.  Call this on a telemetry cadence.
        """

        cutoff = now_ms - ttl_ms
        stale = [
            item
            for item, entry in self._inflight.items()
            if entry.created <= cutoff and entry.times is not None
        ]
        for item in stale:
            del self._inflight[item]
        self.expired_items += len(stale)
        return len(stale)

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    # -- derived metrics ---------------------------------------------------

    def delivery_latencies(self, item: object) -> list[float]:
        raise NotImplementedError(
            "StreamingNetworkStats does not retain per-item deliveries; "
            "use latency_sketch / latency_summary()"
        )

    def all_delivery_latencies(self) -> list[float]:
        raise NotImplementedError(
            "StreamingNetworkStats does not retain per-item deliveries; "
            "use latency_sketch / latency_summary()"
        )

    def setup_overheads(self) -> list[float]:
        raise NotImplementedError(
            "StreamingNetworkStats does not retain per-item submit times"
        )

    def coverage(self, item: object, audience: Iterable[int]) -> float:
        raise NotImplementedError(
            "StreamingNetworkStats does not retain per-item deliveries"
        )

    def latency_summary(self) -> LatencySummary:
        sketch = self.latency_sketch
        if not sketch.count:
            return LatencySummary.empty()
        return LatencySummary(
            count=sketch.count,
            mean=sketch.mean,
            p5=sketch.percentile(5),
            p50=sketch.percentile(50),
            p95=sketch.percentile(95),
        )

    def percentile_ms(self, pct: float) -> float | None:
        """Sketch percentile of the delivered-latency population (None if
        nothing was delivered)."""

        if not self.latency_sketch.count:
            return None
        return self.latency_sketch.percentile(pct)
