"""The discrete-event scheduler at the heart of every experiment.

Design notes
------------
* Events are ``(time, sequence, callback)`` triples on a binary heap.  The
  monotonically increasing sequence number breaks time ties deterministically,
  so two runs with the same seed replay identically — a hard requirement for
  reproducible experiments and for debugging Byzantine scenarios.
* Callbacks are plain callables; protocol nodes capture whatever state they
  need via closures or bound methods.  The simulator itself knows nothing
  about networking.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from ..errors import SimulationError

__all__ = ["Simulator"]


class Simulator:
    """A single-threaded discrete-event simulator with millisecond time."""

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""

        return self._now

    def schedule(self, delay_ms: float, callback: Callable[[], None]) -> None:
        """Run *callback* ``delay_ms`` milliseconds from now.

        Negative delays are rejected: the past is immutable in a DES.
        """

        if delay_ms < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay_ms})")
        heapq.heappush(self._queue, (self._now + delay_ms, next(self._sequence), callback))

    def schedule_at(self, time_ms: float, callback: Callable[[], None]) -> None:
        """Run *callback* at absolute simulation time *time_ms*."""

        self.schedule(time_ms - self._now, callback)

    def run(self, until_ms: float | None = None, max_events: int | None = None) -> float:
        """Process events until the queue empties, *until_ms* passes, or
        *max_events* have run.  Returns the final simulation time."""

        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        processed = 0
        try:
            while self._queue:
                time, _seq, callback = self._queue[0]
                if until_ms is not None and time > until_ms:
                    self._now = until_ms
                    break
                heapq.heappop(self._queue)
                self._now = time
                callback()
                processed += 1
                self.events_processed += 1
                if max_events is not None and processed >= max_events:
                    break
            else:
                if until_ms is not None:
                    self._now = max(self._now, until_ms)
        finally:
            self._running = False
        return self._now

    def pending_events(self) -> int:
        """Number of not-yet-processed events."""

        return len(self._queue)

    def clear(self) -> None:
        """Drop all pending events (used between experiment repetitions)."""

        self._queue.clear()
