"""The discrete-event scheduler at the heart of every experiment.

Design notes
------------
* Events are ``(time, sequence, callback)`` triples on a binary heap.  The
  monotonically increasing sequence number breaks time ties deterministically,
  so two runs with the same seed replay identically — a hard requirement for
  reproducible experiments and for debugging Byzantine scenarios.
* Callbacks are plain callables; protocol nodes capture whatever state they
  need via closures or bound methods.  The simulator itself knows nothing
  about networking.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Callable

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> net.stats)
    from ..obs.profiler import SimulatorProfile, SimulatorProfiler

__all__ = ["Simulator"]


class Simulator:
    """A single-threaded discrete-event simulator with millisecond time."""

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._running = False
        self.events_processed = 0
        self._profiler: "SimulatorProfiler | None" = None

    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""

        return self._now

    # -- profiling hooks (see repro.obs.profiler) ----------------------

    def set_profiler(self, profiler: "SimulatorProfiler | None") -> None:
        """Install (or remove, with ``None``) a wall-clock profiler.

        The profiler only observes — it cannot reorder or delay events — so
        a seeded run replays identically with profiling on or off.
        """

        if self._running:
            raise SimulationError("cannot change the profiler mid-run")
        self._profiler = profiler

    @property
    def profiler(self) -> "SimulatorProfiler | None":
        return self._profiler

    def profile(self) -> "SimulatorProfile | None":
        """Snapshot of the attached profiler, or None when not profiling."""

        return self._profiler.snapshot() if self._profiler is not None else None

    def schedule(self, delay_ms: float, callback: Callable[[], None]) -> None:
        """Run *callback* ``delay_ms`` milliseconds from now.

        Negative delays are rejected: the past is immutable in a DES.
        """

        if delay_ms < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay_ms})")
        heapq.heappush(self._queue, (self._now + delay_ms, next(self._sequence), callback))

    def schedule_at(self, time_ms: float, callback: Callable[[], None]) -> None:
        """Run *callback* at absolute simulation time *time_ms*."""

        self.schedule(time_ms - self._now, callback)

    def run(self, until_ms: float | None = None, max_events: int | None = None) -> float:
        """Process events until the queue empties, *until_ms* passes, or
        *max_events* have run.  Returns the final simulation time."""

        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        processed = 0
        profiler = self._profiler
        try:
            while self._queue:
                time, _seq, callback = self._queue[0]
                if until_ms is not None and time > until_ms:
                    self._now = until_ms
                    break
                heapq.heappop(self._queue)
                self._now = time
                if profiler is None:
                    callback()
                else:
                    start = profiler.clock()
                    callback()
                    profiler.record(callback, profiler.clock() - start)
                processed += 1
                self.events_processed += 1
                if profiler is not None:
                    profiler.after_event(
                        self._now, len(self._queue), self.events_processed
                    )
                if max_events is not None and processed >= max_events:
                    break
            else:
                if until_ms is not None:
                    self._now = max(self._now, until_ms)
        finally:
            self._running = False
        return self._now

    def pending_events(self) -> int:
        """Number of not-yet-processed events."""

        return len(self._queue)

    def clear(self) -> None:
        """Drop all pending events (used between experiment repetitions)."""

        self._queue.clear()

    def reset(self) -> None:
        """Return the simulator to its just-constructed state.

        Drops pending events AND rewinds the clock, the event counter and the
        tie-breaking sequence, so the next repetition starts at ``t = 0`` with
        deterministic ordering — unlike :meth:`clear`, which keeps the clock
        where the previous run left it.  An attached profiler stays attached
        but its accumulated state is wiped, so back-to-back repetitions (e.g.
        chaos campaigns) never leak wall-time attribution or queue samples
        from one repetition into the next.  Rejected mid-run: callbacks must
        not reset the machine that is executing them.
        """

        if self._running:
            raise SimulationError("cannot reset a running simulator")
        self._queue.clear()
        self._now = 0.0
        self._sequence = itertools.count()
        self.events_processed = 0
        if self._profiler is not None:
            self._profiler.clear()
