"""The discrete-event scheduler at the heart of every experiment.

Design notes
------------
* Events are flyweight ``(time, sequence, fn, args)`` tuples — no per-event
  objects, no closures required.  The monotonically increasing sequence
  number breaks time ties deterministically, so two runs with the same seed
  replay identically — a hard requirement for reproducible experiments and
  for debugging Byzantine scenarios.  Hot callers use
  :meth:`Simulator.schedule_call` to pass the callable and its arguments
  separately, avoiding a lambda allocation per event.
* Two interchangeable scheduler backends produce the **same total order**
  (proved by the monotonicity argument in :class:`_CalendarQueue`): a binary
  heap (C-speed ``heapq``, O(log n) per op) and a calendar queue (amortized
  O(1) per op, wins when hundreds of thousands of events are pending and on
  PyPy where pure-Python buckets JIT well).  ``scheduler="auto"`` (default)
  starts on the heap and migrates to the calendar queue once the pending
  count crosses :data:`AUTO_CALENDAR_THRESHOLD`.
* Callbacks are plain callables; protocol nodes capture whatever state they
  need via closures, bound methods or ``schedule_call`` arguments.  The
  simulator itself knows nothing about networking.
* The run loop is split into a no-profiler fast path and an instrumented
  path, so observability costs exactly nothing when not requested (see
  ``docs/observability.md``).
"""

from __future__ import annotations

import gc
import heapq
import itertools
from typing import TYPE_CHECKING, Callable

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> net.stats)
    from ..obs.profiler import SimulatorProfile, SimulatorProfiler

__all__ = ["Simulator", "AUTO_CALENDAR_THRESHOLD"]

# Pending-event count above which scheduler="auto" migrates from the heap to
# the calendar queue.  Below this the heap's C-speed push/pop wins; above it
# the calendar queue's O(1) operations and better locality take over.
AUTO_CALENDAR_THRESHOLD = 50_000


class _HeapScheduler:
    """A binary heap of event tuples (the classic DES event list)."""

    __slots__ = ("_queue",)

    name = "heap"

    def __init__(self, items: list | None = None) -> None:
        self._queue = items if items is not None else []
        heapq.heapify(self._queue)

    def push(self, item: tuple) -> None:
        heapq.heappush(self._queue, item)

    def peek(self) -> tuple | None:
        queue = self._queue
        return queue[0] if queue else None

    def pop(self) -> tuple:
        return heapq.heappop(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def clear(self) -> None:
        self._queue.clear()

    def items(self) -> list:
        return list(self._queue)


class _CalendarQueue:
    """A calendar-queue event list (R. Brown, CACM 1988).

    Events hash into day buckets by ``day(t) = int(t / width)``; dequeue
    scans forward from the current day and pops the smallest
    ``(time, seq, ...)`` tuple among events of that day.

    Order correctness: ``day(t)`` is monotone non-decreasing in ``t``
    (division by a positive constant and truncation both preserve order), so
    every event in the first non-empty day precedes every event of any later
    day, and the within-day tuple comparison applies the same ``(time, seq)``
    order the heap uses.  The two backends therefore produce byte-identical
    runs — pinned by the golden-hash determinism tests.

    The bucket count and width adapt: a rebuild targets ~1 event/day so
    push, peek and pop all stay O(1) amortized regardless of queue size.
    """

    __slots__ = ("_width", "_nbuckets", "_buckets", "_size", "_day", "_stash")

    name = "calendar"

    _MIN_BUCKETS = 1024
    _MAX_BUCKETS = 1 << 20

    def __init__(self, items: list | None = None) -> None:
        self._size = 0
        self._day = 0
        self._stash: tuple | None = None
        self._rebuild(items or [], self._MIN_BUCKETS, 0.5)

    def _rebuild(self, items: list, nbuckets: int, width: float) -> None:
        self._width = width
        self._nbuckets = nbuckets
        self._buckets: list[list] = [[] for _ in range(nbuckets)]
        self._size = len(items)
        self._stash = None
        if items:
            times = [item[0] for item in items]
            low, high = min(times), max(times)
            # Target ~1 event per day across the pending span.
            span = high - low
            if span > 0.0:
                self._width = max(span / len(items), 1e-9)
            self._day = int(low / self._width)
            width_, nb, buckets = self._width, nbuckets, self._buckets
            for item in items:
                buckets[int(item[0] / width_) % nb].append(item)

    def push(self, item: tuple) -> None:
        self._buckets[int(item[0] / self._width) % self._nbuckets].append(item)
        self._size += 1
        stash = self._stash
        if stash is not None and item < stash:
            self._stash = None
        if self._size > 4 * self._nbuckets and self._nbuckets < self._MAX_BUCKETS:
            self._rebuild(
                self.items(), min(self._nbuckets * 4, self._MAX_BUCKETS), self._width
            )

    def peek(self) -> tuple | None:
        if self._stash is not None:
            return self._stash
        if not self._size:
            return None
        width, nb, buckets = self._width, self._nbuckets, self._buckets
        day = self._day
        for _ in range(nb):
            bucket = buckets[day % nb]
            if bucket:
                best = None
                for item in bucket:
                    if int(item[0] / width) == day and (best is None or item < best):
                        best = item
                if best is not None:
                    self._day = day
                    self._stash = best
                    return best
            day += 1
        # Every pending event is more than a full calendar year ahead:
        # jump straight to the global minimum (rare; O(size)).
        best = None
        for bucket in buckets:
            for item in bucket:
                if best is None or item < best:
                    best = item
        self._day = int(best[0] / width)
        self._stash = best
        return best

    def pop(self) -> tuple:
        item = self.peek()
        if item is None:
            raise IndexError("pop from an empty calendar queue")
        self._buckets[int(item[0] / self._width) % self._nbuckets].remove(item)
        self._size -= 1
        self._stash = None
        if (
            self._size < self._nbuckets // 8
            and self._nbuckets > self._MIN_BUCKETS
        ):
            self._rebuild(
                self.items(), max(self._nbuckets // 4, self._MIN_BUCKETS), self._width
            )
        return item

    def __len__(self) -> int:
        return self._size

    def clear(self) -> None:
        for bucket in self._buckets:
            bucket.clear()
        self._size = 0
        self._day = 0
        self._stash = None

    def items(self) -> list:
        return [item for bucket in self._buckets for item in bucket]


_SCHEDULERS = {"heap": _HeapScheduler, "calendar": _CalendarQueue}


class Simulator:
    """A single-threaded discrete-event simulator with millisecond time.

    ``scheduler`` selects the event-list backend: ``"heap"``, ``"calendar"``,
    or ``"auto"`` (heap that migrates to a calendar queue when the pending
    count crosses :data:`AUTO_CALENDAR_THRESHOLD`).  All backends replay
    byte-identically; see the module docstring.
    """

    def __init__(self, scheduler: str = "auto") -> None:
        if scheduler not in ("auto", "heap", "calendar"):
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; pick auto, heap or calendar"
            )
        # Current simulation time in milliseconds.  A plain attribute, not a
        # property: protocol code reads it several times per event, and the
        # descriptor call was measurable at paper scale.  Treat as read-only.
        self.now: float = 0.0
        self._scheduler_mode = scheduler
        self._sched = _SCHEDULERS["heap" if scheduler == "auto" else scheduler]()
        # Direct reference to the heap's underlying list while the heap is
        # the active backend (None on the calendar queue): schedule_call and
        # the run loop then use C-level heappush/heappop and len() without
        # per-event method dispatch.
        self._heap_list = self._sched._queue if self._sched.name == "heap" else None
        self._sequence = itertools.count()
        self._running = False
        self.events_processed = 0
        self._profiler: "SimulatorProfiler | None" = None

    @property
    def scheduler(self) -> str:
        """The active backend: ``"heap"`` or ``"calendar"``."""

        return self._sched.name

    # -- profiling hooks (see repro.obs.profiler) ----------------------

    def set_profiler(self, profiler: "SimulatorProfiler | None") -> None:
        """Install (or remove, with ``None``) a wall-clock profiler.

        The profiler only observes — it cannot reorder or delay events — so
        a seeded run replays identically with profiling on or off.
        """

        if self._running:
            raise SimulationError("cannot change the profiler mid-run")
        self._profiler = profiler

    @property
    def profiler(self) -> "SimulatorProfiler | None":
        return self._profiler

    def profile(self) -> "SimulatorProfile | None":
        """Snapshot of the attached profiler, or None when not profiling."""

        return self._profiler.snapshot() if self._profiler is not None else None

    def schedule(self, delay_ms: float, callback: Callable[[], None]) -> None:
        """Run *callback* ``delay_ms`` milliseconds from now.

        Negative delays are rejected: the past is immutable in a DES.
        """

        self.schedule_call(delay_ms, callback)

    def schedule_call(self, delay_ms: float, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` ``delay_ms`` milliseconds from now.

        The flyweight form of :meth:`schedule`: hot paths pass the callable
        and its arguments separately instead of allocating a closure per
        event.
        """

        if delay_ms < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay_ms})")
        item = (self.now + delay_ms, next(self._sequence), fn, args)
        queue = self._heap_list
        if queue is not None:
            heapq.heappush(queue, item)
            if (
                len(queue) > AUTO_CALENDAR_THRESHOLD
                and self._scheduler_mode == "auto"
            ):
                self._sched = _CalendarQueue(list(queue))
                self._heap_list = None
        else:
            self._sched.push(item)

    def schedule_at(self, time_ms: float, callback: Callable[[], None]) -> None:
        """Run *callback* at absolute simulation time *time_ms*."""

        self.schedule_call(time_ms - self.now, callback)

    def run(self, until_ms: float | None = None, max_events: int | None = None) -> float:
        """Process events until the queue empties, *until_ms* passes, or
        *max_events* have run.  Returns the final simulation time."""

        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        # The loop allocates one tuple per event and frees it within the same
        # iteration; generation-0 collections triggered by that churn cost
        # ~13% of the run and never find garbage (protocol state is acyclic).
        # Pause the cyclic collector for the duration — refcounting still
        # reclaims everything the loop allocates.
        reenable_gc = gc.isenabled()
        if reenable_gc:
            gc.disable()
        try:
            if self._profiler is None:
                self._run_fast(until_ms, max_events)
            else:
                self._run_profiled(until_ms, max_events)
        finally:
            self._running = False
            if reenable_gc:
                gc.enable()
        return self.now

    def _run_fast(self, until_ms: float | None, max_events: int | None) -> None:
        """The no-profiler hot loop: peek, pop, dispatch — nothing else.

        The heap backend is inlined (direct list indexing + C heappop, no
        method dispatch); infinity sentinels replace the per-event ``None``
        checks.  A callback may migrate the backend to the calendar queue, so
        the heap loop watches ``self._heap_list`` and falls back to the
        generic peek/pop loop after a migration.
        """

        processed = 0
        limit = float("inf") if until_ms is None else until_ms
        budget = float("inf") if max_events is None else max_events
        pop = heapq.heappop
        while True:
            queue = self._heap_list
            if queue is not None:
                while queue:
                    head = queue[0]
                    time = head[0]
                    if time > limit:
                        self.now = until_ms
                        return
                    pop(queue)
                    self.now = time
                    head[2](*head[3])
                    processed += 1
                    self.events_processed += 1
                    if processed >= budget:
                        return
                    if self._heap_list is not queue:
                        break  # migrated to the calendar queue mid-callback
                else:
                    if until_ms is not None:
                        self.now = max(self.now, until_ms)
                    return
                continue
            sched = self._sched
            head = sched.peek()
            if head is None:
                if until_ms is not None:
                    self.now = max(self.now, until_ms)
                return
            time = head[0]
            if time > limit:
                self.now = until_ms
                return
            sched.pop()
            self.now = time
            head[2](*head[3])
            processed += 1
            self.events_processed += 1
            if processed >= budget:
                return

    def _run_profiled(self, until_ms: float | None, max_events: int | None) -> None:
        """The instrumented loop — identical event order, plus attribution."""

        profiler = self._profiler
        processed = 0
        while True:
            sched = self._sched
            head = sched.peek()
            if head is None:
                if until_ms is not None:
                    self.now = max(self.now, until_ms)
                break
            time = head[0]
            if until_ms is not None and time > until_ms:
                self.now = until_ms
                break
            sched.pop()
            self.now = time
            fn = head[2]
            start = profiler.clock()
            fn(*head[3])
            profiler.record(fn, profiler.clock() - start)
            processed += 1
            self.events_processed += 1
            profiler.after_event(self.now, len(self._sched), self.events_processed)
            if max_events is not None and processed >= max_events:
                break

    def pending_events(self) -> int:
        """Number of not-yet-processed events."""

        return len(self._sched)

    def clear(self) -> None:
        """Drop all pending events (used between experiment repetitions)."""

        self._sched.clear()

    def reset(self) -> None:
        """Return the simulator to its just-constructed state.

        Drops pending events AND rewinds the clock, the event counter and the
        tie-breaking sequence, so the next repetition starts at ``t = 0`` with
        deterministic ordering — unlike :meth:`clear`, which keeps the clock
        where the previous run left it.  An attached profiler stays attached
        but its accumulated state is wiped, so back-to-back repetitions (e.g.
        chaos campaigns) never leak wall-time attribution or queue samples
        from one repetition into the next.  Rejected mid-run: callbacks must
        not reset the machine that is executing them.
        """

        if self._running:
            raise SimulationError("cannot reset a running simulator")
        mode = self._scheduler_mode
        self._sched = _SCHEDULERS["heap" if mode == "auto" else mode]()
        self._heap_list = self._sched._queue if self._sched.name == "heap" else None
        self.now = 0.0
        self._sequence = itertools.count()
        self.events_processed = 0
        if self._profiler is not None:
            self._profiler.clear()
