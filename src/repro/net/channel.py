"""Link behaviour: stochastic loss and per-message jitter.

Section III assumes Byzantine *nodes* but stochastically lossy *links*; this
module models the links.  Jitter multiplies the link's base latency by a
lognormal factor close to 1, approximating queueing variation without moving
the mean much.

:class:`JitterStream` is the kernel's batched view of one jitter stream: it
pre-draws standard normals in vectorized blocks (see
:mod:`repro.net.sampling`) and turns them into lognormal factors one send at
a time — byte-identical to calling :meth:`LossModel.jitter_factor` per send.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from math import exp as _exp

from ..utils.validation import require_probability
from .sampling import BlockSampler

__all__ = ["LossModel", "JitterStream"]


@dataclass(frozen=True, slots=True)
class LossModel:
    """Per-message loss probability and jitter spread for every link."""

    loss_probability: float = 0.0
    jitter_sigma: float = 0.05

    def __post_init__(self) -> None:
        require_probability(self.loss_probability, "loss_probability")
        if self.jitter_sigma < 0:
            # Zero is legal (jitter disabled), so require_positive's "must be
            # positive" message would misstate the constraint.
            raise ValueError(
                f"jitter_sigma must be >= 0, got {self.jitter_sigma}"
            )

    def drops(self, rng: random.Random) -> bool:
        """True when this transmission is lost."""

        return self.loss_probability > 0 and rng.random() < self.loss_probability

    def jitter_factor(self, rng: random.Random) -> float:
        """Multiplicative latency jitter (mean ~1)."""

        if self.jitter_sigma == 0:
            return 1.0
        return rng.lognormvariate(0.0, self.jitter_sigma)


class JitterStream:
    """Blocked jitter sampling over one ``random.Random``, byte-identical.

    While ``loss_probability == 0`` the wrapped generator feeds *only* the
    jitter draws (``LossModel.drops`` short-circuits without consuming
    randomness), so whole blocks can be pre-drawn without reordering the
    stream.  The buffer holds standard normals — the accept/reject loop of
    ``normalvariate`` never looks at ``sigma`` — so each factor is computed
    against the *current* model's ``jitter_sigma`` at use time:
    ``exp(z * sigma)`` is bitwise what ``rng.lognormvariate(0.0, sigma)``
    would have returned for the same underlying uniforms.

    With loss enabled, loss and jitter draws interleave on the shared
    generator and batching would reorder them, so :meth:`factor` falls back
    to the scalar path — byte-identical by construction, just not batched.
    """

    __slots__ = ("_rng", "_sampler", "_z", "_pos", "block_size")

    def __init__(self, rng: random.Random, block_size: int = 4096) -> None:
        self._rng = rng
        self._sampler = BlockSampler(rng)
        self._z: list[float] = []
        self._pos = 0
        self.block_size = block_size

    def factor(self, model: LossModel) -> float:
        """The next jitter factor of *model* drawn from the wrapped rng."""

        sigma = model.jitter_sigma
        if sigma == 0:
            return 1.0
        if model.loss_probability > 0:
            return self._rng.lognormvariate(0.0, sigma)
        pos = self._pos
        z = self._z
        if pos == len(z):
            z = self._z = self._sampler.normals(0.0, 1.0, self.block_size)
            pos = 0
        self._pos = pos + 1
        return _exp(z[pos] * sigma)
