"""Link behaviour: stochastic loss and per-message jitter.

Section III assumes Byzantine *nodes* but stochastically lossy *links*; this
module models the links.  Jitter multiplies the link's base latency by a
lognormal factor close to 1, approximating queueing variation without moving
the mean much.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..utils.validation import require_probability

__all__ = ["LossModel"]


@dataclass(frozen=True, slots=True)
class LossModel:
    """Per-message loss probability and jitter spread for every link."""

    loss_probability: float = 0.0
    jitter_sigma: float = 0.05

    def __post_init__(self) -> None:
        require_probability(self.loss_probability, "loss_probability")
        if self.jitter_sigma < 0:
            # Zero is legal (jitter disabled), so require_positive's "must be
            # positive" message would misstate the constraint.
            raise ValueError(
                f"jitter_sigma must be >= 0, got {self.jitter_sigma}"
            )

    def drops(self, rng: random.Random) -> bool:
        """True when this transmission is lost."""

        return self.loss_probability > 0 and rng.random() < self.loss_probability

    def jitter_factor(self, rng: random.Random) -> float:
        """Multiplicative latency jitter (mean ~1)."""

        if self.jitter_sigma == 0:
            return 1.0
        return rng.lognormvariate(0.0, self.jitter_sigma)
