"""Wire-level message envelope shared by all protocols.

Each protocol defines its own payload objects; the envelope adds the fields
the network layer needs: a kind tag for dispatch, a size for bandwidth
accounting, and the sending node (as observed by the receiver — the transport
authenticates the immediate sender, as TCP connections between known peers
would in a deployment).

``Message`` is slotted and is the only allocation per transmission on the
kernel's hot path: the scheduler stores flyweight ``(time, seq, fn, args)``
tuples (see :mod:`repro.net.simulator`), so one in-flight message costs one
``Message`` plus one tuple — no per-event closure or wrapper objects.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message", "ENVELOPE_OVERHEAD_BYTES", "reset_message_ids"]

# Fixed per-message overhead (headers, kind tag, sender id) used when sizing
# messages for bandwidth accounting.
ENVELOPE_OVERHEAD_BYTES = 40

_message_counter = itertools.count()


def reset_message_ids(start: int = 0) -> None:
    """Rewind the global message-id counter (independent runs only).

    See :func:`repro.mempool.transaction.reset_tx_ids`; the sweep runner
    resets both counters before every run so cell results never depend on
    process history.
    """

    global _message_counter
    _message_counter = itertools.count(start)


@dataclass(slots=True)
class Message:
    """A protocol message in flight.

    ``size_bytes`` should be the payload size; the envelope overhead is added
    by the accounting layer so protocols don't have to remember it.
    """

    kind: str
    payload: Any
    size_bytes: int
    msg_id: int = field(default_factory=lambda: next(_message_counter))
    # Optional dissemination context, set by protocols on messages that carry
    # exactly one transaction.  The network layer copies both onto its
    # ``net.send`` trace events, which is what lets the offline analysis
    # (repro.obs.analysis) join per-hop latency components to per-transaction
    # dissemination trees.  None (the default) means "not a single-tx hop"
    # (acks, digests, multi-tx gossip payloads, control traffic).
    tx_id: int | None = None
    overlay_id: int | None = None

    def wire_size(self) -> int:
        """Total bytes on the wire, including the envelope overhead."""

        return self.size_bytes + ENVELOPE_OVERHEAD_BYTES
