"""Physical network generation.

The system model (§III) is a labeled graph ``G = (V, E)`` with latency labels
``lat(e)`` and the assumption that every node is reachable through at least
``t`` disjoint paths.  We generate such graphs by assigning nodes to regions,
wiring each node to a mix of same-region and remote peers until everyone has at
least ``min_degree >= t`` neighbours, and then repairing connectivity if the
random wiring left islands.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import networkx as nx

from ..errors import TopologyError
from ..types import ALL_REGIONS, Region
from ..utils.rng import derive_rng
from ..utils.validation import require
from .latency import LatencyModel, LatencyParameters

__all__ = ["PhysicalNetwork", "generate_physical_network"]

# Probability that a random neighbour is chosen from the node's own region;
# keeps the graph latency-clustered the way real P2P networks are.
_SAME_REGION_BIAS = 0.5

# Above this size, validate="auto" switches from the exact node-connectivity
# test (quadratic max-flow) to the O(V+E) structural check.
_FULL_VALIDATE_MAX_NODES = 1024


@dataclass
class PhysicalNetwork:
    """An immutable view of the physical substrate.

    ``latencies`` maps each undirected edge (stored with ``u < v``) to its
    label ``lat(e)`` in milliseconds — the *expected* one-way delay used both
    for overlay optimization and as the base for per-message sampling.
    """

    graph: nx.Graph
    regions: Mapping[int, Region]
    latencies: Mapping[tuple[int, int], float]
    latency_model: LatencyModel = field(repr=False)
    pair_seed: int = 0
    _pair_cache: dict[tuple[int, int], float] = field(
        default_factory=dict, repr=False, compare=False
    )
    # Bumped on every topology mutation; consumers holding derived caches
    # (e.g. Network's per-pair base-latency cache) compare it to decide when
    # to invalidate without the substrate having to know who they are.
    version: int = field(default=0, repr=False, compare=False)

    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    def nodes(self) -> list[int]:
        return sorted(self.graph.nodes)

    def neighbors(self, node: int) -> list[int]:
        return sorted(self.graph.neighbors(node))

    def has_edge(self, u: int, v: int) -> bool:
        return self.graph.has_edge(u, v)

    def latency(self, u: int, v: int) -> float:
        """The edge label ``lat(e_{u,v})``; raises for non-edges."""

        key = (u, v) if u < v else (v, u)
        try:
            return self.latencies[key]
        except KeyError:
            raise TopologyError(f"no physical link between {u} and {v}") from None

    def transport_latency(self, u: int, v: int) -> float:
        """Stable one-way latency between any two nodes.

        Physically adjacent pairs use their link label; other pairs use a
        deterministic per-pair draw from the regional model (the internet path
        between them), cached so repeated queries are free.  Overlay
        construction and the simulator both read this, so optimizing an
        overlay against these numbers is meaningful.
        """

        if u == v:
            return 0.0
        key = (u, v) if u < v else (v, u)
        if key in self.latencies:
            return self.latencies[key]
        cached = self._pair_cache.get(key)
        if cached is None:
            cached = self.latency_model.sample_pair(
                self.pair_seed, u, v, self.regions[u], self.regions[v]
            )
            self._pair_cache[key] = cached
        return cached

    def region_of(self, node: int) -> Region:
        return self.regions[node]

    # ------------------------------------------------------------------
    # Mutation (permissionless churn, §VII-B)
    # ------------------------------------------------------------------

    def add_node_with_links(
        self, node: int, region: Region, neighbors: Sequence[int]
    ) -> None:
        """Join *node* to the physical network with links to *neighbors*."""

        if node in self.graph:
            raise TopologyError(f"node {node} already in the network")
        if not neighbors:
            raise TopologyError("a joining node needs at least one neighbour")
        for neighbor in neighbors:
            if neighbor not in self.graph:
                raise TopologyError(f"unknown neighbour {neighbor}")
        if not isinstance(self.regions, dict) or not isinstance(self.latencies, dict):
            raise TopologyError("this PhysicalNetwork instance is immutable")
        self.graph.add_node(node)
        self.regions[node] = region
        for neighbor in neighbors:
            self.graph.add_edge(node, neighbor)
            key = (min(node, neighbor), max(node, neighbor))
            self.latencies[key] = self.latency_model.sample_pair(
                self.pair_seed, node, neighbor, region, self.regions[neighbor]
            )
            # A pair that used to ride the internet path is now a direct
            # link; its old per-pair draw must not shadow the new label.
            self._pair_cache.pop(key, None)
        self.version += 1

    def remove_node(self, node: int) -> None:
        """Remove a departed node and its links."""

        if node not in self.graph:
            raise TopologyError(f"unknown node {node}")
        if not isinstance(self.regions, dict) or not isinstance(self.latencies, dict):
            raise TopologyError("this PhysicalNetwork instance is immutable")
        neighbors = list(self.graph.neighbors(node))
        self.graph.remove_node(node)
        self.regions.pop(node, None)
        for neighbor in neighbors:
            self.latencies.pop((min(node, neighbor), max(node, neighbor)), None)
        # Drop stale per-pair draws too: if this id rejoins later (possibly
        # in a different region), transport_latency must re-sample.
        for key in [k for k in self._pair_cache if node in k]:
            del self._pair_cache[key]
        self.version += 1

    def degree(self, node: int) -> int:
        return self.graph.degree[node]

    def min_cut_between(self, u: int, v: int) -> int:
        """Number of vertex-disjoint paths between *u* and *v* (Menger)."""

        return nx.node_connectivity(self.graph, u, v)

    def validate_connectivity(self, t: int) -> None:
        """Raise unless the graph is *t*-vertex-connected.

        Exact but expensive: ``nx.node_connectivity`` runs max-flow over
        many vertex pairs, which is prohibitive beyond a few thousand nodes.
        Use :meth:`validate_connectivity_fast` when the construction already
        guarantees *t*-connectivity structurally.
        """

        if self.num_nodes <= t:
            raise TopologyError(f"{self.num_nodes} nodes cannot be {t}-connected")
        if nx.node_connectivity(self.graph) < t:
            raise TopologyError(f"physical network is not {t}-vertex-connected")

    def validate_connectivity_fast(self, t: int) -> None:
        """Check the cheap necessary conditions for *t*-vertex-connectivity.

        Verifies minimum degree >= *t* and single-component connectivity in
        O(V + E).  These are necessary but not sufficient in general; they are
        sufficient for graphs that contain a Harary ring-with-chords skeleton
        (every graph :func:`generate_physical_network` emits), because the
        skeleton alone is ``2*ceil(min_degree/2)``-vertex-connected and extra
        edges never reduce vertex connectivity.
        """

        if self.num_nodes <= t:
            raise TopologyError(f"{self.num_nodes} nodes cannot be {t}-connected")
        degrees = dict(self.graph.degree)
        worst = min(degrees, key=lambda n: (degrees[n], n))
        if degrees[worst] < t:
            raise TopologyError(
                f"node {worst} has degree {degrees[worst]} < t = {t}"
            )
        if not nx.is_connected(self.graph):
            raise TopologyError("physical network is not connected")


def _assign_regions(
    node_ids: Sequence[int], regions: Sequence[Region], rng: random.Random
) -> dict[int, Region]:
    """Spread nodes across regions roughly evenly, with random assignment."""

    assignment = {}
    shuffled = list(node_ids)
    rng.shuffle(shuffled)
    for position, node in enumerate(shuffled):
        assignment[node] = regions[position % len(regions)]
    return assignment


def _pick_neighbor(
    node: int,
    candidates_same: Sequence[int],
    candidates_other: Sequence[int],
    rng: random.Random,
) -> int | None:
    """Choose a peer, biased toward the node's own region."""

    pools: list[Sequence[int]] = []
    if candidates_same and rng.random() < _SAME_REGION_BIAS:
        pools = [candidates_same, candidates_other]
    else:
        pools = [candidates_other, candidates_same]
    for pool in pools:
        if pool:
            return rng.choice(pool)
    return None


def generate_physical_network(
    num_nodes: int,
    min_degree: int = 4,
    regions: Iterable[Region] | None = None,
    latency_parameters: LatencyParameters | None = None,
    latency_model: LatencyModel | None = None,
    seed: int = 0,
    validate: str = "auto",
) -> PhysicalNetwork:
    """Generate a region-clustered physical network.

    Every node ends with degree >= *min_degree*; the Harary ring-with-chords
    skeleton guarantees ``min_degree``-vertex-connectivity by construction so
    the disjoint path assumption of §III holds with ``t = min_degree``.

    *validate* selects how that guarantee is re-checked before returning:
    ``"full"`` runs the exact (quadratic) ``nx.node_connectivity`` test,
    ``"fast"`` the O(V+E) structural check (degree + connectedness — sufficient
    here because the skeleton is t-connected and edges are only ever added),
    and ``"auto"`` (default) picks ``"full"`` up to
    ``_FULL_VALIDATE_MAX_NODES`` nodes and ``"fast"`` beyond, which is what
    makes paper-scale ``N = 10,000`` generation finish in seconds.  Validation
    draws no randomness, so the returned network is byte-identical across all
    three modes.
    """

    require(num_nodes >= 2, f"need at least 2 nodes, got {num_nodes}")
    require(min_degree >= 1, f"min_degree must be >= 1, got {min_degree}")
    require(
        validate in ("auto", "full", "fast"),
        f"validate must be 'auto', 'full' or 'fast', got {validate!r}",
    )
    require(
        min_degree < num_nodes,
        f"min_degree {min_degree} impossible with {num_nodes} nodes",
    )

    region_list = tuple(regions) if regions is not None else ALL_REGIONS
    rng = derive_rng(seed, "topology")
    node_ids = list(range(num_nodes))
    region_of = _assign_regions(node_ids, region_list, rng)

    by_region: dict[Region, list[int]] = {}
    for node, region in region_of.items():
        by_region.setdefault(region, []).append(node)

    graph = nx.Graph()
    graph.add_nodes_from(node_ids)

    # A Harary-style ring-with-chords skeleton guarantees min_degree-vertex-
    # connectivity; random region-biased edges on top provide realism.
    half = max(1, min_degree // 2 + min_degree % 2)
    for node in node_ids:
        for offset in range(1, half + 1):
            graph.add_edge(node, (node + offset) % num_nodes)

    for node in node_ids:
        attempts = 0
        while graph.degree[node] < min_degree and attempts < 20 * min_degree:
            attempts += 1
            same = [
                c for c in by_region[region_of[node]] if c != node and not graph.has_edge(node, c)
            ]
            other = [
                c
                for c in node_ids
                if c != node and region_of[c] != region_of[node] and not graph.has_edge(node, c)
            ]
            peer = _pick_neighbor(node, same, other, rng)
            if peer is None:
                break
            graph.add_edge(node, peer)

    # Sprinkle extra long-range edges (~1 per node) so the graph is not a bare ring.
    extra_edges = num_nodes
    for _ in range(extra_edges):
        u, v = rng.sample(node_ids, 2)
        graph.add_edge(u, v)

    # Each physical link gets one latency draw from the regional model; this
    # fixed label is what overlay construction optimizes against and what the
    # simulator uses as the link's base delay.  A custom model (e.g. the
    # pair-specific MatrixLatencyModel) may be supplied.
    if latency_model is None:
        latency_model = LatencyModel(latency_parameters, derive_rng(seed, "latency"))
    latencies = {
        (min(u, v), max(u, v)): latency_model.sample(region_of[u], region_of[v])
        for u, v in graph.edges
    }

    network = PhysicalNetwork(
        graph=graph,
        regions=region_of,
        latencies=latencies,
        latency_model=latency_model,
        pair_seed=seed,
    )
    t = min(min_degree, num_nodes - 1)
    if validate == "full" or (validate == "auto" and num_nodes <= _FULL_VALIDATE_MAX_NODES):
        network.validate_connectivity(t)
    else:
        network.validate_connectivity_fast(t)
    return network
