"""Constant-memory telemetry primitives: quantile sketches and windowed counters.

Every per-transaction list in the measurement stack becomes a memory bug the
moment a run injects 10⁶ transactions, so sustained-load telemetry folds each
observation into one of three fixed-size structures the instant it happens:

* :class:`QuantileSketch` — a deterministic Munro–Paterson-style compacting
  sketch with a *provable, self-reported* rank-error bound.  Values live in
  levelled buffers; a full buffer is sorted and halved (every other element
  survives with doubled weight).  Each compaction of weight-``w`` items
  perturbs any rank query by at most ``w``, and the sketch accumulates that
  worst case in :meth:`rank_error` — so callers (and the property tests) can
  assert ``|estimated rank − true rank| <= rank_error() * count`` as a hard
  invariant, not a statistical hope.  Sketches merge, and merging preserves
  the bound.
* :class:`ReservoirSketch` — classic seeded uniform reservoir sampling
  (Algorithm R).  Count, sum and mean are exact; percentiles are computed
  over the retained sample.  Cheaper per observation than the compacting
  sketch but only statistically accurate, so the regression gates use
  :class:`QuantileSketch` and the reservoir serves exploratory views.
* :class:`WindowedCounter` / :class:`WindowedQuantiles` — per-time-bucket
  aggregation for trajectory reporting (goodput over time, fee percentiles
  over time).  State is O(number of windows), i.e. bounded by the run's
  duration over the window size, never by its transaction count.

The module is deliberately dependency-free (pure stdlib, no ``repro``
imports) so it can sit underneath :mod:`repro.net.stats` without cycles.

>>> sketch = QuantileSketch(capacity=64)
>>> for value in range(1000):
...     sketch.observe(float(value))
>>> sketch.count
1000
>>> abs(sketch.percentile(50) - 499.5) <= sketch.rank_error() * 1000
True
"""

from __future__ import annotations

import random

__all__ = [
    "QuantileSketch",
    "ReservoirSketch",
    "WindowedCounter",
    "WindowedQuantiles",
]


class QuantileSketch:
    """Deterministic compacting quantile sketch with a hard rank-error bound.

    ``capacity`` is the per-level buffer size (rounded up to an even number).
    Memory is O(capacity × log(n / capacity)); a 512-slot sketch summarizes
    10⁶ observations in ~11 levels ≈ 6k floats with a worst-case rank error
    around 1% (and typically far better — the bound assumes every compaction
    perturbs the queried rank maximally and in the same direction).
    """

    __slots__ = ("capacity", "_levels", "_count", "_sum", "_min", "_max", "_shift")

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.capacity = capacity + (capacity % 2)
        # _levels[l] holds values of weight 2**l; level 0 is the insert buffer.
        self._levels: list[list[float]] = [[]]
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        # Accumulated worst-case rank perturbation across all compactions.
        self._shift = 0.0

    # -- ingest -----------------------------------------------------------

    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        buffer = self._levels[0]
        buffer.append(value)
        if len(buffer) >= self.capacity:
            self._compact(0)

    def _compact(self, level: int) -> None:
        """Halve level *level* into *level + 1* (cascading when it fills)."""

        buffer = self._levels[level]
        buffer.sort()
        # Deterministic halving: the odd-indexed survivors of the sorted
        # buffer, with doubled weight.  The cumulative weight below any
        # threshold moves by at most one item-weight per compaction (exact at
        # even positions, off by `weight` at odd ones) — the classical
        # Munro–Paterson bound this sketch accumulates in _shift.
        survivors = buffer[1::2]
        weight = 1 << level
        self._shift += weight
        del buffer[:]
        if level + 1 == len(self._levels):
            self._levels.append([])
        upper = self._levels[level + 1]
        upper.extend(survivors)
        if len(upper) >= self.capacity:
            self._compact(level + 1)

    def merge(self, other: "QuantileSketch") -> None:
        """Fold *other* into this sketch.

        The combined rank-error bound is (at most) the sum of both sketches'
        accumulated bounds plus whatever further compactions the merge
        triggers — :meth:`rank_error` keeps reporting the true invariant, so
        merging in any association order stays within the reported bound
        (associativity up to the documented error, pinned by the property
        tests in ``tests/property/test_population_properties.py``).
        """

        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self._shift += other._shift
        for level, values in enumerate(other._levels):
            if not values:
                continue
            while level >= len(self._levels):
                self._levels.append([])
            target = self._levels[level]
            target.extend(values)
            if len(target) >= self.capacity:
                self._compact(level)

    # -- reading ----------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        if not self._count:
            raise ValueError("sketch is empty")
        return self._sum / self._count

    @property
    def min(self) -> float:
        if not self._count:
            raise ValueError("sketch is empty")
        return self._min

    @property
    def max(self) -> float:
        if not self._count:
            raise ValueError("sketch is empty")
        return self._max

    def rank_error(self) -> float:
        """The self-reported worst-case rank error, as a fraction of count.

        Hard guarantee: for any ``pct``, the returned
        :meth:`percentile` value's true rank in the observed population lies
        within ``rank_error() * count`` ranks of the requested one (plus one
        rank of interpolation slack).  Zero until the first compaction — an
        under-capacity sketch is exact.
        """

        if not self._count:
            return 0.0
        return min(1.0, self._shift / self._count)

    def _weighted(self) -> list[tuple[float, int]]:
        pairs: list[tuple[float, int]] = []
        for level, values in enumerate(self._levels):
            weight = 1 << level
            pairs.extend((value, weight) for value in values)
        pairs.sort()
        return pairs

    def percentile(self, pct: float) -> float:
        """Estimate the *pct*-th percentile of everything observed.

        Uses the same rank convention as :func:`repro.net.stats.percentile`
        (rank ``pct/100 * (n-1)`` over the sorted population) so an
        under-capacity sketch returns byte-identical answers to the exact
        implementation.
        """

        if not 0 <= pct <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        if not self._count:
            raise ValueError("cannot take a percentile of an empty sketch")
        pairs = self._weighted()
        target = (pct / 100.0) * (self._count - 1)
        cumulative = 0.0
        for index, (value, weight) in enumerate(pairs):
            # The item covers ranks [cumulative, cumulative + weight).
            if cumulative + weight > target:
                if weight == 1 and cumulative < target and index + 1 < len(pairs):
                    # Exact-regime interpolation between adjacent items (by
                    # position, not by value — duplicates must interpolate to
                    # themselves to match the exact implementation).
                    fraction = target - cumulative
                    nxt = pairs[index + 1][0]
                    return value * (1 - fraction) + nxt * fraction
                return value
            cumulative += weight
        return pairs[-1][0]

    def summary(self) -> dict[str, float | int]:
        """JSON-ready digest (count, mean, p50/p95/p99, bound)."""

        if not self._count:
            return {"count": 0}
        return {
            "count": self._count,
            "mean": self.mean,
            "min": self._min,
            "max": self._max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "rank_error": self.rank_error(),
        }


class ReservoirSketch:
    """Seeded uniform reservoir (Algorithm R) with exact count/sum/mean.

    The reservoir's randomness comes from its own ``random.Random(seed)``
    stream, never from a shared generator, so installing one in a simulation
    perturbs nothing and replays identically.
    """

    __slots__ = ("capacity", "_rng", "_sample", "_count", "_sum")

    def __init__(self, capacity: int = 1024, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._sample: list[float] = []
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        self._sum += value
        if len(self._sample) < self.capacity:
            self._sample.append(value)
            return
        slot = self._rng.randrange(self._count)
        if slot < self.capacity:
            self._sample[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        if not self._count:
            raise ValueError("reservoir is empty")
        return self._sum / self._count

    def sample(self) -> list[float]:
        """A copy of the retained uniform sample."""

        return list(self._sample)

    def percentile(self, pct: float) -> float:
        """Percentile of the retained sample (exact while under capacity)."""

        from .stats import percentile

        return percentile(self._sample, pct)


class WindowedCounter:
    """Per-time-window counts: O(windows) state, never O(observations).

    >>> counter = WindowedCounter(window_ms=1000.0)
    >>> for t in (0.0, 100.0, 999.0, 1000.0, 2500.0):
    ...     counter.add(t)
    >>> counter.series()
    [(0.0, 3.0), (1000.0, 1.0), (2000.0, 1.0)]
    """

    __slots__ = ("window_ms", "_buckets")

    def __init__(self, window_ms: float) -> None:
        if window_ms <= 0:
            raise ValueError(f"window_ms must be positive, got {window_ms}")
        self.window_ms = float(window_ms)
        self._buckets: dict[int, float] = {}

    def add(self, now_ms: float, amount: float = 1.0) -> None:
        bucket = int(now_ms // self.window_ms)
        self._buckets[bucket] = self._buckets.get(bucket, 0.0) + amount

    @property
    def total(self) -> float:
        return sum(self._buckets.values())

    def series(self) -> list[tuple[float, float]]:
        """``(window start ms, count)`` pairs in time order (gaps omitted)."""

        return [
            (bucket * self.window_ms, self._buckets[bucket])
            for bucket in sorted(self._buckets)
        ]

    def rate_series(self, per_ms: float = 1000.0) -> list[tuple[float, float]]:
        """The series as rates (per *per_ms* of simulated time)."""

        scale = per_ms / self.window_ms
        return [(start, count * scale) for start, count in self.series()]


class WindowedQuantiles:
    """One small :class:`QuantileSketch` per time window (trajectories).

    Used for the fee-percentile and tail-latency trajectories of sustained
    runs: per-window state is one ``capacity``-slot sketch, total state is
    O(windows × capacity) — bounded by duration, independent of load.
    """

    __slots__ = ("window_ms", "capacity", "_windows")

    def __init__(self, window_ms: float, capacity: int = 128) -> None:
        if window_ms <= 0:
            raise ValueError(f"window_ms must be positive, got {window_ms}")
        self.window_ms = float(window_ms)
        self.capacity = capacity
        self._windows: dict[int, QuantileSketch] = {}

    def observe(self, now_ms: float, value: float) -> None:
        bucket = int(now_ms // self.window_ms)
        sketch = self._windows.get(bucket)
        if sketch is None:
            sketch = self._windows[bucket] = QuantileSketch(self.capacity)
        sketch.observe(value)

    def __len__(self) -> int:
        return len(self._windows)

    def merged(self) -> QuantileSketch:
        """All windows folded into one whole-run sketch."""

        out = QuantileSketch(self.capacity)
        for bucket in sorted(self._windows):
            out.merge(self._windows[bucket])
        return out

    def series(self, percentiles: tuple[float, ...] = (50.0, 95.0)) -> list[dict]:
        """Per-window digests: start time, count, requested percentiles."""

        rows: list[dict] = []
        for bucket in sorted(self._windows):
            sketch = self._windows[bucket]
            row: dict = {
                "start_ms": bucket * self.window_ms,
                "count": sketch.count,
            }
            for pct in percentiles:
                row[f"p{pct:g}"] = sketch.percentile(pct)
            rows.append(row)
        return rows

