"""A deterministic discrete-event P2P simulation framework.

This is the "single, common P2P simulation framework" the paper evaluates all
protocols on: a heap-based event scheduler (:class:`~repro.net.simulator.Simulator`),
a region-aware latency model with the paper's published distribution fits
(:mod:`repro.net.latency`), physical topology generation (:mod:`repro.net.topology`),
lossy links (:mod:`repro.net.channel`), per-node bandwidth/latency accounting
(:mod:`repro.net.stats`) and the protocol-node API every dissemination protocol
in this repository implements (:mod:`repro.net.node`).
"""

from .channel import LossModel
from .events import Message
from .faults import Behavior, FaultPlan
from .latency import LatencyModel, LatencyParameters
from .node import Network, ProtocolNode
from .simulator import Simulator
from .stats import NetworkStats, percentile
from .topology import PhysicalNetwork, generate_physical_network

__all__ = [
    "Behavior",
    "FaultPlan",
    "LatencyModel",
    "LatencyParameters",
    "LossModel",
    "Message",
    "Network",
    "NetworkStats",
    "PhysicalNetwork",
    "ProtocolNode",
    "Simulator",
    "generate_physical_network",
    "percentile",
]
