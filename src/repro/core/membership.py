"""Epoch-based membership and overlay maintenance (paper §VII-B).

HERMES integrates with epoch-based blockchains by recomputing overlays at
epoch boundaries.  Between epochs, churn is absorbed incrementally:

* a **joining** node is spliced into every overlay with ``f+1`` lowest-latency
  predecessors (as a deep node, preserving the layer ordering);
* a **leaving** node is removed and each orphaned child is re-attached to
  ``f+1`` shallower members;
* when an **entry point** departs, a replacement is elected (the
  highest-accumulated-rank node, i.e. the least-favoured one) and promoted to
  depth 0, and its own former position is repaired.

:meth:`MembershipManager.advance_epoch` then rebuilds the family from scratch
against the current topology, exactly as a deployment would in the background.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import MembershipError
from ..net.topology import PhysicalNetwork
from ..overlay.base import Overlay, OverlaySpace, TransportSpace
from ..overlay.rank import RankTracker
from ..overlay.robust_tree import build_overlay_family
from ..types import Region

__all__ = ["MembershipManager", "MembershipEvent", "committee_epoch_seed"]


def committee_epoch_seed(backend, committee: list[int], epoch: int) -> int:
    """The committee-agreed construction seed for *epoch* (§VII-B).

    Every committee member partially signs the epoch number; the combined
    threshold signature is unique and unpredictable, so no single member can
    steer the pseudo-random optimization steps of the overlay rebuild —
    the same mechanism (and code path) as the per-message TRS.
    """

    from ..crypto.hashing import encode_for_hash

    binding = encode_for_hash("epoch-seed", epoch)
    partials = [backend.partial_sign(member, binding) for member in committee]
    signature = backend.combine(binding, partials)
    return backend.seed_from_signature(signature, 2**31)


@dataclass(frozen=True, slots=True)
class MembershipEvent:
    """An audit-log entry for one join/leave/epoch transition."""

    epoch: int
    kind: str  # "join" | "leave" | "epoch"
    node: int | None = None


@dataclass
class MembershipManager:
    """Owns the evolving membership, physical view and overlay family."""

    physical: PhysicalNetwork
    f: int
    k: int
    seed: int = 0
    overlays: list[Overlay] = field(default_factory=list)
    ranks: RankTracker = field(default_factory=RankTracker)
    epoch: int = 0
    events: list[MembershipEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.overlays:
            self.overlays, self.ranks = build_overlay_family(
                self.physical, f=self.f, k=self.k, seed=self.seed
            )

    @property
    def space(self) -> OverlaySpace:
        return TransportSpace(self.physical)

    def members(self) -> list[int]:
        return self.physical.nodes()

    # ------------------------------------------------------------------
    # Churn handling
    # ------------------------------------------------------------------

    def join(self, node: int, region: Region, neighbors: list[int]) -> None:
        """Admit *node* and splice it into every overlay with f+1 links."""

        self.physical.add_node_with_links(node, region, neighbors)
        space = self.space
        for overlay in self.overlays:
            members = [m for m in overlay.nodes()]
            parents = sorted(members, key=lambda m: (space.latency(m, node), m))[
                : self.f + 1
            ]
            if len(parents) < self.f + 1:
                raise MembershipError(
                    f"overlay {overlay.overlay_id} too small to admit node {node}"
                )
            depth = 1 + max(overlay.depth_of[p] for p in parents)
            overlay.add_node(node, depth)
            for parent in parents:
                overlay.add_edge(parent, node)
        self.events.append(MembershipEvent(self.epoch, "join", node))

    def leave(self, node: int) -> None:
        """Remove *node*, repairing every overlay it participated in."""

        if node not in self.physical.graph:
            raise MembershipError(f"node {node} is not a member")
        space = self.space
        for overlay in self.overlays:
            if not overlay.contains(node):
                continue
            was_entry = overlay.is_entry(node)
            children = list(overlay.successors.get(node, ()))
            for child in children:
                overlay.remove_edge(node, child)
            for parent in list(overlay.predecessors.get(node, ())):
                overlay.remove_edge(parent, node)
            del overlay.depth_of[node]
            del overlay.successors[node]
            del overlay.predecessors[node]
            if was_entry:
                self._elect_entry_point(overlay, replacing=node)
            self._repair_orphans(overlay, children, space)
        self.ranks.forget(node)
        self.physical.remove_node(node)
        self.events.append(MembershipEvent(self.epoch, "leave", node))

    def _elect_entry_point(self, overlay: Overlay, replacing: int) -> None:
        """Promote the least-favoured member to entry point (§VII-B)."""

        candidates = [n for n in overlay.nodes() if not overlay.is_entry(n)]
        if not candidates:
            raise MembershipError("no candidate left to serve as entry point")
        chosen = max(candidates, key=lambda n: (self.ranks.rank(n), -n))
        # Promote: clear its predecessors and move it to depth 0.  Children it
        # already had stay valid (their depths exceed 0); nodes that depended
        # on it as a deep predecessor are repaired by the caller via
        # _repair_orphans (depth ordering still holds).
        for parent in list(overlay.predecessors.get(chosen, ())):
            overlay.remove_edge(parent, chosen)
        overlay.depth_of[chosen] = 0
        overlay.entry_points = tuple(
            e for e in overlay.entry_points if e != replacing
        ) + (chosen,)

    def _repair_orphans(
        self, overlay: Overlay, children: list[int], space: OverlaySpace
    ) -> None:
        counts = overlay.shallower_counts()
        for child in children:
            if not overlay.contains(child):
                continue
            needed = overlay.required_predecessors(child, counts)
            existing = set(overlay.predecessors.get(child, ()))
            if len(existing) >= needed:
                continue
            candidates = [
                m
                for m in overlay.nodes()
                if overlay.depth_of[m] < overlay.depth_of[child] and m not in existing
            ]
            candidates.sort(key=lambda m: (space.latency(m, child), m))
            while len(overlay.predecessors[child]) < needed and candidates:
                overlay.add_edge(candidates.pop(0), child)

    # ------------------------------------------------------------------
    # Epoch transition
    # ------------------------------------------------------------------

    def advance_epoch(self, construction_seed: int | None = None) -> list[Overlay]:
        """Rebuild the overlay family for the current membership.

        §VII-B: when the reconstruction runs inside the blockchain network
        itself, "the committee ensures deterministic construction by
        generating a random seed for use in the pseudo-random optimization
        steps" — pass that seed as *construction_seed* (see
        :func:`committee_epoch_seed`); it defaults to a local derivation for
        single-operator deployments.
        """

        self.epoch += 1
        seed = (
            construction_seed
            if construction_seed is not None
            else self.seed + self.epoch
        )
        self.overlays, self.ranks = build_overlay_family(
            self.physical, f=self.f, k=self.k, seed=seed
        )
        self.events.append(MembershipEvent(self.epoch, "epoch"))
        return self.overlays

    def validate(self) -> None:
        """Check every overlay still satisfies the HERMES invariants."""

        members = self.members()
        for overlay in self.overlays:
            overlay.validate(expected_nodes=members)
