"""HERMES — the paper's dissemination protocol (§IV and §VI).

Online flow per message:

1. the sender obtains a Threshold Random Seed for ``(i, H(m))`` from the
   ``3f+1`` committee (:mod:`repro.trs`);
2. the seed verifiably selects one of the ``k`` precomputed robust-tree
   overlays (``overlay = seed mod k``);
3. the sender forwards the message to that overlay's ``f+1`` entry points over
   ``f+1`` disjoint paths;
4. relays verify the threshold signature, the sequence number, and that the
   immediate sender is a legitimate predecessor — then forward to their
   successors; violations are logged and the offender excluded;
5. a background gossip fallback (activated after delay ``T``) reconciles
   mempools so fault-density violations cannot cause permanent loss (§VII-A).
"""

from .accountability import AccountabilityMonitor, Violation, ViolationLog
from .batching import BatchingHermesNode, BatchingHermesSystem
from .config import HermesConfig
from .dissemination import DisseminationEnvelope
from .erasure import decode_shards, encode_shards, hermes_erasure_parameters
from .membership import MembershipManager, committee_epoch_seed
from .peer_sampling import PeerSamplingNode
from .permissionless import PermissionlessDeployment
from .protocol import HermesNode, HermesSystem
from .sequencer import SequenceAuditor
from .tracing import ActivityKind, ActivityTrace

__all__ = [
    "AccountabilityMonitor",
    "ActivityKind",
    "ActivityTrace",
    "BatchingHermesNode",
    "BatchingHermesSystem",
    "PermissionlessDeployment",
    "DisseminationEnvelope",
    "HermesConfig",
    "HermesNode",
    "HermesSystem",
    "MembershipManager",
    "PeerSamplingNode",
    "SequenceAuditor",
    "Violation",
    "ViolationLog",
    "committee_epoch_seed",
    "decode_shards",
    "encode_shards",
    "hermes_erasure_parameters",
]
