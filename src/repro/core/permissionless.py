"""Permissionless HERMES deployment driver (§VII-B, end to end).

Glues the §VII-B machinery together the way an epoch-based blockchain would
use it:

* a :class:`MembershipManager` owns the evolving membership and repairs the
  overlay family across joins/leaves (including entry-point elections);
* at each epoch boundary the overlays are rebuilt deterministically under a
  *committee-agreed* seed (:func:`committee_epoch_seed`), so no single node
  can steer the pseudo-random optimization;
* dissemination sessions run against the current epoch's overlays; per-node
  mempool contents carry across epochs (nodes keep their state, only the
  routing structure is replaced).

Each dissemination session is one simulation run — the driver models the
epochal control plane, not a single continuous clock across epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.backend import CryptoBackend, FastCryptoBackend
from ..mempool.transaction import Transaction
from ..net.faults import FaultPlan
from ..net.topology import PhysicalNetwork
from ..types import Region
from .config import HermesConfig
from .membership import MembershipManager, committee_epoch_seed
from .protocol import HermesSystem

__all__ = ["PermissionlessDeployment", "EpochReport"]


@dataclass(frozen=True, slots=True)
class EpochReport:
    """What happened in one dissemination session."""

    epoch: int
    transactions: int
    coverage: float
    violations: int


@dataclass
class PermissionlessDeployment:
    """An epoch-based HERMES deployment over a mutable membership."""

    physical: PhysicalNetwork
    f: int = 1
    k: int = 5
    seed: int = 0
    config_overrides: dict = field(default_factory=dict)
    backend: CryptoBackend | None = None
    manager: MembershipManager = field(init=False)
    # node id -> set of tx ids known across epochs (mempool continuity).
    known_transactions: dict[int, set[int]] = field(default_factory=dict)
    reports: list[EpochReport] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.manager = MembershipManager(
            self.physical, f=self.f, k=self.k, seed=self.seed
        )
        if self.backend is None:
            self.backend = FastCryptoBackend(self.seed)
        committee = self._committee()
        self.backend.setup_committee(committee, 2 * self.f + 1)
        for node in self.manager.members():
            self.known_transactions.setdefault(node, set())

    # -- membership control plane -----------------------------------------

    def _committee(self) -> list[int]:
        return self.manager.members()[: 3 * self.f + 1]

    @property
    def epoch(self) -> int:
        return self.manager.epoch

    def join(self, node: int, region: Region, neighbors: list[int]) -> None:
        self.manager.join(node, region, neighbors)
        self.known_transactions.setdefault(node, set())

    def leave(self, node: int) -> None:
        self.manager.leave(node)
        self.known_transactions.pop(node, None)

    def advance_epoch(self) -> int:
        """Move to the next epoch under a committee-agreed construction seed."""

        committee = self._committee()
        # Committee membership may have churned; re-key for the new set.
        self.backend.setup_committee(committee, 2 * self.f + 1)
        seed = committee_epoch_seed(self.backend, committee, self.manager.epoch + 1)
        self.manager.advance_epoch(construction_seed=seed)
        self.manager.validate()
        return self.manager.epoch

    # -- data plane ----------------------------------------------------------

    def run_session(
        self,
        submissions: list[tuple[int, Transaction]],
        horizon_ms: float = 6_000.0,
        fault_plan: FaultPlan | None = None,
    ) -> EpochReport:
        """Disseminate *submissions* over the current epoch's overlays."""

        config = HermesConfig(
            f=self.f, num_overlays=self.k, **self.config_overrides
        )
        system = HermesSystem(
            self.physical,
            config,
            fault_plan=fault_plan,
            overlays=self.manager.overlays,
            seed=self.seed + 1000 * (self.manager.epoch + 1),
        )
        system.start()
        for origin, tx in submissions:
            system.submit(origin, tx)
        system.run(until_ms=horizon_ms)

        members = self.manager.members()
        coverages = []
        for _origin, tx in submissions:
            delivered = set(system.stats.deliveries.get(tx.tx_id, {}))
            coverages.append(len(delivered & set(members)) / len(members))
            for node in delivered:
                if node in self.known_transactions:
                    self.known_transactions[node].add(tx.tx_id)
        report = EpochReport(
            epoch=self.manager.epoch,
            transactions=len(submissions),
            coverage=sum(coverages) / len(coverages) if coverages else 1.0,
            violations=len(system.violation_log),
        )
        self.reports.append(report)
        return report
