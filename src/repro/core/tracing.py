"""Activity tracing — the paper's "thorough logging to trace node activity".

§I: "Combined with thorough logging to trace node activity, HERMES prevents
front-running attempts from remaining undetected."  The violation log records
*detected* deviations; the activity trace records *everything* — every TRS
request, dispatch, relay, delivery and ack — so that an auditor can
reconstruct any message's dissemination path after the fact and cross-check a
node's claims against its peers' observations.

The trace is deliberately simple: an append-only list of typed records with
query helpers.  `HermesConfig.tracing_enabled` turns collection on;
:func:`reconstruct_path` rebuilds the relay tree of one transaction, and
:func:`cross_check` finds nodes whose *send* claims lack matching *receive*
records (evidence of fabricated logs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["ActivityKind", "ActivityRecord", "ActivityTrace", "reconstruct_path", "cross_check"]


class ActivityKind(enum.Enum):
    TRS_REQUESTED = "trs-requested"
    DISPATCHED = "dispatched"
    RELAYED = "relayed"
    RECEIVED = "received"  # every verified receipt, duplicates included
    DELIVERED = "delivered"  # first receipt only
    ACKED = "acked"


@dataclass(frozen=True, slots=True)
class ActivityRecord:
    """One traced action."""

    time_ms: float
    node: int
    kind: ActivityKind
    tx_id: int
    overlay_id: int | None = None
    peer: int | None = None  # counterparty (receiver for RELAYED, sender for DELIVERED)


@dataclass
class ActivityTrace:
    """Append-only activity log shared by the nodes of one system."""

    records: list[ActivityRecord] = field(default_factory=list)
    enabled: bool = True

    def record(self, record: ActivityRecord) -> None:
        if self.enabled:
            self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # -- queries ----------------------------------------------------------

    def for_tx(self, tx_id: int) -> list[ActivityRecord]:
        return [r for r in self.records if r.tx_id == tx_id]

    def for_node(self, node: int) -> list[ActivityRecord]:
        return [r for r in self.records if r.node == node]

    def by_kind(self, kind: ActivityKind) -> list[ActivityRecord]:
        return [r for r in self.records if r.kind is kind]

    def deliveries(self, tx_id: int) -> dict[int, float]:
        """node → first delivery time for *tx_id*."""

        out: dict[int, float] = {}
        for record in self.records:
            if record.kind is ActivityKind.DELIVERED and record.tx_id == tx_id:
                out.setdefault(record.node, record.time_ms)
        return out


def reconstruct_path(trace: ActivityTrace, tx_id: int) -> dict[int, int]:
    """Rebuild who first handed *tx_id* to whom: receiver → sender.

    This is the auditor's view of the dissemination tree: combining it with
    the signed overlay encoding exposes any relay that served a node it was
    not a predecessor of.
    """

    parents: dict[int, int] = {}
    for record in sorted(trace.for_tx(tx_id), key=lambda r: r.time_ms):
        if record.kind is ActivityKind.DELIVERED and record.peer is not None:
            parents.setdefault(record.node, record.peer)
    return parents


def cross_check(trace: ActivityTrace, tx_id: int) -> list[tuple[int, int]]:
    """Find (sender, receiver) relay claims with no matching delivery record.

    A node whose log claims it relayed to a peer that never logged the
    receipt is either lying or talking to a liar — either way the pair is
    flagged for the exclusion process.  (Messages genuinely lost by the
    network also surface here; in a deployment the transport's acks
    disambiguate, in the simulation lossless runs cross-check cleanly.)
    """

    sends = {
        (r.node, r.peer)
        for r in trace.for_tx(tx_id)
        if r.kind is ActivityKind.RELAYED and r.peer is not None
    }
    receipts = {
        (r.peer, r.node)
        for r in trace.for_tx(tx_id)
        if r.kind in (ActivityKind.RECEIVED, ActivityKind.DELIVERED)
        and r.peer is not None
    }
    return sorted(sends - receipts)
