"""Accountability: violation records, audit log and exclusion (§VI-C).

A node receiving a message verifies (i) the threshold signature, (ii) the
sequence number, (iii) that the immediate sender is a valid predecessor in
the claimed overlay.  Failures produce :class:`Violation` records in the
shared :class:`ViolationLog` — the simulation's stand-in for the paper's
"tamper-proof evidence of each transmission path" — and, when configured,
exclusion of the offender from further participation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["ViolationKind", "Violation", "ViolationLog", "AccountabilityMonitor"]


class ViolationKind(enum.Enum):
    BAD_SIGNATURE = "bad-signature"
    WRONG_OVERLAY = "wrong-overlay"
    ILLEGITIMATE_PREDECESSOR = "illegitimate-predecessor"
    SEQUENCE_GAP = "sequence-gap"
    EXCLUDED_SENDER = "excluded-sender"


@dataclass(frozen=True, slots=True)
class Violation:
    """One detected deviation, attributable to *accused*."""

    kind: ViolationKind
    accused: int
    reporter: int
    time_ms: float
    detail: str = ""


@dataclass
class ViolationLog:
    """Append-only evidence log shared by all correct nodes of one system."""

    entries: list[Violation] = field(default_factory=list)

    def record(self, violation: Violation) -> None:
        self.entries.append(violation)

    def against(self, node_id: int) -> list[Violation]:
        return [v for v in self.entries if v.accused == node_id]

    def by_kind(self, kind: ViolationKind) -> list[Violation]:
        return [v for v in self.entries if v.kind == kind]

    def accused_nodes(self) -> set[int]:
        return {v.accused for v in self.entries}

    def __len__(self) -> int:
        return len(self.entries)


class AccountabilityMonitor:
    """Per-node view: records violations and tracks exclusions."""

    def __init__(
        self, owner: int, log: ViolationLog, exclude_violators: bool = True
    ) -> None:
        self.owner = owner
        self._log = log
        self._exclude = exclude_violators
        self._excluded: set[int] = set()

    def flag(
        self, kind: ViolationKind, accused: int, time_ms: float, detail: str = ""
    ) -> None:
        """Record a violation and (optionally) exclude the offender."""

        self._log.record(
            Violation(
                kind=kind,
                accused=accused,
                reporter=self.owner,
                time_ms=time_ms,
                detail=detail,
            )
        )
        if self._exclude:
            self._excluded.add(accused)

    def is_excluded(self, node_id: int) -> bool:
        return node_id in self._excluded

    def excluded_nodes(self) -> frozenset[int]:
        return frozenset(self._excluded)
