"""Accountability: violation records, audit log and exclusion (§VI-C).

A node receiving a message verifies (i) the threshold signature, (ii) the
sequence number, (iii) that the immediate sender is a valid predecessor in
the claimed overlay.  Failures produce :class:`Violation` records in the
shared :class:`ViolationLog` — the simulation's stand-in for the paper's
"tamper-proof evidence of each transmission path" — and, when configured,
exclusion of the offender from further participation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "ViolationKind",
    "Violation",
    "ViolationLog",
    "AccountabilityMonitor",
    "AUDITOR_REPORTER",
]

#: Reporter id used by system-level auditors (e.g. the chaos invariant
#: monitors) that are not protocol participants.  Node ids are non-negative,
#: so the sentinel can never collide with a real reporter.
AUDITOR_REPORTER = -1


class ViolationKind(enum.Enum):
    BAD_SIGNATURE = "bad-signature"
    WRONG_OVERLAY = "wrong-overlay"
    # Sharded deployments only: an envelope sealed by (or for) a different
    # shard's committee arrived at this shard's relay.
    WRONG_SHARD = "wrong-shard"
    ILLEGITIMATE_PREDECESSOR = "illegitimate-predecessor"
    SEQUENCE_GAP = "sequence-gap"
    EXCLUDED_SENDER = "excluded-sender"
    # A relay received an item it was obliged to forward (it has successors /
    # partners for it) yet provably sent it to none of them — the global
    # auditor's stand-in for the paper's "tamper-proof evidence of each
    # transmission path" exposing silent censorship.
    RELAY_OMISSION = "relay-omission"


@dataclass(frozen=True, slots=True)
class Violation:
    """One detected deviation, attributable to *accused*."""

    kind: ViolationKind
    accused: int
    reporter: int
    time_ms: float
    detail: str = ""


@dataclass
class ViolationLog:
    """Append-only evidence log shared by all correct nodes of one system."""

    entries: list[Violation] = field(default_factory=list)

    def record(self, violation: Violation) -> None:
        self.entries.append(violation)

    def against(self, node_id: int) -> list[Violation]:
        return [v for v in self.entries if v.accused == node_id]

    def by_kind(self, kind: ViolationKind) -> list[Violation]:
        return [v for v in self.entries if v.kind == kind]

    def accused_nodes(self) -> set[int]:
        return {v.accused for v in self.entries}

    def summary(self) -> dict[str, Any]:
        """A JSON-ready digest: counts by kind and accused, detection window.

        ``by_kind`` / ``by_accused`` map kind values and accused node ids
        (stringified, for JSON key stability) to entry counts;
        ``first_detection_ms`` / ``last_detection_ms`` bound when evidence
        appeared (None for an empty log).  Deterministic: keys are sorted, so
        the same log always serializes to the same bytes.
        """

        by_kind: dict[str, int] = {}
        by_accused: dict[str, int] = {}
        for violation in self.entries:
            by_kind[violation.kind.value] = by_kind.get(violation.kind.value, 0) + 1
            key = str(violation.accused)
            by_accused[key] = by_accused.get(key, 0) + 1
        times = [v.time_ms for v in self.entries]
        return {
            "total": len(self.entries),
            "by_kind": dict(sorted(by_kind.items())),
            "by_accused": dict(sorted(by_accused.items(), key=lambda kv: int(kv[0]))),
            "accused": sorted(self.accused_nodes()),
            "first_detection_ms": min(times) if times else None,
            "last_detection_ms": max(times) if times else None,
        }

    def __len__(self) -> int:
        return len(self.entries)


class AccountabilityMonitor:
    """Per-node view: records violations and tracks exclusions."""

    def __init__(
        self, owner: int, log: ViolationLog, exclude_violators: bool = True
    ) -> None:
        self.owner = owner
        self._log = log
        self._exclude = exclude_violators
        self._excluded: set[int] = set()

    def flag(
        self, kind: ViolationKind, accused: int, time_ms: float, detail: str = ""
    ) -> None:
        """Record a violation and (optionally) exclude the offender."""

        self._log.record(
            Violation(
                kind=kind,
                accused=accused,
                reporter=self.owner,
                time_ms=time_ms,
                detail=detail,
            )
        )
        if self._exclude:
            self._excluded.add(accused)

    def is_excluded(self, node_id: int) -> bool:
        return node_id in self._excluded

    def excluded_nodes(self) -> frozenset[int]:
        return frozenset(self._excluded)
