"""Byzantine-resilient gossip-based peer sampling (SecureCyclon-style, §VII-B).

For permissionless deployments, every node maintains a bounded partial *view*
of the membership and periodically shuffles part of it with the peer whose
descriptor is oldest — Cyclon's age-based exchange.  The defences borrowed
from SecureCyclon against over-representation:

* a node accepts at most one descriptor per node id and never its own;
* received descriptors replace exactly the slots the node sent away, so a
  malicious peer cannot inflate the view;
* descriptor ages are capped and stale descriptors are evicted first, bounding
  how long a departed/Byzantine node lingers in views.

The quality metric (used by tests and the permissionless example) is indegree
balance: in a healthy run every node is referenced by roughly the same number
of views, so no node — honest or malicious — dominates the sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..net.events import Message
from ..net.faults import Behavior
from ..net.node import Network, ProtocolNode
from ..utils.rng import derive_rng

__all__ = ["PeerDescriptor", "PartialView", "PeerSamplingNode", "indegree_distribution"]

SHUFFLE_KIND = "cyclon-shuffle"
SHUFFLE_REPLY_KIND = "cyclon-shuffle-reply"

_DESCRIPTOR_BYTES = 12


@dataclass(frozen=True, slots=True)
class PeerDescriptor:
    """A pointer to a peer, aged each shuffle round."""

    node_id: int
    age: int = 0

    def aged(self) -> "PeerDescriptor":
        return PeerDescriptor(self.node_id, self.age + 1)


class PartialView:
    """A bounded set of peer descriptors with Cyclon/SecureCyclon rules."""

    def __init__(self, owner: int, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"view capacity must be positive, got {capacity}")
        self.owner = owner
        self.capacity = capacity
        self._slots: dict[int, PeerDescriptor] = {}

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._slots

    def descriptors(self) -> list[PeerDescriptor]:
        return sorted(self._slots.values(), key=lambda d: (d.age, d.node_id))

    def peer_ids(self) -> list[int]:
        return sorted(self._slots)

    def add(self, descriptor: PeerDescriptor) -> bool:
        """Insert subject to the SecureCyclon constraints; True if stored."""

        if descriptor.node_id == self.owner:
            return False
        existing = self._slots.get(descriptor.node_id)
        if existing is not None:
            # Keep the fresher of the two — never duplicate.
            if descriptor.age < existing.age:
                self._slots[descriptor.node_id] = descriptor
            return False
        if len(self._slots) >= self.capacity:
            # Evict the stalest descriptor to make room.
            stalest = max(self._slots.values(), key=lambda d: (d.age, d.node_id))
            if stalest.age <= descriptor.age:
                return False
            del self._slots[stalest.node_id]
        self._slots[descriptor.node_id] = descriptor
        return True

    def remove(self, node_id: int) -> None:
        self._slots.pop(node_id, None)

    def age_all(self) -> None:
        self._slots = {d.node_id: d.aged() for d in self._slots.values()}

    def oldest_peer(self) -> int | None:
        if not self._slots:
            return None
        return max(self._slots.values(), key=lambda d: (d.age, d.node_id)).node_id

    def sample(self, count: int, rng) -> list[PeerDescriptor]:
        descriptors = list(self._slots.values())
        if count >= len(descriptors):
            return descriptors
        return rng.sample(descriptors, count)


class PeerSamplingNode(ProtocolNode):
    """A protocol node running the shuffle rounds."""

    def __init__(
        self,
        node_id: int,
        network: Network,
        initial_view: list[int],
        view_size: int = 8,
        shuffle_size: int = 4,
        period_ms: float = 200.0,
        behavior: Behavior = Behavior.HONEST,
    ) -> None:
        super().__init__(node_id, network)
        self.view = PartialView(node_id, view_size)
        for peer in initial_view:
            self.view.add(PeerDescriptor(peer))
        self.shuffle_size = shuffle_size
        self.period_ms = period_ms
        self.behavior = behavior
        self.shuffles_completed = 0

    def on_start(self) -> None:
        if self.behavior is Behavior.CRASH:
            return
        self.schedule(self.period_ms * (1 + self.rng.random()), self._shuffle_round)

    def _shuffle_round(self) -> None:
        self.view.age_all()
        target = self.view.oldest_peer()
        if target is not None:
            outgoing = self.view.sample(self.shuffle_size - 1, self.rng)
            payload = tuple(outgoing) + (PeerDescriptor(self.node_id, 0),)
            # The exchanged slots leave our view; replies refill them.
            self.view.remove(target)
            size = _DESCRIPTOR_BYTES * len(payload)
            self.send(target, Message(SHUFFLE_KIND, payload, size))
        self.schedule(self.period_ms, self._shuffle_round)

    def on_message(self, sender: int, message: Message) -> None:
        if self.behavior is Behavior.CRASH:
            return
        if message.kind == SHUFFLE_KIND:
            if self.behavior is Behavior.DROP_RELAY:
                return  # Byzantine: never answers shuffles
            reply = self.view.sample(self.shuffle_size, self.rng)
            self.send(
                sender,
                Message(
                    SHUFFLE_REPLY_KIND, tuple(reply), _DESCRIPTOR_BYTES * len(reply)
                ),
            )
            self._merge(message.payload)
        elif message.kind == SHUFFLE_REPLY_KIND:
            self._merge(message.payload)
            self.shuffles_completed += 1

    def _merge(self, descriptors: tuple[PeerDescriptor, ...]) -> None:
        for descriptor in descriptors:
            self.view.add(descriptor)


def indegree_distribution(nodes: dict[int, PeerSamplingNode]) -> dict[int, int]:
    """How many views each node appears in — the balance metric."""

    indegree: dict[int, int] = {node_id: 0 for node_id in nodes}
    for node in nodes.values():
        for peer in node.view.peer_ids():
            if peer in indegree:
                indegree[peer] += 1
    return indegree


def bootstrap_ring_views(node_ids: list[int], view_size: int, seed: int = 0):
    """Initial views: ring successors plus a few random peers."""

    rng = derive_rng(seed, "peer-sampling-bootstrap")
    views: dict[int, list[int]] = {}
    n = len(node_ids)
    for index, node in enumerate(node_ids):
        successors = [node_ids[(index + offset) % n] for offset in range(1, 3)]
        extras = [p for p in rng.sample(node_ids, min(view_size, n)) if p != node]
        merged = list(dict.fromkeys(successors + extras))[:view_size]
        views[node] = merged
    return views
