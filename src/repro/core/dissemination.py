"""HERMES wire messages.

The :class:`DisseminationEnvelope` travels with every transaction: it binds
the transaction to its origin's sequence number, the committee's threshold
signature (the TRS), and the overlay the seed selected.  Every relay can — and
does — re-verify all three.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.backend import CryptoBackend
from ..mempool.transaction import Transaction
from ..trs.committee import trs_binding

__all__ = [
    "ACK_KIND",
    "DISSEMINATE_KIND",
    "ROUTE_KIND",
    "GOSSIP_DIGEST_KIND",
    "GOSSIP_REQUEST_KIND",
    "GOSSIP_TXS_KIND",
    "DisseminationEnvelope",
]

DISSEMINATE_KIND = "hermes-disseminate"
ROUTE_KIND = "hermes-route"
ACK_KIND = "hermes-ack"
GOSSIP_DIGEST_KIND = "hermes-gossip-digest"
GOSSIP_REQUEST_KIND = "hermes-gossip-request"
GOSSIP_TXS_KIND = "hermes-gossip-txs"

# Envelope framing beyond the transaction and signature: origin, sequence,
# overlay id, and the 32-byte digest.
_ENVELOPE_EXTRA_BYTES = 48
# Shard tag (repro.sharding): a uint16 shard id, present only on sharded
# deployments so the unsharded wire format is untouched.
_SHARD_TAG_BYTES = 2


@dataclass(frozen=True, slots=True)
class DisseminationEnvelope:
    """A transaction plus everything needed to verify its dissemination."""

    tx: Transaction
    origin: int
    sequence: int
    signature: object
    overlay_id: int
    #: Which shard's committee sealed this envelope (None on unsharded
    #: deployments).  A relay configured for shard ``s`` rejects envelopes
    #: tagged for any other shard at admission — mis-routed traffic cannot
    #: leak across committees.
    shard_id: int | None = None

    def binding(self) -> bytes:
        """The committee-signed byte string this envelope claims a seed for."""

        return trs_binding(self.origin, self.sequence, self.tx.digest())

    def verify(self, backend: CryptoBackend, num_overlays: int) -> bool:
        """Check the TRS signature and that it really selects this overlay."""

        if not backend.verify_combined(self.binding(), self.signature):
            return False
        return (
            backend.seed_from_signature(self.signature, num_overlays)
            == self.overlay_id
        )

    def wire_bytes(self, backend: CryptoBackend) -> int:
        size = self.tx.size_bytes + backend.threshold_sig_size + _ENVELOPE_EXTRA_BYTES
        if self.shard_id is not None:
            size += _SHARD_TAG_BYTES
        return size
