"""HERMES protocol configuration."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["HermesConfig"]


@dataclass(frozen=True, slots=True)
class HermesConfig:
    """All HERMES knobs in one place.

    Defaults follow the paper's evaluation setup (§VIII-A): ``f = 1`` local
    fault bound, ``k = 10`` overlays.  ``gossip_fallback_delay_ms`` is the
    delay ``T`` of §VII-A after which background gossip starts reconciling;
    set ``gossip_fallback_enabled=False`` to measure pure-overlay robustness.
    """

    f: int = 1
    num_overlays: int = 10
    use_physical_paths: bool = False
    gossip_fallback_enabled: bool = True
    gossip_fallback_delay_ms: float = 500.0
    gossip_period_ms: float = 250.0
    gossip_fanout: int = 3
    sequence_gap_timeout_ms: float = 1_000.0
    exclude_violators: bool = True
    # §IV step 3 (optional): delivery acknowledgments flow back to the sender
    # through the same overlay, aggregated at each relay.
    acknowledgments_enabled: bool = False
    ack_flush_timeout_ms: float = 400.0
    # §I: "thorough logging to trace node activity" — collect the full
    # activity trace (TRS requests, dispatches, relays, deliveries, acks).
    tracing_enabled: bool = False
    # Sharded deployments (repro.sharding): which shard this system is.
    # None (the default) means unsharded — envelopes then carry no shard tag
    # and the wire format is byte-identical to the original protocol.
    shard_id: int | None = None

    def __post_init__(self) -> None:
        if self.shard_id is not None and self.shard_id < 0:
            raise ConfigurationError(
                f"shard_id must be None or >= 0, got {self.shard_id}"
            )
        if self.f < 0:
            raise ConfigurationError(f"f must be non-negative, got {self.f}")
        if self.num_overlays < 1:
            raise ConfigurationError(
                f"need at least one overlay, got {self.num_overlays}"
            )
        if self.gossip_fanout < 1:
            raise ConfigurationError(
                f"gossip_fanout must be positive, got {self.gossip_fanout}"
            )
        for name in (
            "gossip_fallback_delay_ms",
            "gossip_period_ms",
            "sequence_gap_timeout_ms",
            "ack_flush_timeout_ms",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    @property
    def committee_size(self) -> int:
        return 3 * self.f + 1

    @property
    def committee_threshold(self) -> int:
        return 2 * self.f + 1
