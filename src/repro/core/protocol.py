"""The HERMES protocol actor and system orchestrator.

:class:`HermesNode` implements every role a node can play:

* **sender** — obtains a TRS from the committee, then pushes the envelope to
  the selected overlay's entry points (directly, or source-routed over
  ``f+1`` vertex-disjoint physical paths);
* **committee member** — participates in Bracha RBC over seed requests and
  returns partial threshold signatures;
* **relay** — verifies signature / sequence / predecessor legitimacy, delivers
  to its mempool, forwards to its overlay successors, and logs violations;
* **gossiper** — after the fallback delay ``T``, reconciles mempools with
  random peers so that fault-density violations cannot cause permanent loss.

:class:`HermesSystem` wires a whole network: committee selection, threshold
key setup, overlay family construction + certification, and node creation.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..crypto.backend import CryptoBackend, FastCryptoBackend
from ..errors import ConfigurationError
from ..mempool.mempool import Mempool
from ..mempool.transaction import Transaction
from ..net.events import Message
from ..net.faults import Behavior, FaultPlan
from ..net.node import Network, ProtocolNode
from ..net.simulator import Simulator
from ..net.topology import PhysicalNetwork
from ..obs import Observability
from ..overlay.base import Overlay, TransportSpace
from ..overlay.encoding import OverlayCertificate, certify_overlays, decode_overlay
from ..overlay.paths import find_disjoint_paths
from ..overlay.robust_tree import build_overlay_family
from ..trs.committee import TrsCommitteeMember
from ..trs.seed import TrsClient, TrsResult
from .accountability import AccountabilityMonitor, ViolationKind, ViolationLog
from .config import HermesConfig
from .tracing import ActivityKind, ActivityRecord, ActivityTrace
from .dissemination import (
    ACK_KIND,
    DISSEMINATE_KIND,
    GOSSIP_DIGEST_KIND,
    GOSSIP_REQUEST_KIND,
    GOSSIP_TXS_KIND,
    ROUTE_KIND,
    DisseminationEnvelope,
)
from .sequencer import SequenceAuditor

__all__ = ["HermesNode", "HermesSystem"]

# Gossip digest cost model: a compact sketch plus ~1 byte per advertised id.
_DIGEST_BASE_BYTES = 32
_ROUTE_EXTRA_BYTES = 16


class HermesNode(ProtocolNode):
    """One HERMES participant (see module docstring for its roles)."""

    def __init__(
        self,
        node_id: int,
        network: Network,
        config: HermesConfig,
        backend: CryptoBackend,
        committee: Sequence[int],
        certificates: Sequence[OverlayCertificate],
        violation_log: ViolationLog,
        behavior: Behavior = Behavior.HONEST,
        observe_hook: Callable[["HermesNode", Transaction], None] | None = None,
        trace: ActivityTrace | None = None,
        decoded_overlays: dict[int, Overlay] | None = None,
    ) -> None:
        super().__init__(node_id, network)
        self.config = config
        self.backend = backend
        self.behavior = behavior
        self.committee = tuple(committee)
        self.mempool = Mempool(owner=node_id)
        self.monitor = AccountabilityMonitor(
            node_id, violation_log, exclude_violators=config.exclude_violators
        )
        self.auditor = SequenceAuditor(config.sequence_gap_timeout_ms)
        self.observe_hook = observe_hook
        self._flagged_gaps: set[tuple[int, int]] = set()
        # Transactions a malicious node refuses to forward (attack drivers
        # populate this; the f+1 predecessor redundancy is what defeats it).
        self.censor_ids: set[int] = set()
        # (tx_id, overlay_id) pairs already forwarded — deduplicates the f+1
        # copies arriving from multiple predecessors, while still letting a
        # node that already *knew* the transaction (e.g. its origin sitting
        # inside the overlay) forward it when its overlay copy arrives.
        self._forwarded: set[tuple[int, int]] = set()
        # Acknowledgment aggregation (§IV step 3): per (tx, overlay), the set
        # of nodes covered by the acks received from successors so far.
        self._ack_covered: dict[tuple[int, int], set[int]] = {}
        self._ack_flushed: set[tuple[int, int]] = set()
        self._ack_origin: dict[tuple[int, int], int] = {}
        self._ack_sent: dict[tuple[int, int], frozenset[int]] = {}
        self._my_tx_ids: set[int] = set()
        self.trace = trace if config.tracing_enabled else None
        # Structured observability (repro.obs); None → all hooks are no-ops.
        self._obs = network.obs
        self._trs_started: dict[int, float] = {}
        # Sender side: nodes confirmed to have received each of our txs.
        self.ack_confirmations: dict[int, set[int]] = {}

        # Every node verifies the committee's certificate before trusting an
        # overlay description (Alg. 5's whole point).  Verification and
        # decoding are deterministic per certificate, so a system that owns
        # many nodes may do both once and share the result (the decoded
        # Overlay objects are read-only at runtime); *decoded_overlays* is
        # that precomputed map.  Directly constructed nodes keep the per-node
        # verify + decode path.
        if decoded_overlays is not None:
            self.overlays: dict[int, Overlay] = dict(decoded_overlays)
        else:
            self.overlays = {}
            for certificate in certificates:
                if not certificate.verify(backend):
                    continue  # unsigned overlay descriptions are ignored
                overlay = decode_overlay(certificate.encoded)
                self.overlays[overlay.overlay_id] = overlay

        self.trs_client = TrsClient(
            self, committee, config.f, backend, config.num_overlays
        )
        self.trs_member: TrsCommitteeMember | None = None
        if node_id in committee:
            self.trs_member = TrsCommitteeMember(self, committee, config.f, backend)

    def _trace(
        self,
        kind: ActivityKind,
        tx_id: int,
        overlay_id: int | None = None,
        peer: int | None = None,
    ) -> None:
        if self.trace is not None:
            self.trace.record(
                ActivityRecord(
                    time_ms=self.now,
                    node=self.node_id,
                    kind=kind,
                    tx_id=tx_id,
                    overlay_id=overlay_id,
                    peer=peer,
                )
            )

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def submit_transaction(self, tx: Transaction) -> None:
        """Start disseminating *tx*: obtain a TRS, then hit the entry points."""

        if self.behavior is Behavior.CRASH:
            return
        self.network.stats.record_submission(tx.tx_id, self.now)
        self._my_tx_ids.add(tx.tx_id)
        self._trace(ActivityKind.TRS_REQUESTED, tx.tx_id)
        obs = self._obs
        if obs is not None:
            self._trs_started[tx.tx_id] = self.now
            obs.event("tx.submit", tx_id=tx.tx_id, origin=self.node_id)
        self._deliver_locally(tx)

        def on_seed(result: TrsResult) -> None:
            if obs is not None:
                started = self._trs_started.pop(tx.tx_id, None)
                if started is not None:
                    latency = self.now - started
                    obs.metrics.histogram("hermes.trs.latency_ms").observe(latency)
                    obs.event(
                        "hermes.trs.acquired",
                        tx_id=tx.tx_id,
                        origin=self.node_id,
                        sequence=result.sequence,
                        overlay_id=result.overlay_id,
                        latency_ms=latency,
                    )
            envelope = DisseminationEnvelope(
                tx=tx,
                origin=self.node_id,
                sequence=result.sequence,
                signature=result.signature,
                overlay_id=result.overlay_id,
                shard_id=self.config.shard_id,
            )
            self._dispatch_to_entry_points(envelope)

        self.trs_client.request(tx.digest(), on_seed)

    def _dispatch_to_entry_points(self, envelope: DisseminationEnvelope) -> None:
        overlay = self.overlays.get(envelope.overlay_id)
        if overlay is None:
            raise ConfigurationError(
                f"node {self.node_id} lacks overlay {envelope.overlay_id}"
            )
        # First transmission of the transaction payload itself — the paper's
        # latency reference point (the TRS request only carried H(m)).
        self.network.stats.record_dissemination_start(envelope.tx.tx_id, self.now)
        self._trace(ActivityKind.DISPATCHED, envelope.tx.tx_id, envelope.overlay_id)
        if self._obs is not None:
            self._obs.event(
                "tx.dispatch",
                tx_id=envelope.tx.tx_id,
                origin=self.node_id,
                overlay_id=envelope.overlay_id,
                entry_points=len(overlay.entry_points),
            )
        size = envelope.wire_bytes(self.backend)
        tx_id, overlay_id = envelope.tx.tx_id, envelope.overlay_id
        if not self.config.use_physical_paths:
            # The transport provides f+1 trivially disjoint internet paths.
            for entry in overlay.entry_points:
                if entry == self.node_id:
                    self._accept(self.node_id, envelope)
                else:
                    self.send(
                        entry,
                        Message(
                            DISSEMINATE_KIND,
                            envelope,
                            size,
                            tx_id=tx_id,
                            overlay_id=overlay_id,
                        ),
                    )
            return
        paths = find_disjoint_paths(
            self.network.physical.graph,
            self.node_id,
            list(overlay.entry_points),
            self.config.f + 1,
        )
        for path in paths:
            if len(path) == 1:  # we are the entry point
                self._accept(self.node_id, envelope)
            elif len(path) == 2:
                self.send(
                    path[1],
                    Message(
                        DISSEMINATE_KIND,
                        envelope,
                        size,
                        tx_id=tx_id,
                        overlay_id=overlay_id,
                    ),
                )
            else:
                body = (envelope, tuple(path), 1)
                self.send(
                    path[1],
                    Message(
                        ROUTE_KIND,
                        body,
                        size + _ROUTE_EXTRA_BYTES,
                        tx_id=tx_id,
                        overlay_id=overlay_id,
                    ),
                )

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    def on_message(self, sender: int, message: Message) -> None:
        if self.behavior is Behavior.CRASH:
            return
        if self.trs_member is not None and self.trs_member.handles(message.kind):
            self.trs_member.handle(sender, message)
            return
        if self.trs_client.handles(message.kind):
            self.trs_client.handle(sender, message)
            return
        if message.kind == DISSEMINATE_KIND:
            self._accept(sender, message.payload)
        elif message.kind == ROUTE_KIND:
            self._route(sender, message)
        elif message.kind == ACK_KIND:
            self._on_ack(sender, message.payload)
        elif message.kind == GOSSIP_DIGEST_KIND:
            self._on_gossip_digest(sender, message.payload)
        elif message.kind == GOSSIP_REQUEST_KIND:
            self._on_gossip_request(sender, message.payload)
        elif message.kind == GOSSIP_TXS_KIND:
            self._on_gossip_txs(sender, message.payload)

    def _route(self, sender: int, message: Message) -> None:
        """Forward a source-routed envelope one hop toward its entry point.

        The destination entry point accepts the envelope on behalf of its
        origin: path relays cannot forge it (the TRS signature covers the
        origin, sequence and transaction), they can only deliver or drop it —
        and dropping is masked by the f+1 disjoint paths.
        """

        envelope, path, index = message.payload
        if self.node_id != path[index]:
            return  # misrouted; drop
        if index == len(path) - 1:
            self._accept(envelope.origin, envelope)
            return
        if self.behavior is Behavior.DROP_RELAY:
            return
        self.send(
            path[index + 1],
            Message(
                ROUTE_KIND,
                (envelope, path, index + 1),
                message.size_bytes,
                tx_id=envelope.tx.tx_id,
                overlay_id=envelope.overlay_id,
            ),
        )

    def _accept(self, sender: int, envelope: DisseminationEnvelope) -> None:
        """Verify and process a disseminated envelope (§VI-C checks)."""

        if self.monitor.is_excluded(sender) and sender != self.node_id:
            self.monitor.flag(
                ViolationKind.EXCLUDED_SENDER, sender, self.now, "message after exclusion"
            )
            return
        # Sharded deployments: traffic sealed for another shard's committee
        # is rejected at admission — mis-routed envelopes cannot leak across
        # shard boundaries (repro.sharding).
        if (
            self.config.shard_id is not None
            and envelope.shard_id != self.config.shard_id
        ):
            self.monitor.flag(
                ViolationKind.WRONG_SHARD,
                sender,
                self.now,
                f"envelope tagged for shard {envelope.shard_id}, "
                f"this relay serves shard {self.config.shard_id}",
            )
            return
        overlay = self.overlays.get(envelope.overlay_id)
        if overlay is None:
            self.monitor.flag(
                ViolationKind.WRONG_OVERLAY,
                sender,
                self.now,
                f"unknown overlay {envelope.overlay_id}",
            )
            return
        # Check (i): the threshold signature, and that it selects this overlay.
        if not envelope.verify(self.backend, self.config.num_overlays):
            self.monitor.flag(
                ViolationKind.BAD_SIGNATURE, sender, self.now, "invalid TRS"
            )
            return
        # Check (iii): sender must be a legitimate predecessor in the overlay
        # (entry points accept only from the origin; sender == self covers the
        # origin-is-entry-point case).
        if sender != self.node_id:
            if overlay.is_entry(self.node_id):
                if sender != envelope.origin:
                    self.monitor.flag(
                        ViolationKind.ILLEGITIMATE_PREDECESSOR,
                        sender,
                        self.now,
                        "non-origin delivered to entry point",
                    )
                    return
            elif sender not in overlay.valid_senders(self.node_id):
                self.monitor.flag(
                    ViolationKind.ILLEGITIMATE_PREDECESSOR,
                    sender,
                    self.now,
                    f"not a predecessor in overlay {envelope.overlay_id}",
                )
                return

        # Check (ii): sequence continuity auditing (never delays delivery).
        self._audit_sequence(envelope)
        self._trace(
            ActivityKind.RECEIVED, envelope.tx.tx_id, envelope.overlay_id, peer=sender
        )
        if envelope.tx.tx_id not in self.mempool:
            self._trace(
                ActivityKind.DELIVERED, envelope.tx.tx_id, envelope.overlay_id,
                peer=sender,
            )
            if self._obs is not None:
                depth = overlay.depth_of.get(self.node_id, 0)
                self._obs.metrics.histogram("hermes.overlay.hops").observe(depth)
        self._deliver_locally(
            envelope.tx,
            sender=sender,
            overlay_id=envelope.overlay_id,
            hops=overlay.depth_of.get(self.node_id, 0),
        )
        key = (envelope.tx.tx_id, envelope.overlay_id)
        if key in self._forwarded:
            return
        self._forwarded.add(key)
        if self.behavior is Behavior.DROP_RELAY or envelope.tx.tx_id in self.censor_ids:
            return  # Byzantine censorship: consume but never forward
        successors = self._forward_targets(envelope, overlay)
        for successor in successors:
            self._trace(
                ActivityKind.RELAYED, envelope.tx.tx_id, envelope.overlay_id,
                peer=successor,
            )
            self.send(
                successor,
                Message(
                    DISSEMINATE_KIND,
                    envelope,
                    envelope.wire_bytes(self.backend),
                    tx_id=envelope.tx.tx_id,
                    overlay_id=envelope.overlay_id,
                ),
            )
        if self.config.acknowledgments_enabled:
            self._ack_origin[key] = envelope.origin
            if overlay.is_leaf(self.node_id):
                # Leaves acknowledge immediately, back along the overlay.
                self._flush_ack(envelope.tx.tx_id, envelope.overlay_id)
            else:
                # Interior nodes wait for successor acks, with a flush
                # timeout staged by height (deeper nodes report first) so
                # Byzantine successors cannot mute the report.
                self._ack_covered.setdefault(key, set())
                height = overlay.max_depth() - overlay.depth_of[self.node_id]
                self.schedule(
                    self.config.ack_flush_timeout_ms * max(height, 1),
                    lambda: self._flush_ack(envelope.tx.tx_id, envelope.overlay_id),
                )

    def _audit_sequence(self, envelope: DisseminationEnvelope) -> None:
        origin, sequence = envelope.origin, envelope.sequence
        self.auditor.observe(origin, sequence, self.now)
        gaps = self.auditor.pending_gaps(origin)
        if not gaps:
            return

        def check_later() -> None:
            if self.behavior is Behavior.CRASH:
                return
            for missing in self.auditor.expired_gaps(origin, self.now):
                key = (origin, missing)
                if key not in self._flagged_gaps:
                    self._flagged_gaps.add(key)
                    self.monitor.flag(
                        ViolationKind.SEQUENCE_GAP,
                        origin,
                        self.now,
                        f"sequence {missing} never disseminated",
                    )

        self.schedule(self.config.sequence_gap_timeout_ms, check_later)

    def _forward_targets(self, envelope: DisseminationEnvelope, overlay) -> list[int]:
        """Which successors to forward *envelope* to.

        The default is all of them (the f+1-redundant robust-tree flow);
        extensions may thin the flow when redundancy is provided elsewhere
        (e.g. erasure-coded shards, repro.core.batching).
        """

        return list(overlay.successors.get(self.node_id, ()))

    # ------------------------------------------------------------------
    # Acknowledgments (§IV step 3, optional)
    # ------------------------------------------------------------------

    def _flush_ack(self, tx_id: int, overlay_id: int) -> None:
        """Send the aggregated ack one level up the dissemination overlay.

        Re-invocations after new coverage arrived send incremental updates;
        unchanged coverage is never re-sent.
        """

        key = (tx_id, overlay_id)
        if self.behavior in (Behavior.DROP_RELAY, Behavior.CRASH):
            return
        overlay = self.overlays.get(overlay_id)
        origin = self._ack_origin.get(key)
        if overlay is None or origin is None:
            return
        covered = frozenset(self._ack_covered.get(key, set()) | {self.node_id})
        if self._ack_sent.get(key) == covered:
            return
        self._ack_sent[key] = covered
        self._ack_flushed.add(key)
        self._trace(ActivityKind.ACKED, tx_id, overlay_id)
        body = (tx_id, overlay_id, covered)
        message = Message(ACK_KIND, body, 48 + 8 * len(covered))
        if overlay.is_entry(self.node_id):
            if origin == self.node_id:
                self.ack_confirmations.setdefault(tx_id, set()).update(covered)
            else:
                self.send(origin, message)
        else:
            for predecessor in overlay.predecessors.get(self.node_id, ()):
                self.send(predecessor, message)

    def _on_ack(self, sender: int, body: tuple[int, int, frozenset[int]]) -> None:
        tx_id, overlay_id, covered = body
        overlay = self.overlays.get(overlay_id)
        if overlay is None:
            return
        # The origin receives the final, entry-point-aggregated reports.
        if tx_id in self._my_tx_ids:
            if sender in overlay.entry_points:
                self.ack_confirmations.setdefault(tx_id, set()).update(covered)
            return
        # Relays only accept acks from their own overlay successors.
        if sender not in overlay.successors.get(self.node_id, ()):
            self.monitor.flag(
                ViolationKind.ILLEGITIMATE_PREDECESSOR,
                sender,
                self.now,
                f"ack from non-successor in overlay {overlay_id}",
            )
            return
        key = (tx_id, overlay_id)
        state = self._ack_covered.setdefault(key, set())
        state.update(covered)
        state.add(sender)
        # Flush when the whole successor set reported, or push an
        # incremental update if we already reported once.
        if set(overlay.successors[self.node_id]) <= state or key in self._ack_flushed:
            self._flush_ack(tx_id, overlay_id)

    def _deliver_locally(
        self,
        tx: Transaction,
        sender: int | None = None,
        **attrs: object,
    ) -> None:
        """Record *tx* in the mempool; fresh remote arrivals emit ``tx.deliver``.

        *sender* is the immediate predecessor the transaction arrived from
        (None for the origin's own copy), which is the parent edge the
        dissemination-tree reconstruction in :mod:`repro.obs.analysis` reads.
        """

        if self.mempool.add(tx, self.now):
            self.network.stats.record_delivery(tx.tx_id, self.node_id, self.now)
            if self._obs is not None:
                self._obs.metrics.counter("mempool.insertions").inc()
                self._obs.metrics.gauge("mempool.depth.max").track_max(
                    len(self.mempool)
                )
                if sender is not None and sender != self.node_id:
                    self._obs.event(
                        "tx.deliver",
                        tx_id=tx.tx_id,
                        node=self.node_id,
                        sender=sender,
                        **attrs,
                    )
            if self.observe_hook is not None:
                self.observe_hook(self, tx)

    # ------------------------------------------------------------------
    # Gossip fallback (§VII-A)
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        if not self.config.gossip_fallback_enabled:
            return
        # Stagger the first round to avoid a synchronized burst.  The loop is
        # scheduled even for crashed nodes: each round no-ops while the node
        # is down (see _gossip_round), so a chaos recovery flips the node
        # straight back into the reconciliation cadence without rewiring.
        first = self.config.gossip_fallback_delay_ms * (1 + self.rng.random())
        self.schedule(first, self._gossip_round)

    def _gossip_round(self) -> None:
        if self.behavior is Behavior.CRASH:
            # Down — keep the cadence ticking but touch nothing (no sends, no
            # rng draws), so honest nodes' random streams are unaffected.
            self.schedule(self.config.gossip_period_ms, self._gossip_round)
            return
        peers = [n for n in self.network.node_ids() if n != self.node_id]
        fanout = min(self.config.gossip_fanout, len(peers))
        if fanout:
            known = self.mempool.known_ids()
            size = _DIGEST_BASE_BYTES + len(known)
            for peer in self.rng.sample(peers, fanout):
                self.send(peer, Message(GOSSIP_DIGEST_KIND, known, size))
        self.schedule(self.config.gossip_period_ms, self._gossip_round)

    def _on_gossip_digest(self, sender: int, known_ids: frozenset[int]) -> None:
        missing = self.mempool.absent_locally(known_ids)
        if missing and self.behavior is not Behavior.DROP_RELAY:
            size = _DIGEST_BASE_BYTES + 8 * len(missing)
            self.send(sender, Message(GOSSIP_REQUEST_KIND, tuple(missing), size))
        # Symmetric push: offer what the peer lacks.
        extra = self.mempool.missing_from(known_ids)
        if extra and self.behavior is not Behavior.DROP_RELAY:
            txs = [self.mempool.get(tx_id) for tx_id in extra]
            txs = [tx for tx in txs if tx is not None]
            if txs:
                size = sum(tx.size_bytes for tx in txs)
                self.send(sender, Message(GOSSIP_TXS_KIND, tuple(txs), size,
                                          tx_id=txs[0].tx_id if len(txs) == 1 else None))

    def _on_gossip_request(self, sender: int, tx_ids: tuple[int, ...]) -> None:
        if self.behavior is Behavior.DROP_RELAY:
            return
        txs = [self.mempool.get(tx_id) for tx_id in tx_ids]
        txs = [tx for tx in txs if tx is not None]
        if txs:
            size = sum(tx.size_bytes for tx in txs)
            self.send(sender, Message(GOSSIP_TXS_KIND, tuple(txs), size,
                                      tx_id=txs[0].tx_id if len(txs) == 1 else None))

    def _on_gossip_txs(self, sender: int, txs: tuple[Transaction, ...]) -> None:
        for tx in txs:
            self._deliver_locally(tx, sender=sender, via="gossip")


class HermesSystem:
    """Builds and owns a complete HERMES deployment on one simulator."""

    # Subclasses may substitute an extended node implementation (e.g. the
    # erasure-coded batching node of repro.core.batching).
    node_class: type[HermesNode] = HermesNode

    def __init__(
        self,
        physical: PhysicalNetwork,
        config: HermesConfig | None = None,
        fault_plan: FaultPlan | None = None,
        backend: CryptoBackend | None = None,
        overlays: Sequence[Overlay] | None = None,
        observe_hook: Callable[[HermesNode, Transaction], None] | None = None,
        optimize_overlays: bool = True,
        seed: int = 0,
        obs: Observability | None = None,
    ) -> None:
        self.physical = physical
        self.config = config if config is not None else HermesConfig()
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan.honest()
        self.backend = backend if backend is not None else FastCryptoBackend(seed)
        self.simulator = Simulator()
        self.obs = obs
        self.network = Network(self.simulator, physical, seed=seed, obs=obs)
        self.violation_log = ViolationLog()
        self.activity_trace = ActivityTrace(enabled=self.config.tracing_enabled)

        node_ids = physical.nodes()
        if len(node_ids) < self.config.committee_size:
            raise ConfigurationError(
                f"{len(node_ids)} nodes cannot host a committee of "
                f"{self.config.committee_size}"
            )
        self.committee = self._select_committee(node_ids)
        self.backend.setup_committee(self.committee, self.config.committee_threshold)
        for node_id in node_ids:
            self.backend.register_node(node_id)

        if overlays is None:
            overlays, self.rank_tracker = build_overlay_family(
                physical,
                f=self.config.f,
                k=self.config.num_overlays,
                optimize=optimize_overlays,
                seed=seed,
            )
        else:
            overlays = list(overlays)
            self.rank_tracker = None
        if len(overlays) != self.config.num_overlays:
            raise ConfigurationError(
                f"expected {self.config.num_overlays} overlays, got {len(overlays)}"
            )
        self.overlays = overlays
        self.certificates = certify_overlays(overlays, self.backend, self.committee)

        # Verify + decode each certificate once and share the result across
        # all N nodes (byte-identical to every node doing it itself, since
        # both steps are deterministic; nodes never mutate these objects).
        # Without this, construction is O(N · k · overlay size) — the single
        # largest setup cost at N = 10,000.
        decoded: dict[int, Overlay] = {}
        for certificate in self.certificates:
            if certificate.verify(self.backend):
                overlay = decode_overlay(certificate.encoded)
                decoded[overlay.overlay_id] = overlay

        self.nodes: dict[int, HermesNode] = {}
        for node_id in node_ids:
            self.nodes[node_id] = self.node_class(
                node_id,
                self.network,
                self.config,
                self.backend,
                self.committee,
                self.certificates,
                self.violation_log,
                behavior=self.fault_plan.behavior_of(node_id),
                observe_hook=observe_hook,
                trace=self.activity_trace,
                decoded_overlays=decoded,
            )

    def _select_committee(self, node_ids: list[int]) -> list[int]:
        """Pick a low-diameter committee around the most latency-central node.

        Any ``3f+1`` subset is correct; we pick the most central node and its
        ``3f`` nearest neighbours so the committee-internal echo/ready rounds
        of the TRS run at intra-region latency.  This matches the paper's
        observation that TRS overhead "slightly increases the average latency"
        — a geographically scattered committee would instead add several WAN
        round-trips to every message.
        """

        sample = node_ids[:: max(1, len(node_ids) // 16)] or node_ids

        def centrality(node: int) -> float:
            return sum(self.physical.transport_latency(node, other) for other in sample)

        center = min(node_ids, key=lambda n: (centrality(n), n))
        by_distance = sorted(
            (n for n in node_ids if n != center),
            key=lambda n: (self.physical.transport_latency(center, n), n),
        )
        return [center] + by_distance[: self.config.committee_size - 1]

    # -- driving ----------------------------------------------------------

    def start(self) -> None:
        self.network.start_all()

    def submit(self, origin: int, tx: Transaction) -> None:
        self.nodes[origin].submit_transaction(tx)

    def run(self, until_ms: float | None = None) -> float:
        return self.simulator.run(until_ms)

    @property
    def stats(self):
        return self.network.stats

    def honest_node_ids(self) -> list[int]:
        return self.fault_plan.honest_nodes(self.physical.nodes())
