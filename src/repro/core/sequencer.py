"""Receiver-side sequence auditing (§VI-C).

The committee already refuses to mint seeds for out-of-order sequence numbers
(sender-side enforcement, :mod:`repro.trs.committee`).  Receivers additionally
audit what they *observe*: for each origin they track which sequence numbers
have arrived, and flag the origin when a gap persists beyond a timeout —
evidence that the origin skipped (or selectively withheld) a message.

Messages are never delayed by auditing: holding deliveries hostage to
sequencing would hand the adversary a censorship lever, the opposite of
dissemination fairness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SequenceAuditor", "OriginView"]


@dataclass
class OriginView:
    """What one receiver has observed from one origin."""

    seen: set[int] = field(default_factory=set)
    highest: int = -1
    # gap sequence -> time it was first noticed
    gaps: dict[int, float] = field(default_factory=dict)


class SequenceAuditor:
    """Tracks per-origin sequence continuity for one receiving node."""

    def __init__(self, gap_timeout_ms: float) -> None:
        if gap_timeout_ms <= 0:
            raise ValueError(f"gap_timeout_ms must be positive, got {gap_timeout_ms}")
        self.gap_timeout_ms = gap_timeout_ms
        self._origins: dict[int, OriginView] = {}

    def observe(self, origin: int, sequence: int, now: float) -> bool:
        """Record that *origin*'s message *sequence* arrived.

        Returns ``False`` for duplicates (already observed), ``True``
        otherwise.  Newly implied gaps start their timeout clock at *now*.
        """

        if sequence < 0:
            raise ValueError(f"sequence must be non-negative, got {sequence}")
        view = self._origins.setdefault(origin, OriginView())
        if sequence in view.seen:
            return False
        view.seen.add(sequence)
        view.gaps.pop(sequence, None)
        if sequence > view.highest:
            for missing in range(view.highest + 1, sequence):
                if missing not in view.seen:
                    view.gaps.setdefault(missing, now)
            view.highest = sequence
        return True

    def expired_gaps(self, origin: int, now: float) -> list[int]:
        """Sequence numbers from *origin* missing for longer than the timeout."""

        view = self._origins.get(origin)
        if view is None:
            return []
        return sorted(
            seq
            for seq, first_noticed in view.gaps.items()
            if now - first_noticed >= self.gap_timeout_ms
        )

    def origins_with_expired_gaps(self, now: float) -> list[int]:
        return sorted(
            origin
            for origin in self._origins
            if self.expired_gaps(origin, now)
        )

    def pending_gaps(self, origin: int) -> list[int]:
        view = self._origins.get(origin)
        return sorted(view.gaps) if view else []

    def highest_seen(self, origin: int) -> int:
        view = self._origins.get(origin)
        return view.highest if view else -1
