"""Erasure-coded batch dissemination over HERMES (§VIII-D's optimization).

"First, HERMES could manipulate batches of transactions.  Then, an
(k+1, f+1+k) erasure coding scheme could divide a message into f+1+k chunks,
each one being disseminated over one of f+1+k disjoint paths.  A node would
then receive at least k+1 chunks and recover the original batch."

Realisation here: a batch of transactions is serialized, Reed–Solomon encoded
into ``f+1+k_r`` shards (:mod:`repro.core.erasure`), and every shard is
disseminated as its *own* HERMES message — each gets its own TRS seed and
therefore its own randomly selected overlay, which makes the shard paths
disjoint in expectation and keeps the selection unbiasable.  A receiver
reconstructs the batch from any ``k_r + 1`` shards, so up to ``f`` shard
streams may be lost to faulty overlays/relays.

Bandwidth: each node carries ``(f+1+k_r)/(k_r+1)`` of the batch bytes instead
of the full batch on every one of the ``f+1`` redundant tree paths — the
ablation benchmark quantifies the saving.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..mempool.transaction import Transaction
from .erasure import Shard, decode_shards, encode_shards, hermes_erasure_parameters
from .protocol import HermesNode, HermesSystem

__all__ = [
    "BatchingHermesNode",
    "BatchingHermesSystem",
    "serialize_batch",
    "deserialize_batch",
]

_SHARD_TAG = "shard"
_BATCH_HEADER = struct.Struct("!IIQ")  # tx count per record: id, origin, created(us)
_RECORD = struct.Struct("!QIQI")  # tx_id, origin, created_at_us, size_bytes


def serialize_batch(txs: list[Transaction]) -> bytes:
    """Serialize *txs*, padded to their nominal wire size.

    The padding keeps bandwidth accounting faithful: the batch occupies as
    many bytes as the transactions it represents would occupy individually.
    """

    if not txs:
        raise ConfigurationError("cannot serialize an empty batch")
    parts = [struct.pack("!I", len(txs))]
    for tx in txs:
        parts.append(
            _RECORD.pack(tx.tx_id, tx.origin, int(tx.created_at * 1000), tx.size_bytes)
        )
        tag = tx.tag.encode("utf-8")
        parts.append(struct.pack("!H", len(tag)))
        parts.append(tag)
    blob = b"".join(parts)
    nominal = sum(tx.size_bytes for tx in txs)
    if len(blob) < nominal:
        blob = blob + b"\x00" * (nominal - len(blob))
    return blob


def deserialize_batch(blob: bytes) -> list[Transaction]:
    """Reconstruct the transactions from a serialized batch."""

    (count,) = struct.unpack_from("!I", blob, 0)
    offset = 4
    txs = []
    for _ in range(count):
        tx_id, origin, created_us, size_bytes = _RECORD.unpack_from(blob, offset)
        offset += _RECORD.size
        (tag_length,) = struct.unpack_from("!H", blob, offset)
        offset += 2
        tag = blob[offset : offset + tag_length].decode("utf-8")
        offset += tag_length
        txs.append(
            Transaction(
                tx_id=tx_id,
                origin=origin,
                created_at=created_us / 1000,
                size_bytes=size_bytes,
                tag=tag,
            )
        )
    return txs


@dataclass
class _BatchAssembly:
    """Receiver-side shard collection for one batch."""

    data_shards: int
    payload_length: int
    shards: dict[int, Shard] = field(default_factory=dict)
    decoded: bool = False


class BatchingHermesNode(HermesNode):
    """A HERMES node that can disseminate and reassemble erasure-coded batches.

    Shard traffic is *thin-forwarded*: each node relays a shard only to the
    successors for which it is the designated primary parent, so every node
    receives each shard exactly once.  The f+1 per-tree redundancy that plain
    transactions enjoy is replaced by the cross-shard erasure redundancy —
    which is the whole point of the §VIII-D scheme: ``(f+1+k)/(k+1)``-factor
    overhead instead of ``f+1``-factor replication.
    """

    # Redundancy parameter k_r of the (k_r+1, f+1+k_r) scheme.
    redundancy: int = 2

    def _forward_targets(self, envelope, overlay):
        targets = super()._forward_targets(envelope, overlay)
        if envelope.tx.tag != _SHARD_TAG:
            return targets
        return [
            successor
            for successor in targets
            if min(overlay.predecessors[successor]) == self.node_id
        ]

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._assemblies: dict[int, _BatchAssembly] = {}
        self._batch_counter = 0
        self.batches_decoded = 0

    # -- sending -----------------------------------------------------------

    def submit_batch(self, txs: list[Transaction]) -> int:
        """Disseminate *txs* as one erasure-coded batch; returns the batch id."""

        if not txs:
            raise ConfigurationError("cannot submit an empty batch")
        batch_id = (self.node_id << 20) | self._batch_counter
        self._batch_counter += 1
        blob = serialize_batch(txs)
        data_shards, total_shards = hermes_erasure_parameters(
            self.config.f, self.redundancy
        )
        shards = encode_shards(blob, data_shards, total_shards)
        for tx in txs:
            self.network.stats.record_submission(tx.tx_id, self.now)
        for shard in shards:
            header = struct.pack(
                "!QIHI", batch_id, len(blob), data_shards, shard.index
            )
            shard_tx = Transaction.create(
                origin=self.node_id,
                created_at=self.now,
                size_bytes=len(shard.data) + len(header),
                tag=_SHARD_TAG,
                payload=header + shard.data,
            )
            self.submit_transaction(shard_tx)
        # Locally the batch is already known.
        for tx in txs:
            self._deliver_locally(tx)
        return batch_id

    # -- receiving -----------------------------------------------------------

    def _deliver_locally(
        self, tx: Transaction, sender: int | None = None, **attrs: object
    ) -> None:
        was_new = tx.tx_id not in self.mempool
        super()._deliver_locally(tx, sender=sender, **attrs)
        if was_new and tx.tag == _SHARD_TAG and tx.payload:
            self._absorb_shard(tx)

    def _absorb_shard(self, shard_tx: Transaction) -> None:
        header_size = struct.calcsize("!QIHI")
        if len(shard_tx.payload) < header_size:
            return
        batch_id, payload_length, data_shards, index = struct.unpack_from(
            "!QIHI", shard_tx.payload, 0
        )
        assembly = self._assemblies.setdefault(
            batch_id,
            _BatchAssembly(data_shards=data_shards, payload_length=payload_length),
        )
        if assembly.decoded:
            return
        assembly.shards[index] = Shard(
            index=index, data=shard_tx.payload[header_size:]
        )
        if len(assembly.shards) >= assembly.data_shards:
            blob = decode_shards(
                list(assembly.shards.values()),
                assembly.data_shards,
                assembly.payload_length,
            )
            assembly.decoded = True
            self.batches_decoded += 1
            for tx in deserialize_batch(blob):
                super()._deliver_locally(tx)


class BatchingHermesSystem(HermesSystem):
    """A HermesSystem whose nodes support erasure-coded batches."""

    node_class = BatchingHermesNode

    def submit_batch(self, origin: int, txs: list[Transaction]) -> int:
        node = self.nodes[origin]
        if not isinstance(node, BatchingHermesNode):  # pragma: no cover - safety
            raise ConfigurationError("node does not support batching")
        return node.submit_batch(txs)
