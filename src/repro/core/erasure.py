"""Erasure-coded dissemination — the paper's §VIII-D optimization.

"An (k+1, f+1+k) erasure coding scheme could divide a message into f+1+k
chunks, each one being disseminated over one of f+1+k disjoint paths.  A node
would then receive at least k+1 chunks and recover the original batch."

This module implements a real Reed–Solomon code over GF(2^8):

* :func:`encode_shards` — split a payload into ``data_shards`` stripes and
  extend them to ``total_shards`` coded shards (Vandermonde evaluation);
* :func:`decode_shards` — recover the payload from any ``data_shards`` of
  them (Gaussian elimination over the field);
* :func:`hermes_erasure_parameters` — the paper's (k+1, f+1+k) instantiation.

Losing up to ``total_shards - data_shards`` shards (the ``f`` faulty paths)
is tolerated exactly, which is the property the disjoint-path dissemination
needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = [
    "Shard",
    "encode_shards",
    "decode_shards",
    "hermes_erasure_parameters",
]

# GF(2^8) with the AES-style primitive polynomial x^8+x^4+x^3+x+1 (0x11b) and
# generator 3.
_EXP = [0] * 512
_LOG = [0] * 256


def _build_tables() -> None:
    value = 1
    for power in range(255):
        _EXP[power] = value
        _LOG[value] = power
        # Multiply by the generator 3 (i.e. x + 1): v*2 xor v, reduced.
        doubled = value << 1
        if doubled & 0x100:
            doubled ^= 0x11B
        value = (doubled ^ value) & 0xFF
    for power in range(255, 512):
        _EXP[power] = _EXP[power - 255]


_build_tables()


def _gf_mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def _gf_inv(a: int) -> int:
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return _EXP[255 - _LOG[a]]


@dataclass(frozen=True, slots=True)
class Shard:
    """One coded shard: its evaluation index and byte payload."""

    index: int
    data: bytes


def hermes_erasure_parameters(f: int, k: int) -> tuple[int, int]:
    """The paper's scheme: ``(data_shards, total_shards) = (k+1, f+1+k)``."""

    if f < 0 or k < 0:
        raise ConfigurationError("f and k must be non-negative")
    return k + 1, f + 1 + k


def _stripe(payload: bytes, data_shards: int) -> list[bytes]:
    """Split *payload* into ``data_shards`` equal stripes (zero padded)."""

    stripe_length = -(-len(payload) // data_shards) if payload else 1
    padded = payload.ljust(stripe_length * data_shards, b"\x00")
    return [
        padded[i * stripe_length : (i + 1) * stripe_length]
        for i in range(data_shards)
    ]


def encode_shards(payload: bytes, data_shards: int, total_shards: int) -> list[Shard]:
    """Encode *payload* into *total_shards* shards, any *data_shards* recover.

    Shard ``i`` holds, per byte position, the Vandermonde evaluation
    ``Σ_j stripe_j[pos] · α_i^j`` with ``α_i = i + 1`` (non-zero, distinct).
    """

    if data_shards < 1:
        raise ConfigurationError(f"data_shards must be >= 1, got {data_shards}")
    if total_shards < data_shards:
        raise ConfigurationError(
            f"total_shards {total_shards} < data_shards {data_shards}"
        )
    if total_shards > 255:
        raise ConfigurationError("GF(256) supports at most 255 shards")

    stripes = _stripe(payload, data_shards)
    stripe_length = len(stripes[0])
    shards = []
    for index in range(total_shards):
        alpha = index + 1
        # Precompute alpha^j for j in [0, data_shards).
        powers = [1] * data_shards
        for j in range(1, data_shards):
            powers[j] = _gf_mul(powers[j - 1], alpha)
        out = bytearray(stripe_length)
        for position in range(stripe_length):
            accumulator = 0
            for j in range(data_shards):
                accumulator ^= _gf_mul(stripes[j][position], powers[j])
            out[position] = accumulator
        shards.append(Shard(index=index, data=bytes(out)))
    return shards


def decode_shards(
    shards: list[Shard], data_shards: int, payload_length: int
) -> bytes:
    """Recover the payload from any *data_shards* distinct shards."""

    unique = {shard.index: shard for shard in shards}
    chosen = [unique[i] for i in sorted(unique)][:data_shards]
    if len(chosen) < data_shards:
        raise ConfigurationError(
            f"need {data_shards} distinct shards, got {len(unique)}"
        )
    stripe_length = len(chosen[0].data)
    if any(len(shard.data) != stripe_length for shard in chosen):
        raise ConfigurationError("shards have inconsistent lengths")

    # Build the Vandermonde system rows for the chosen evaluation points.
    matrix = []
    for shard in chosen:
        alpha = shard.index + 1
        row = [1] * data_shards
        for j in range(1, data_shards):
            row[j] = _gf_mul(row[j - 1], alpha)
        matrix.append(row)

    # Invert by Gauss-Jordan over GF(256), applying the same operations to an
    # identity matrix.
    n = data_shards
    inverse = [[1 if r == c else 0 for c in range(n)] for r in range(n)]
    work = [list(row) for row in matrix]
    for column in range(n):
        pivot_row = next(
            (r for r in range(column, n) if work[r][column] != 0), None
        )
        if pivot_row is None:
            raise ConfigurationError("singular decoding matrix (duplicate shards?)")
        work[column], work[pivot_row] = work[pivot_row], work[column]
        inverse[column], inverse[pivot_row] = inverse[pivot_row], inverse[column]
        pivot_inverse = _gf_inv(work[column][column])
        for c in range(n):
            work[column][c] = _gf_mul(work[column][c], pivot_inverse)
            inverse[column][c] = _gf_mul(inverse[column][c], pivot_inverse)
        for r in range(n):
            if r == column or work[r][column] == 0:
                continue
            factor = work[r][column]
            for c in range(n):
                work[r][c] ^= _gf_mul(factor, work[column][c])
                inverse[r][c] ^= _gf_mul(factor, inverse[column][c])

    stripes = [bytearray(stripe_length) for _ in range(n)]
    for position in range(stripe_length):
        column_values = [shard.data[position] for shard in chosen]
        for r in range(n):
            accumulator = 0
            for c in range(n):
                accumulator ^= _gf_mul(inverse[r][c], column_values[c])
            stripes[r][position] = accumulator
    payload = b"".join(bytes(stripe) for stripe in stripes)
    return payload[:payload_length]
