"""The open-loop load driver: inject a schedule, sample pressure, summarize.

:class:`LoadDriver` owns one run of one protocol system under one arrival
schedule.  It schedules every injection on the system's simulator up front
(open-loop: arrivals never wait for the system), samples mempool occupancy
and capacity-queue depth on a fixed cadence through ``repro.obs`` gauges, and
folds the run into a :class:`LoadResult` — the offered-load / goodput /
latency triple that saturation curves are made of.

A transaction counts as *delivered* when it reaches at least
``delivery_fraction`` of the system's nodes by the end of the run; goodput is
delivered transactions per second of injection window.  Under light load
goodput tracks offered load; past the capacity knee it plateaus while p95
latency inflates — see :mod:`repro.experiments.fig6_saturation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..mempool.transaction import Transaction
from ..net.stats import StreamingNetworkStats, summarize_latencies
from ..utils.validation import require_positive
from .arrival import ArrivalProcess, Injection

__all__ = ["LoadDriver", "LoadResult"]


@dataclass(frozen=True, slots=True)
class LoadResult:
    """One protocol's measurements under one offered load.

    Latency statistics are ``None`` (not NaN) when nothing was delivered, so
    results stay canonical-JSON-serializable for the content-addressed
    result store.
    """

    protocol: str
    offered_tps: float
    injected: int
    delivered: int
    goodput_tps: float
    mean_ms: float | None
    p50_ms: float | None
    p95_ms: float | None
    drop_rate: float
    capacity_drops: int
    goodput_kb_per_min: float
    bandwidth_kb_per_min: float
    max_queue_bytes: float
    mempool_peak: int
    mempool_mean: float
    duration_ms: float
    horizon_ms: float

    @property
    def delivery_ratio(self) -> float:
        """Fraction of injected transactions that were delivered."""

        return self.delivered / self.injected if self.injected else 0.0

    def to_json(self) -> dict[str, Any]:
        return {
            "protocol": self.protocol,
            "offered_tps": self.offered_tps,
            "injected": self.injected,
            "delivered": self.delivered,
            "goodput_tps": self.goodput_tps,
            "mean_ms": self.mean_ms,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "drop_rate": self.drop_rate,
            "capacity_drops": self.capacity_drops,
            "goodput_kb_per_min": self.goodput_kb_per_min,
            "bandwidth_kb_per_min": self.bandwidth_kb_per_min,
            "max_queue_bytes": self.max_queue_bytes,
            "mempool_peak": self.mempool_peak,
            "mempool_mean": self.mempool_mean,
            "duration_ms": self.duration_ms,
            "horizon_ms": self.horizon_ms,
        }

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "LoadResult":
        return cls(**{spec: doc[spec] for spec in cls.__slots__})


class LoadDriver:
    """Drives one system through one open-loop arrival schedule.

    The system must expose the shared lifecycle (``start`` / ``submit`` /
    ``run`` / ``stats`` / ``nodes`` / ``simulator`` / ``network``) — every
    protocol system in this repository does.
    """

    def __init__(
        self,
        system,
        arrivals: ArrivalProcess,
        *,
        protocol: str = "",
        delivery_fraction: float = 0.99,
        sample_interval_ms: float = 250.0,
        streaming: bool = False,
    ) -> None:
        if not 0.0 < delivery_fraction <= 1.0:
            raise ValueError(
                f"delivery_fraction must be in (0, 1], got {delivery_fraction}"
            )
        require_positive(sample_interval_ms, "sample_interval_ms")
        self.system = system
        self.arrivals = arrivals
        self.protocol = protocol or type(system).__name__
        self.delivery_fraction = delivery_fraction
        self.sample_interval_ms = sample_interval_ms
        # Opt-in constant-memory mode: network.stats is swapped for a
        # StreamingNetworkStats before the run and _summarize reads sketches
        # instead of iterating per-transaction delivery maps.  Off by default
        # so existing exact-stats runs stay byte-identical.
        self.streaming = streaming
        # One (mean occupancy, total egress backlog bytes) pair per sample.
        self.samples: list[tuple[float, float, float]] = []

    # -- sampling ----------------------------------------------------------

    def _sample(self) -> None:
        system = self.system
        nodes = system.nodes.values()
        occupancies = [
            len(node.mempool) for node in nodes if hasattr(node, "mempool")
        ]
        mean_occupancy = (
            sum(occupancies) / len(occupancies) if occupancies else 0.0
        )
        now = system.simulator.now
        capacity = system.network.capacity
        backlog = capacity.total_backlog_bytes(now) if capacity is not None else 0.0
        self.samples.append((now, mean_occupancy, backlog))
        obs = system.network.obs
        if obs is not None:
            obs.metrics.gauge("load.mempool.occupancy").set(mean_occupancy)
            obs.metrics.gauge("load.mempool.peak").track_max(
                max(occupancies, default=0)
            )
            obs.metrics.gauge("load.queue.backlog_bytes").set(backlog)
            obs.metrics.gauge("load.queue.peak_bytes").track_max(backlog)

    def _schedule_sampler(self, horizon_ms: float) -> None:
        simulator = self.system.simulator

        def tick() -> None:
            self._sample()
            if simulator.now + self.sample_interval_ms <= horizon_ms:
                simulator.schedule(self.sample_interval_ms, tick)

        simulator.schedule(self.sample_interval_ms, tick)

    # -- the run -----------------------------------------------------------

    def run(self, duration_ms: float, drain_ms: float = 0.0) -> LoadResult:
        """Inject for *duration_ms*, let the system drain *drain_ms* more.

        Offered load and goodput are both normalized by *duration_ms* (the
        injection window); the drain window only gives in-flight messages a
        chance to land before the books close.
        """

        require_positive(duration_ms, "duration_ms")
        if drain_ms < 0:
            raise ValueError(f"drain_ms must be >= 0, got {drain_ms}")
        system = self.system
        horizon_ms = duration_ms + drain_ms
        schedule = self.arrivals.schedule(duration_ms)
        if self.streaming:
            system.network.stats = StreamingNetworkStats(
                node_count=len(system.nodes),
                delivery_fraction=self.delivery_fraction,
            )
        system.start()
        for injection in schedule:
            self._schedule_injection(injection)
        self._schedule_sampler(horizon_ms)
        system.run(until_ms=horizon_ms)
        return self._summarize(schedule, duration_ms, horizon_ms)

    def _schedule_injection(self, injection: Injection) -> None:
        system = self.system

        def inject() -> None:
            tx = Transaction.create(
                origin=injection.origin, created_at=system.simulator.now
            )
            system.submit(injection.origin, tx)

        system.simulator.schedule_at(injection.time_ms, inject)

    def _summarize(
        self,
        schedule: tuple[Injection, ...],
        duration_ms: float,
        horizon_ms: float,
    ) -> LoadResult:
        system = self.system
        stats = system.stats
        node_count = len(system.nodes)
        duration_s = duration_ms / 1000.0
        if isinstance(stats, StreamingNetworkStats):
            delivered = stats.delivered_items
            summary = stats.latency_summary()
        else:
            delivered = 0
            latencies: list[float] = []
            for item in stats.send_times:
                reached = len(stats.deliveries.get(item, {}))
                if reached >= self.delivery_fraction * node_count:
                    delivered += 1
                    latencies.extend(stats.delivery_latencies(item))
            summary = summarize_latencies(latencies)
        capacity = system.network.capacity
        occupancies = [occupancy for _, occupancy, _ in self.samples]
        backlogs = [backlog for _, _, backlog in self.samples]
        return LoadResult(
            protocol=self.protocol,
            offered_tps=len(schedule) / duration_s,
            injected=len(schedule),
            delivered=delivered,
            goodput_tps=delivered / duration_s,
            mean_ms=None if summary.is_empty else summary.mean,
            p50_ms=None if summary.is_empty else summary.p50,
            p95_ms=None if summary.is_empty else summary.p95,
            drop_rate=stats.drop_rate(),
            capacity_drops=stats.capacity_drops,
            goodput_kb_per_min=stats.goodput_kb_per_minute(duration_ms),
            bandwidth_kb_per_min=stats.bandwidth_kb_per_minute(duration_ms),
            max_queue_bytes=(
                capacity.max_backlog_bytes if capacity is not None else 0.0
            ),
            mempool_peak=int(max(occupancies, default=0)),
            mempool_mean=(
                sum(occupancies) / len(occupancies) if occupancies else 0.0
            ),
            duration_ms=duration_ms,
            horizon_ms=horizon_ms,
        )
