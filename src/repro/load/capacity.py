"""Per-node link capacity: serialization delay and bounded egress queues.

The default transport charges bytes to :class:`~repro.net.stats.NetworkStats`
but schedules every transmission with pure propagation delay — links have
infinite capacity, so offered load can never saturate anything.  This module
adds the missing physics as an opt-in hook, in the same style as the chaos
:class:`~repro.chaos.disruption.LinkDisruptor`:

* every node owns an **uplink** (egress) and a **downlink** (ingress), each a
  FIFO server with a configured rate in KB/s; a message of ``w`` wire bytes
  occupies a link for ``w / rate`` milliseconds (its serialization delay) and
  later messages queue behind it;
* the egress queue is **bounded**: when the backlog (bytes not yet
  serialized) would exceed ``queue_bytes``, the transmission is dropped and
  the overflow is accounted explicitly — both here and in
  :meth:`NetworkStats.record_capacity_drop <repro.net.stats.NetworkStats>`;
* the downlink models ingress serialization only (no bound): real NICs drop
  on the sender's queue first, and a second bound would double-count.

Install with ``network.capacity = CapacityModel(CapacityConfig(...))``.  The
attribute defaults to ``None`` and the model draws **no randomness**, so
every capacity-disabled run is byte-identical to pre-capacity behavior and
enabled runs replay deterministically from the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils.validation import require_positive

__all__ = ["CapacityConfig", "CapacityModel", "EgressVerdict"]


@dataclass(frozen=True, slots=True)
class CapacityConfig:
    """Link rates (KB/s) and the egress queue bound (bytes) for every node.

    The defaults model a modest residential peer: 1 MB/s up, 4 MB/s down,
    with a 256 KiB egress buffer — far below data-center links on purpose,
    so saturation experiments reach the knee at simulatable rates.
    """

    uplink_kb_per_s: float = 1024.0
    downlink_kb_per_s: float = 4096.0
    queue_bytes: int = 256 * 1024

    def __post_init__(self) -> None:
        require_positive(self.uplink_kb_per_s, "uplink_kb_per_s")
        require_positive(self.downlink_kb_per_s, "downlink_kb_per_s")
        require_positive(self.queue_bytes, "queue_bytes")

    @property
    def uplink_bytes_per_ms(self) -> float:
        return self.uplink_kb_per_s * 1024.0 / 1000.0

    @property
    def downlink_bytes_per_ms(self) -> float:
        return self.downlink_kb_per_s * 1024.0 / 1000.0


@dataclass(frozen=True, slots=True)
class EgressVerdict:
    """What happened to one transmission at the sender's uplink."""

    dropped: bool
    #: Simulation time at which the last byte leaves the sender (propagation
    #: starts here).  Meaningless when dropped.
    finish_ms: float = 0.0
    #: Time the message spent waiting behind earlier traffic (excludes its
    #: own serialization delay).
    queued_ms: float = 0.0


_DROPPED = EgressVerdict(dropped=True)


class CapacityModel:
    """Tracks every node's link occupancy and answers per-transmission.

    The two-phase API mirrors the physical path: :meth:`admit_egress` runs at
    send time (queue bound, uplink serialization), :meth:`ingress_finish`
    places the message on the receiver's downlink once propagation delay is
    known.  Both phases reserve link time eagerly at send time — standard
    DES practice (the transport's ``service_time_ms`` does the same), and
    what keeps the model deterministic and O(1) per message.
    """

    def __init__(self, config: CapacityConfig | None = None) -> None:
        self.config = config if config is not None else CapacityConfig()
        self._uplink_busy_until: dict[int, float] = {}
        self._downlink_busy_until: dict[int, float] = {}
        # Deterministic counters for reports and the load driver's samples.
        self.drops = 0
        self.drops_by_node: dict[int, int] = {}
        self.max_backlog_bytes: float = 0.0

    # -- per-transmission evaluation -------------------------------------

    def backlog_bytes(self, node: int, now: float) -> float:
        """Bytes sitting in *node*'s egress queue at time *now*."""

        busy = self._uplink_busy_until.get(node, 0.0)
        return max(0.0, busy - now) * self.config.uplink_bytes_per_ms

    def admit_egress(self, src: int, wire_bytes: int, now: float) -> EgressVerdict:
        """Queue one message on *src*'s uplink, or drop it on overflow."""

        backlog = self.backlog_bytes(src, now)
        if backlog + wire_bytes > self.config.queue_bytes:
            self.drops += 1
            self.drops_by_node[src] = self.drops_by_node.get(src, 0) + 1
            return _DROPPED
        if backlog + wire_bytes > self.max_backlog_bytes:
            self.max_backlog_bytes = backlog + wire_bytes
        start = max(now, self._uplink_busy_until.get(src, 0.0))
        finish = start + wire_bytes / self.config.uplink_bytes_per_ms
        self._uplink_busy_until[src] = finish
        return EgressVerdict(dropped=False, finish_ms=finish, queued_ms=start - now)

    def ingress_finish(self, dst: int, wire_bytes: int, arrival_ms: float) -> float:
        """Serialize one message on *dst*'s downlink; returns delivery time."""

        start = max(arrival_ms, self._downlink_busy_until.get(dst, 0.0))
        finish = start + wire_bytes / self.config.downlink_bytes_per_ms
        self._downlink_busy_until[dst] = finish
        return finish

    # -- observation ------------------------------------------------------

    def total_backlog_bytes(self, now: float) -> float:
        """Sum of every node's egress backlog — the driver's queue gauge."""

        return sum(
            self.backlog_bytes(node, now) for node in self._uplink_busy_until
        )

    def reset(self) -> None:
        """Forget all link occupancy and counters (between repetitions)."""

        self._uplink_busy_until.clear()
        self._downlink_busy_until.clear()
        self.drops = 0
        self.drops_by_node = {}
        self.max_backlog_bytes = 0.0
