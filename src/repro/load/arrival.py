"""Seeded open-loop arrival processes with Zipf-skewed origin selection.

An arrival process answers one question: *when does each transaction enter
the system, and from which node?*  Open-loop means the schedule is fixed up
front and injections never wait for the system — exactly the regime in which
offered load can exceed capacity and saturation becomes measurable.

Four patterns:

* ``deterministic`` — one injection every ``1000 / rate_tps`` ms;
* ``poisson`` — exponential inter-arrival times (memoryless clients);
* ``mmpp`` — a two-state Markov-modulated Poisson process: quiet and burst
  states with exponential dwell times, burst rate ``burst_factor`` times the
  quiet rate, calibrated so the *long-run mean* still equals ``rate_tps``;
* ``flash-crowd`` — the base pattern with one window of ``flash_factor``-fold
  rate (an NFT mint, a liquidation cascade).

Origins are drawn Zipf-skewed (exponent ``zipf_s``; 0 = uniform) over a
seeded permutation of the node list, approximating the few-exchanges-send-
most-transactions shape of real mempool traffic.

Everything is replayable from ``(seed, params)``: a process object carries no
mutable state and :meth:`ArrivalProcess.schedule` derives fresh RNG streams
on every call, so the same process yields an identical schedule every time.

>>> process = make_arrivals("deterministic", rate_tps=10.0, origins=(1, 2, 3), seed=7)
>>> [round(inj.time_ms) for inj in process.schedule(500.0)]
[0, 100, 200, 300, 400]
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError
from ..utils.rng import derive_rng
from ..utils.validation import require_positive

__all__ = [
    "Injection",
    "ArrivalProcess",
    "DeterministicArrivals",
    "PoissonArrivals",
    "MMPPArrivals",
    "FlashCrowdArrivals",
    "flash_crowd_times",
    "make_arrivals",
    "ARRIVAL_PATTERNS",
]

ARRIVAL_PATTERNS = ("deterministic", "poisson", "mmpp", "flash-crowd")


@dataclass(frozen=True, slots=True)
class Injection:
    """One scheduled submission: a time on the simulation clock and an origin."""

    time_ms: float
    origin: int


class ArrivalProcess:
    """Base class: a replayable (seed, params) → injection-schedule function.

    Subclasses implement :meth:`_times`; origin selection is shared.  The
    ``pattern`` attribute names the process for factories and reports.
    """

    pattern = "abstract"

    def __init__(
        self,
        rate_tps: float,
        origins: Sequence[int],
        seed: int,
        zipf_s: float = 0.0,
    ) -> None:
        require_positive(rate_tps, "rate_tps")
        if not origins:
            raise ConfigurationError("arrival process needs at least one origin")
        if zipf_s < 0:
            raise ConfigurationError(f"zipf_s must be >= 0, got {zipf_s}")
        self.rate_tps = float(rate_tps)
        self.origins = tuple(origins)
        self.seed = int(seed)
        self.zipf_s = float(zipf_s)

    # -- the schedule -----------------------------------------------------

    def schedule(self, horizon_ms: float) -> tuple[Injection, ...]:
        """All injections in ``[0, horizon_ms)``, identical on every call."""

        require_positive(horizon_ms, "horizon_ms")
        times = self._times(horizon_ms, derive_rng(self.seed, "load", self.pattern))
        pick = self._origin_picker()
        return tuple(Injection(time_ms=t, origin=pick()) for t in times)

    def _times(self, horizon_ms: float, rng: random.Random) -> list[float]:
        raise NotImplementedError

    # -- origin selection -------------------------------------------------

    def _origin_picker(self):
        """A Zipf-skewed (or uniform) seeded origin sampler.

        Ranks are assigned over a seeded permutation of the origin list, so
        *which* nodes are hot depends on the seed rather than on node-id
        order; weight of rank ``r`` is ``(r + 1) ** -zipf_s``.
        """

        rng = derive_rng(self.seed, "load", "origins", self.pattern)
        if self.zipf_s == 0.0:
            return lambda: rng.choice(self.origins)
        permuted = list(self.origins)
        derive_rng(self.seed, "load", "zipf-permutation").shuffle(permuted)
        cumulative = list(
            itertools.accumulate(
                (rank + 1) ** -self.zipf_s for rank in range(len(permuted))
            )
        )
        total = cumulative[-1]

        def pick() -> int:
            return permuted[bisect.bisect_left(cumulative, rng.random() * total)]

        return pick

    # -- bookkeeping ------------------------------------------------------

    @property
    def interval_ms(self) -> float:
        """Mean inter-arrival spacing implied by the configured rate."""

        return 1000.0 / self.rate_tps

    def describe(self) -> dict:
        """JSON-ready parameters (for manifests and reports)."""

        return {
            "pattern": self.pattern,
            "rate_tps": self.rate_tps,
            "zipf_s": self.zipf_s,
            "seed": self.seed,
            "origins": len(self.origins),
        }


class DeterministicArrivals(ArrivalProcess):
    """A metronome: one injection every ``1000 / rate_tps`` ms, starting at 0."""

    pattern = "deterministic"

    def _times(self, horizon_ms: float, rng: random.Random) -> list[float]:
        interval = self.interval_ms
        count = max(1, int(horizon_ms / interval + 1e-9))
        return [i * interval for i in range(count) if i * interval < horizon_ms]


class PoissonArrivals(ArrivalProcess):
    """Memoryless clients: exponential inter-arrival times at ``rate_tps``."""

    pattern = "poisson"

    def _times(self, horizon_ms: float, rng: random.Random) -> list[float]:
        rate_per_ms = self.rate_tps / 1000.0
        times: list[float] = []
        t = rng.expovariate(rate_per_ms)
        while t < horizon_ms:
            times.append(t)
            t += rng.expovariate(rate_per_ms)
        return times


class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (bursty traffic).

    Dwell times in the quiet and burst states are exponential with means
    ``dwell_ms`` and ``burst_dwell_ms``; the burst rate is ``burst_factor``
    times the quiet rate.  The quiet rate is solved so that the long-run mean
    rate equals ``rate_tps`` — bursty and smooth runs offer the *same* load,
    which is what makes their saturation curves comparable.
    """

    pattern = "mmpp"

    def __init__(
        self,
        rate_tps: float,
        origins: Sequence[int],
        seed: int,
        zipf_s: float = 0.0,
        burst_factor: float = 8.0,
        dwell_ms: float = 2_000.0,
        burst_dwell_ms: float = 400.0,
    ) -> None:
        super().__init__(rate_tps, origins, seed, zipf_s)
        if burst_factor < 1.0:
            raise ConfigurationError(
                f"burst_factor must be >= 1, got {burst_factor}"
            )
        require_positive(dwell_ms, "dwell_ms")
        require_positive(burst_dwell_ms, "burst_dwell_ms")
        self.burst_factor = float(burst_factor)
        self.dwell_ms = float(dwell_ms)
        self.burst_dwell_ms = float(burst_dwell_ms)
        # Long-run mean = (r_q * dwell + r_q * factor * burst_dwell) / total.
        total = self.dwell_ms + self.burst_dwell_ms
        self.quiet_rate_tps = rate_tps * total / (
            self.dwell_ms + self.burst_factor * self.burst_dwell_ms
        )

    def _times(self, horizon_ms: float, rng: random.Random) -> list[float]:
        times: list[float] = []
        t = 0.0
        bursting = False
        while t < horizon_ms:
            dwell_mean = self.burst_dwell_ms if bursting else self.dwell_ms
            state_end = min(horizon_ms, t + rng.expovariate(1.0 / dwell_mean))
            rate = self.quiet_rate_tps * (self.burst_factor if bursting else 1.0)
            rate_per_ms = rate / 1000.0
            t += rng.expovariate(rate_per_ms)
            while t < state_end:
                times.append(t)
                t += rng.expovariate(rate_per_ms)
            t = state_end
            bursting = not bursting
        return times


def flash_crowd_times(
    count: int,
    start_ms: float,
    period_ms: float,
    flash_at_ms: float,
    flash_duration_ms: float,
    flash_factor: float,
) -> list[float]:
    """*count* deterministic submission times with one accelerated window.

    Spacing is ``period_ms`` outside ``[flash_at_ms, flash_at_ms +
    flash_duration_ms)`` and ``period_ms / flash_factor`` inside — the
    fixed-count flash-crowd shape chaos scenarios use
    (:class:`repro.chaos.scenario.ChaosWorkload`), needing no randomness.
    """

    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    require_positive(period_ms, "period_ms")
    if flash_factor < 1.0:
        raise ConfigurationError(f"flash_factor must be >= 1, got {flash_factor}")
    flash_end = flash_at_ms + flash_duration_ms
    times = []
    t = start_ms
    for _ in range(count):
        times.append(t)
        in_flash = flash_at_ms <= t < flash_end
        t += period_ms / (flash_factor if in_flash else 1.0)
    return times


class FlashCrowdArrivals(ArrivalProcess):
    """The base pattern with one window of ``flash_factor``-fold rate.

    ``base`` selects the underlying pattern (``"poisson"`` or
    ``"deterministic"``); inside the window the instantaneous rate is
    multiplied, modeling a correlated demand spike rather than a change in
    long-run load.
    """

    pattern = "flash-crowd"

    def __init__(
        self,
        rate_tps: float,
        origins: Sequence[int],
        seed: int,
        zipf_s: float = 0.0,
        flash_at_ms: float = 2_000.0,
        flash_duration_ms: float = 1_000.0,
        flash_factor: float = 6.0,
        base: str = "poisson",
    ) -> None:
        super().__init__(rate_tps, origins, seed, zipf_s)
        if flash_at_ms < 0 or flash_duration_ms <= 0:
            raise ConfigurationError("flash window must start >= 0 and have length > 0")
        if flash_factor < 1.0:
            raise ConfigurationError(f"flash_factor must be >= 1, got {flash_factor}")
        if base not in ("poisson", "deterministic"):
            raise ConfigurationError(f"unknown flash-crowd base {base!r}")
        self.flash_at_ms = float(flash_at_ms)
        self.flash_duration_ms = float(flash_duration_ms)
        self.flash_factor = float(flash_factor)
        self.base = base

    def _rate_at(self, t: float) -> float:
        in_flash = self.flash_at_ms <= t < self.flash_at_ms + self.flash_duration_ms
        return self.rate_tps * (self.flash_factor if in_flash else 1.0)

    def _times(self, horizon_ms: float, rng: random.Random) -> list[float]:
        times: list[float] = []
        t = 0.0
        while True:
            rate_per_ms = self._rate_at(t) / 1000.0
            if self.base == "poisson":
                t += rng.expovariate(rate_per_ms)
            else:
                t += 1.0 / rate_per_ms
            if t >= horizon_ms:
                return times
            times.append(t)


_PATTERNS: dict[str, type[ArrivalProcess]] = {
    "deterministic": DeterministicArrivals,
    "poisson": PoissonArrivals,
    "mmpp": MMPPArrivals,
    "flash-crowd": FlashCrowdArrivals,
}


def make_arrivals(
    pattern: str,
    *,
    rate_tps: float,
    origins: Sequence[int],
    seed: int,
    zipf_s: float = 0.0,
    **params,
) -> ArrivalProcess:
    """Build an arrival process by pattern name (CLI / runner-task entry).

    Extra keyword arguments are forwarded to the pattern's constructor (e.g.
    ``burst_factor`` for ``mmpp``, ``flash_factor`` for ``flash-crowd``).
    """

    cls = _PATTERNS.get(pattern)
    if cls is None:
        raise ConfigurationError(
            f"unknown arrival pattern {pattern!r}; choose from {ARRIVAL_PATTERNS}"
        )
    return cls(rate_tps, origins, seed, zipf_s, **params)
