"""Open-loop workload generation and link/node capacity modeling.

The experiments in :mod:`repro.experiments` measure protocols under light,
hand-scheduled workloads on links of infinite capacity.  This package adds
the two ingredients of a saturation study:

* :mod:`repro.load.arrival` — seeded, replayable arrival processes
  (deterministic, Poisson, MMPP bursty, flash-crowd) with Zipf-skewed
  origin selection: *when* transactions arrive and *from where*;
* :mod:`repro.load.capacity` — per-node uplink/downlink rates and bounded
  egress queues, installed on a :class:`~repro.net.node.Network` via the
  opt-in ``network.capacity`` hook: *what the wire can carry*;
* :mod:`repro.load.driver` — the open-loop :class:`LoadDriver` that injects
  a schedule into a protocol system, samples mempool occupancy and queue
  depth through :mod:`repro.obs` gauges, and reports offered load, goodput
  and latency percentiles as one :class:`LoadResult`.

The capacity hook defaults to ``None``: every experiment that does not
install a model runs byte-identically to before this package existed.  The
saturation experiment itself lives in
:mod:`repro.experiments.fig6_saturation` and on the command line as
``python -m repro load``.
"""

from .arrival import (
    ARRIVAL_PATTERNS,
    ArrivalProcess,
    DeterministicArrivals,
    FlashCrowdArrivals,
    Injection,
    MMPPArrivals,
    PoissonArrivals,
    flash_crowd_times,
    make_arrivals,
)
from .capacity import CapacityConfig, CapacityModel, EgressVerdict
from .driver import LoadDriver, LoadResult

__all__ = [
    "ARRIVAL_PATTERNS",
    "ArrivalProcess",
    "CapacityConfig",
    "CapacityModel",
    "DeterministicArrivals",
    "EgressVerdict",
    "FlashCrowdArrivals",
    "Injection",
    "LoadDriver",
    "LoadResult",
    "MMPPArrivals",
    "PoissonArrivals",
    "flash_crowd_times",
    "make_arrivals",
]
