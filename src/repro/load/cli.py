"""``python -m repro load`` — saturation sweeps from the shell.

Examples::

    python -m repro load                                  # default sweep
    python -m repro load --rate 5 --rate 20 --rate 80     # custom rates
    python -m repro load --pattern mmpp --protocol hermes --protocol lzero
    python -m repro load --capacity 32 --queue-kb 32      # tighter uplinks
    python -m repro load --no-capacity                    # infinite links
    python -m repro load --jobs 4 --results-dir results/fig6   # resumable
    python -m repro load --json                           # canonical JSON
"""

from __future__ import annotations

import argparse
import json
import sys

from ..errors import ReproError

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    from .arrival import ARRIVAL_PATTERNS

    parser = argparse.ArgumentParser(
        prog="python -m repro load",
        description=(
            "Sweep offered load across protocols under finite link capacity "
            "and report goodput, latency percentiles and the saturation knee "
            "(see docs/load.md)."
        ),
    )
    parser.add_argument(
        "--rate",
        action="append",
        type=float,
        dest="rates",
        metavar="TPS",
        help="offered rate in tx/s (repeatable; default: the fig6 sweep)",
    )
    parser.add_argument(
        "--pattern",
        choices=ARRIVAL_PATTERNS,
        default="poisson",
        help="arrival process (default: poisson)",
    )
    parser.add_argument(
        "--protocol",
        action="append",
        choices=["hermes", "lzero", "narwhal", "mercury"],
        dest="protocols",
        help="protocol to sweep (repeatable; default: all four)",
    )
    parser.add_argument("--num-nodes", type=int, default=40)
    parser.add_argument("--f", type=int, default=1, help="per-overlay fault bound")
    parser.add_argument("--k", type=int, default=3, help="number of overlays")
    parser.add_argument(
        "--zipf", type=float, default=0.0, metavar="S",
        help="Zipf skew of origin selection (0 = uniform; default 0)",
    )
    parser.add_argument(
        "--duration", type=float, default=6_000.0, metavar="MS",
        help="injection window in simulated ms (default 6000)",
    )
    parser.add_argument(
        "--capacity", type=float, default=32.0, metavar="KB_S",
        help="per-node uplink rate in KB/s (default 32; downlink is 4x)",
    )
    parser.add_argument(
        "--queue-kb", type=float, default=32.0, metavar="KB",
        help="egress queue bound in KB (default 32)",
    )
    parser.add_argument(
        "--no-capacity",
        action="store_true",
        help="leave links infinite (measures the driver without saturation)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default 1 = serial)"
    )
    parser.add_argument(
        "--results-dir",
        help="content-addressed result store; re-invoking resumes the sweep",
    )
    parser.add_argument(
        "--no-resume",
        dest="resume",
        action="store_false",
        help="re-execute cells even when the store already has their records",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the result as canonical JSON instead of tables",
    )
    return parser


def _sweep_config(args: argparse.Namespace):
    from ..experiments.fig6_saturation import DEFAULT_RATES, Fig6Config

    # --no-capacity keeps the hook installed but effectively infinite: the
    # sweep grid stays one content-addressed task per point either way.
    uplink = 1e9 if args.no_capacity else args.capacity
    downlink = 4e9 if args.no_capacity else args.capacity * 4
    queue = 1 << 40 if args.no_capacity else int(args.queue_kb * 1024)
    return Fig6Config(
        num_nodes=args.num_nodes,
        f=args.f,
        k=args.k,
        rates_tps=tuple(args.rates) if args.rates else DEFAULT_RATES,
        pattern=args.pattern,
        zipf_s=args.zipf,
        duration_ms=args.duration,
        protocols=tuple(args.protocols) if args.protocols else
        ("hermes", "lzero", "narwhal", "mercury"),
        uplink_kb_per_s=uplink,
        downlink_kb_per_s=downlink,
        queue_bytes=queue,
        seed=args.seed,
    )


def main(argv: list[str] | None = None) -> int:
    from ..experiments import fig6_saturation

    args = build_parser().parse_args(argv)
    config = _sweep_config(args)
    try:
        result, report = fig6_saturation.run_parallel(
            config,
            jobs=args.jobs,
            results_dir=args.results_dir,
            resume=args.resume,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        doc = {
            "config": {
                "num_nodes": config.num_nodes,
                "pattern": config.pattern,
                "rates_tps": list(config.rates_tps),
                "uplink_kb_per_s": config.uplink_kb_per_s,
                "seed": config.seed,
            },
            "curves": {
                protocol: [point.to_json() for point in curve]
                for protocol, curve in result.curves.items()
            },
            "knees_tps": {
                protocol: result.knee_tps(protocol) for protocol in result.curves
            },
        }
        print(json.dumps(doc, sort_keys=True))
    else:
        print(fig6_saturation.format_result(result))
        print(
            f"\nsweep: {report.executed} executed, {report.skipped} resumed, "
            f"{report.failed} failed"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
