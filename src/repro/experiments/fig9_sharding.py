"""Fig. 9 — sharding scaling grid: aggregate goodput and cross-shard fairness.

The extension experiment for :mod:`repro.sharding`.  One fixed pool of
``total_nodes`` nodes with fixed per-node capacity is deployed as 1, 2, 4, …
shards (:class:`~repro.sharding.ShardedSystem`: independent TRS committees,
overlay families and capacity books per shard) and measured on two axes:

* **goodput scaling** — one open-loop arrival schedule at a rate past the
  unsharded knee, split across shards by the seeded
  :class:`~repro.sharding.ShardMap`.  The headline quantity is
  ``aggregate_goodput(k) / aggregate_goodput(1)``: sharding wins twice, by
  running committees in parallel *and* by shrinking each transaction's
  replication domain to one shard;
* **cross-shard fairness** — the PR 7 strategy zoo
  (:func:`~repro.sharding.run_sharded_adversary_trial`) run per shard at
  each adversary fraction, folded into the system-wide γ / inversion-rate
  verdict by :func:`~repro.sharding.cross_shard_fairness` (worst shard's γ;
  pair-weighted inversions).

Each grid cell — ``(num_shards, protocol, strategy, fraction)``, where
strategy ``none`` marks the goodput cells — is one content-addressed runner
task (``fig9.point``), so the sweep resumes for free:
``python -m repro sweep --figure fig9``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..load.arrival import make_arrivals
from ..load.capacity import CapacityConfig
from ..sharding.system import ShardedSystem
from ..sharding.trial import run_sharded_adversary_trial
from ..sharding.workload import ShardedLoadDriver, ShardedLoadResult
from ..utils.tables import format_table
from .harness import build_environment

__all__ = [
    "Fig9Config",
    "Fig9Result",
    "run",
    "format_result",
    "CELL_TASK",
    "cell_params",
    "run_cell",
    "from_records",
    "run_parallel",
]

CELL_TASK = "fig9.point"

#: Marks the goodput (honest open-loop load) cells of the grid.
NO_STRATEGY = "none"

#: Shard counts swept by default; 1 is the unsharded baseline every scaling
#: ratio is normalized against.
DEFAULT_SHARDS = (1, 2, 4)

DEFAULT_STRATEGIES = (NO_STRATEGY, "sandwich", "censor-reorder")

DEFAULT_FRACTIONS = (0.1, 0.2)


@dataclass(frozen=True, slots=True)
class Fig9Config:
    shard_counts: tuple[int, ...] = DEFAULT_SHARDS
    protocols: tuple[str, ...] = ("hermes",)
    strategies: tuple[str, ...] = DEFAULT_STRATEGIES
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS
    #: Fixed node pool re-deployed at every shard count — must divide evenly
    #: by every entry of ``shard_counts``.
    total_nodes: int = 48
    f: int = 1
    #: Overlays per shard.
    k: int = 3
    # Goodput half: offered rate past the unsharded knee (per-node capacity
    # is the same modest 32 KB/s uplink as Fig. 6 at every shard count).
    rate_tps: float = 80.0
    pattern: str = "poisson"
    zipf_s: float = 0.0
    duration_ms: float = 5_000.0
    drain_ms: float = 2_000.0
    map_policy: str = "uniform"
    map_seed: int = 0
    uplink_kb_per_s: float = 32.0
    downlink_kb_per_s: float = 128.0
    queue_bytes: int = 32 * 1024
    delivery_fraction: float = 0.99
    # Fairness half: per-shard strategy-zoo trials (fig7 conventions — pure
    # overlay dissemination, gossip fallback off).
    trials: int = 3
    background_txs: int = 24
    trial_horizon_ms: float = 5_000.0
    seed: int = 0

    def capacity_config(self) -> CapacityConfig:
        return CapacityConfig(
            uplink_kb_per_s=self.uplink_kb_per_s,
            downlink_kb_per_s=self.downlink_kb_per_s,
            queue_bytes=self.queue_bytes,
        )


@dataclass(frozen=True, slots=True)
class Fig9Result:
    config: Fig9Config
    #: (num_shards, protocol) -> the honest open-loop load measurement.
    goodput: dict[tuple[int, str], ShardedLoadResult] = field(
        default_factory=dict
    )
    #: (num_shards, protocol, strategy, fraction) -> aggregated fairness cell.
    fairness: dict[tuple[int, str, str, float], dict[str, Any]] = field(
        default_factory=dict
    )

    def scaling(self, num_shards: int, protocol: str) -> float | None:
        """``aggregate_goodput(num_shards) / aggregate_goodput(1)``."""

        base = self.goodput.get((1, protocol))
        point = self.goodput.get((num_shards, protocol))
        if base is None or point is None or base.aggregate_goodput_tps <= 0:
            return None
        return point.aggregate_goodput_tps / base.aggregate_goodput_tps


def _trial_seed(strategy: str, fraction: float, num_shards: int, trial: int) -> int:
    """Deterministic, collision-free seed per fairness trial (fig7 style)."""

    return (
        1_000_000 * sum(ord(ch) for ch in strategy)
        + 10_000 * int(round(fraction * 100))
        + 100 * num_shards
        + trial
    )


def _run_goodput_cell(
    config: Fig9Config, num_shards: int, protocol: str
) -> ShardedLoadResult:
    system = ShardedSystem(
        num_shards,
        config.total_nodes,
        protocol=protocol,
        f=config.f,
        k=config.k,
        seed=config.seed,
        map_policy=config.map_policy,
        map_seed=config.map_seed,
        capacity=config.capacity_config(),
    )
    arrivals = make_arrivals(
        config.pattern,
        rate_tps=config.rate_tps,
        origins=list(range(config.total_nodes)),
        seed=config.seed,
        zipf_s=config.zipf_s,
    )
    driver = ShardedLoadDriver(
        system,
        arrivals,
        protocol=protocol,
        delivery_fraction=config.delivery_fraction,
    )
    return driver.run(config.duration_ms, config.drain_ms)


def _run_fairness_cell(
    config: Fig9Config,
    num_shards: int,
    protocol: str,
    strategy: str,
    fraction: float,
) -> dict[str, Any]:
    records = []
    for trial in range(config.trials):
        result = run_sharded_adversary_trial(
            num_shards,
            config.total_nodes,
            strategy=strategy,
            malicious_fraction=fraction,
            protocol=protocol,
            f=config.f,
            k=config.k,
            seed=config.seed,
            hermes_overrides={"gossip_fallback_enabled": False},
            trial_seed=_trial_seed(strategy, fraction, num_shards, trial),
            background_txs=config.background_txs,
            horizon_ms=config.trial_horizon_ms,
        )
        records.append(result.as_record())
    trials = len(records)
    return {
        "num_shards": num_shards,
        "protocol": protocol,
        "strategy": strategy,
        "fraction": fraction,
        "trials": trials,
        "gamma_mean": sum(r["gamma"] for r in records) / trials,
        "gamma_min": min(r["gamma"] for r in records),
        "inversion_mean": sum(r["inversion_rate"] for r in records) / trials,
        "attacker_wins": sum(r["attacker_wins"] for r in records),
        "victims_censored": sum(r["victims_censored"] for r in records),
        "records": records,
    }


def run(config: Fig9Config | None = None) -> Fig9Result:
    if config is None:
        config = Fig9Config()
    goodput: dict[tuple[int, str], ShardedLoadResult] = {}
    fairness: dict[tuple[int, str, str, float], dict[str, Any]] = {}
    for num_shards in config.shard_counts:
        for protocol in config.protocols:
            goodput[(num_shards, protocol)] = _run_goodput_cell(
                config, num_shards, protocol
            )
            for strategy in config.strategies:
                if strategy == NO_STRATEGY:
                    continue
                for fraction in config.fractions:
                    fairness[(num_shards, protocol, strategy, fraction)] = (
                        _run_fairness_cell(
                            config, num_shards, protocol, strategy, fraction
                        )
                    )
    return Fig9Result(config=config, goodput=goodput, fairness=fairness)


# ----------------------------------------------------------------------
# Sweep-runner integration (see repro.runner and docs/runner.md)
# ----------------------------------------------------------------------

_CELL_FIELDS: tuple[str, ...] = (
    "total_nodes",
    "f",
    "k",
    "rate_tps",
    "pattern",
    "zipf_s",
    "duration_ms",
    "drain_ms",
    "map_policy",
    "map_seed",
    "uplink_kb_per_s",
    "downlink_kb_per_s",
    "queue_bytes",
    "delivery_fraction",
    "trials",
    "background_txs",
    "trial_horizon_ms",
    "seed",
)


def cell_params(config: Fig9Config) -> list[dict[str, Any]]:
    """The grid: per (shards, protocol) one goodput cell plus the strategy ×
    fraction fairness cells."""

    base = {name: getattr(config, name) for name in _CELL_FIELDS}
    cells: list[dict[str, Any]] = []
    for num_shards in config.shard_counts:
        for protocol in config.protocols:
            cells.append(
                {
                    "num_shards": num_shards,
                    "protocol": protocol,
                    "strategy": NO_STRATEGY,
                    "fraction": 0.0,
                    **base,
                }
            )
            for strategy in config.strategies:
                if strategy == NO_STRATEGY:
                    continue
                for fraction in config.fractions:
                    cells.append(
                        {
                            "num_shards": num_shards,
                            "protocol": protocol,
                            "strategy": strategy,
                            "fraction": fraction,
                            **base,
                        }
                    )
    return cells


def _config_from_params(params: Mapping[str, Any]) -> Fig9Config:
    defaults = Fig9Config()
    kwargs: dict[str, Any] = {}
    for name in _CELL_FIELDS:
        default = getattr(defaults, name)
        value = params.get(name, default)
        kwargs[name] = type(default)(value)
    return Fig9Config(**kwargs)


def run_cell(params: Mapping[str, Any]) -> dict[str, Any]:
    """Measure one grid cell; the ``fig9.point`` runner task."""

    config = _config_from_params(params)
    num_shards = int(params["num_shards"])
    protocol = str(params["protocol"])
    strategy = str(params.get("strategy", NO_STRATEGY))
    # Warm the shared mirrored environment exactly like the direct path.
    build_environment(
        num_nodes=config.total_nodes // num_shards,
        f=config.f,
        k=config.k,
        seed=config.seed,
    )
    if strategy == NO_STRATEGY:
        result = _run_goodput_cell(config, num_shards, protocol)
        return {
            "kind": "goodput",
            "num_shards": num_shards,
            "protocol": protocol,
            "result": result.to_json(),
        }
    cell = _run_fairness_cell(
        config, num_shards, protocol, strategy, float(params["fraction"])
    )
    return {"kind": "fairness", **cell}


def from_records(
    config: Fig9Config, records: Iterable[Mapping[str, Any]]
) -> Fig9Result:
    """Fold stored run records back into the scaling grid."""

    goodput: dict[tuple[int, str], ShardedLoadResult] = {}
    fairness: dict[tuple[int, str, str, float], dict[str, Any]] = {}
    for record in records:
        if record.get("status") != "ok":
            continue
        doc = record["result"]
        if doc.get("kind") == "goodput":
            goodput[(int(doc["num_shards"]), str(doc["protocol"]))] = (
                ShardedLoadResult.from_json(doc["result"])
            )
        elif doc.get("kind") == "fairness":
            key = (
                int(doc["num_shards"]),
                str(doc["protocol"]),
                str(doc["strategy"]),
                float(doc["fraction"]),
            )
            fairness[key] = dict(doc)
    return Fig9Result(config=config, goodput=goodput, fairness=fairness)


def run_parallel(
    config: Fig9Config | None = None,
    *,
    jobs: int = 1,
    results_dir: str | None = None,
    resume: bool = True,
    timeout_s: float | None = None,
    progress=None,
    telemetry=None,
):
    """Run the scaling grid through the runner; see ``docs/runner.md``.

    Returns ``(result, sweep_report)``.
    """

    from ._sweep import run_cells

    if config is None:
        config = Fig9Config()
    report = run_cells(
        CELL_TASK,
        cell_params(config),
        jobs=jobs,
        results_dir=results_dir,
        resume=resume,
        timeout_s=timeout_s,
        progress=progress,
        telemetry=telemetry,
    )
    return from_records(config, report.records), report


def format_result(result: Fig9Result) -> str:
    config = result.config
    tables = []
    for protocol in config.protocols:
        rows = []
        for num_shards in config.shard_counts:
            point = result.goodput.get((num_shards, protocol))
            if point is None:
                continue
            scaling = result.scaling(num_shards, protocol)
            rows.append(
                [
                    num_shards,
                    point.offered_tps,
                    point.aggregate_goodput_tps,
                    float("nan") if scaling is None else scaling,
                    float("nan") if point.p95_ms is None else point.p95_ms,
                    point.routed_fraction,
                ]
            )
        if rows:
            tables.append(
                format_table(
                    [
                        "shards",
                        "offered tx/s",
                        "goodput tx/s",
                        "vs k=1",
                        "p95 ms",
                        "routed",
                    ],
                    rows,
                    title=(
                        f"Fig. 9 — {protocol} aggregate goodput scaling, "
                        f"N={config.total_nodes} total, "
                        f"{config.uplink_kb_per_s:.0f} KB/s uplinks"
                    ),
                )
            )
        rows = []
        for num_shards in config.shard_counts:
            for strategy in config.strategies:
                if strategy == NO_STRATEGY:
                    continue
                for fraction in config.fractions:
                    cell = result.fairness.get(
                        (num_shards, protocol, strategy, fraction)
                    )
                    if cell is None:
                        continue
                    rows.append(
                        [
                            num_shards,
                            strategy,
                            fraction,
                            cell["gamma_mean"],
                            cell["inversion_mean"],
                            cell["attacker_wins"],
                            cell["victims_censored"],
                        ]
                    )
        if rows:
            tables.append(
                format_table(
                    [
                        "shards",
                        "strategy",
                        "fraction",
                        "gamma",
                        "inversions",
                        "wins",
                        "censored",
                    ],
                    rows,
                    title=(
                        f"Fig. 9 — {protocol} cross-shard fairness under the "
                        f"strategy zoo ({config.trials} trials/cell)"
                    ),
                )
            )
    return "\n\n".join(tables)
