"""Shared glue between the figure scripts and the sweep runner.

Each figure module declares its repetition grid (``cell_params``), its cell
function (``run_cell``, registered as a task in :mod:`repro.runner.tasks`)
and its fold (``from_records``); this helper owns the common submission path
so every figure treats jobs/results-dir/resume identically.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from ..errors import SweepExecutionError

__all__ = ["run_cells"]


def run_cells(
    task: str,
    params_list: Iterable[Mapping[str, Any]],
    *,
    jobs: int = 1,
    results_dir: str | None = None,
    resume: bool = True,
    timeout_s: float | None = None,
    progress: Callable | None = None,
    telemetry=None,
):
    """Submit one figure's repetition grid and return the ``SweepReport``.

    Raises :class:`SweepExecutionError` if any cell failed — a figure folded
    from an incomplete grid would silently misreport the paper comparison.
    """

    from ..runner import ResultStore, RunSpec, run_sweep

    specs = [RunSpec(task=task, params=dict(p)) for p in params_list]
    store = ResultStore(results_dir) if results_dir is not None else None
    report = run_sweep(
        specs,
        store=store,
        jobs=jobs,
        resume=resume,
        timeout_s=timeout_s,
        progress=progress,
        telemetry=telemetry,
    )
    if report.failed:
        first = next(r for r in report.records if not r.ok)
        raise SweepExecutionError(
            f"{report.failed}/{report.total} cells of task {task!r} failed; "
            f"first error: {first.get('error')}"
        )
    return report
