"""Run every experiment and render one combined report.

``python -m repro.experiments.report`` prints the full paper-vs-measured
report (this is how the EXPERIMENTS.md numbers were produced); pass
``--quick`` for a smaller, faster configuration.  ``--trace out.jsonl``
additionally instruments the Fig. 3a latency runs with :mod:`repro.obs`:
the JSONL trace lands at the given path and the metrics + profile manifest
at ``out.manifest.json`` (see ``docs/observability.md`` for the schemas).
"""

from __future__ import annotations

import argparse
import os

from ..obs import Observability
from . import (
    fig2_overlays,
    fig3a_latency,
    fig3b_bandwidth,
    fig4_roles,
    fig5a_frontrunning,
    fig5b_robustness,
    table1,
)
from .harness import build_environment

__all__ = ["generate_report", "manifest_path_for"]


def manifest_path_for(trace_path: str) -> str:
    """``out.jsonl`` → ``out.manifest.json`` (suffix-agnostic)."""

    stem = trace_path[: -len(".jsonl")] if trace_path.endswith(".jsonl") else trace_path
    return stem + ".manifest.json"


def generate_report(
    quick: bool = False,
    seed: int = 0,
    obs: Observability | None = None,
    jobs: int = 1,
    results_dir: str | None = None,
    resume: bool = True,
) -> str:
    """Run all experiments and return the combined text report.

    *obs*, when given, instruments the Fig. 3a latency runs (the headline
    measurement); the caller is responsible for exporting the artifacts.

    With ``jobs > 1`` or *results_dir* set, the four sweep-shaped figures
    (3a, 3b, 5a, 5b) are submitted as repetition grids to
    :func:`repro.runner.run_sweep` — parallel across *jobs* worker
    processes and, with *results_dir*, resumable: a re-invocation loads
    completed cells from the store instead of re-running them.  Because the
    runner executes every cell as a fresh, fully-seeded process-independent
    unit, the sweep-path numbers are self-consistent across any ``jobs``
    value but can differ from the inline serial path (which shares one
    transaction-id counter across all protocol runs); see ``docs/runner.md``.
    """

    if quick:
        n_main, n_attack, trials, txs = 80, 60, 6, 4
    else:
        n_main, n_attack, trials, txs = 200, 150, 20, 10

    use_runner = jobs > 1 or results_dir is not None
    # Fig. 3a instrumentation is in-process; with obs active it stays inline.
    runner_fig3a = use_runner and obs is None

    def _store_dir(figure: str) -> str | None:
        if results_dir is None:
            return None
        return os.path.join(results_dir, figure)

    env_main = build_environment(num_nodes=n_main, f=1, k=10, seed=seed)
    env_attack = build_environment(num_nodes=n_attack, f=1, k=10, seed=seed)

    sections = []
    sections.append(
        table1.format_result(
            table1.run(table1.Table1Config(num_nodes=min(n_attack, 60), seed=seed))
        )
    )
    sections.append(
        fig2_overlays.format_result(
            fig2_overlays.run(fig2_overlays.Fig2Config(num_nodes=n_main, seed=seed))
        )
    )
    fig3a_config = fig3a_latency.Fig3aConfig(
        num_nodes=n_main, transactions=txs, seed=seed
    )
    if runner_fig3a:
        fig3a_result, _ = fig3a_latency.run_parallel(
            fig3a_config, jobs=jobs, results_dir=_store_dir("fig3a"), resume=resume
        )
    else:
        fig3a_result = fig3a_latency.run(fig3a_config, env=env_main, obs=obs)
    sections.append(fig3a_latency.format_result(fig3a_result))
    fig3b_config = fig3b_bandwidth.Fig3bConfig(num_nodes=n_main, seed=seed)
    if use_runner:
        fig3b_result, _ = fig3b_bandwidth.run_parallel(
            fig3b_config, jobs=jobs, results_dir=_store_dir("fig3b"), resume=resume
        )
    else:
        fig3b_result = fig3b_bandwidth.run(fig3b_config, env=env_main)
    sections.append(fig3b_bandwidth.format_result(fig3b_result))
    sections.append(
        fig4_roles.format_result(
            fig4_roles.run(
                fig4_roles.Fig4Config(num_nodes=n_main, seed=seed), env=env_main
            )
        )
    )
    fig5a_config = fig5a_frontrunning.Fig5aConfig(
        num_nodes=n_attack, trials=trials, seed=seed
    )
    if use_runner:
        fig5a_result, _ = fig5a_frontrunning.run_parallel(
            fig5a_config, jobs=jobs, results_dir=_store_dir("fig5a"), resume=resume
        )
    else:
        fig5a_result = fig5a_frontrunning.run(fig5a_config, env=env_attack)
    sections.append(fig5a_frontrunning.format_result(fig5a_result))
    fig5b_config = fig5b_robustness.Fig5bConfig(
        num_nodes=n_attack, trials=max(trials // 2, 4), seed=seed
    )
    if use_runner:
        fig5b_result, _ = fig5b_robustness.run_parallel(
            fig5b_config, jobs=jobs, results_dir=_store_dir("fig5b"), resume=resume
        )
    else:
        fig5b_result = fig5b_robustness.run(fig5b_config, env=env_attack)
    sections.append(fig5b_robustness.format_result(fig5b_result))
    header = (
        "HERMES reproduction — full experiment report\n"
        f"(environments: N={n_main} main, N={n_attack} attack sweeps; "
        f"overlay build {env_main.build_seconds:.1f}s)\n"
    )
    return header + "\n\n".join(sections) + "\n"


def main(argv: list[str] | None = None) -> None:  # pragma: no cover - CLI entry
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller, faster run")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--trace",
        metavar="OUT.JSONL",
        help="instrument the Fig. 3a runs; write a JSONL trace here and the "
        "metrics/profile manifest next to it (.manifest.json)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run the sweep-shaped figures (3a/3b/5a/5b) across this many "
        "worker processes via repro.runner",
    )
    parser.add_argument(
        "--results-dir",
        metavar="DIR",
        help="content-addressed result store for the sweep-shaped figures; "
        "enables --resume across invocations",
    )
    parser.add_argument(
        "--no-resume",
        dest="resume",
        action="store_false",
        help="re-execute sweep cells even when the store already has them",
    )
    args = parser.parse_args(argv)
    obs = Observability.enabled(profile=True) if args.trace else None
    print(
        generate_report(
            quick=args.quick,
            seed=args.seed,
            obs=obs,
            jobs=args.jobs,
            results_dir=args.results_dir,
            resume=args.resume,
        )
    )
    if obs is not None:
        records = obs.write_trace(args.trace)
        manifest_path = manifest_path_for(args.trace)
        obs.write_manifest(
            manifest_path,
            meta={"experiment": "fig3a", "quick": args.quick, "seed": args.seed},
        )
        print(f"trace: {records} records -> {args.trace}")
        print(f"manifest: -> {manifest_path}")


if __name__ == "__main__":  # pragma: no cover
    main()
