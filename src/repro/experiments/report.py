"""Run every experiment and render one combined report.

``python -m repro.experiments.report`` prints the full paper-vs-measured
report (this is how the EXPERIMENTS.md numbers were produced); pass
``--quick`` for a smaller, faster configuration.  ``--trace out.jsonl``
additionally instruments the Fig. 3a latency runs with :mod:`repro.obs`:
the JSONL trace lands at the given path and the metrics + profile manifest
at ``out.manifest.json`` (see ``docs/observability.md`` for the schemas).
"""

from __future__ import annotations

import argparse

from ..obs import Observability
from . import (
    fig2_overlays,
    fig3a_latency,
    fig3b_bandwidth,
    fig4_roles,
    fig5a_frontrunning,
    fig5b_robustness,
    table1,
)
from .harness import build_environment

__all__ = ["generate_report", "manifest_path_for"]


def manifest_path_for(trace_path: str) -> str:
    """``out.jsonl`` → ``out.manifest.json`` (suffix-agnostic)."""

    stem = trace_path[: -len(".jsonl")] if trace_path.endswith(".jsonl") else trace_path
    return stem + ".manifest.json"


def generate_report(
    quick: bool = False, seed: int = 0, obs: Observability | None = None
) -> str:
    """Run all experiments and return the combined text report.

    *obs*, when given, instruments the Fig. 3a latency runs (the headline
    measurement); the caller is responsible for exporting the artifacts.
    """

    if quick:
        n_main, n_attack, trials, txs = 80, 60, 6, 4
    else:
        n_main, n_attack, trials, txs = 200, 150, 20, 10

    env_main = build_environment(num_nodes=n_main, f=1, k=10, seed=seed)
    env_attack = build_environment(num_nodes=n_attack, f=1, k=10, seed=seed)

    sections = []
    sections.append(
        table1.format_result(
            table1.run(table1.Table1Config(num_nodes=min(n_attack, 60), seed=seed))
        )
    )
    sections.append(
        fig2_overlays.format_result(
            fig2_overlays.run(fig2_overlays.Fig2Config(num_nodes=n_main, seed=seed))
        )
    )
    sections.append(
        fig3a_latency.format_result(
            fig3a_latency.run(
                fig3a_latency.Fig3aConfig(num_nodes=n_main, transactions=txs, seed=seed),
                env=env_main,
                obs=obs,
            )
        )
    )
    sections.append(
        fig3b_bandwidth.format_result(
            fig3b_bandwidth.run(
                fig3b_bandwidth.Fig3bConfig(num_nodes=n_main, seed=seed), env=env_main
            )
        )
    )
    sections.append(
        fig4_roles.format_result(
            fig4_roles.run(
                fig4_roles.Fig4Config(num_nodes=n_main, seed=seed), env=env_main
            )
        )
    )
    sections.append(
        fig5a_frontrunning.format_result(
            fig5a_frontrunning.run(
                fig5a_frontrunning.Fig5aConfig(
                    num_nodes=n_attack, trials=trials, seed=seed
                ),
                env=env_attack,
            )
        )
    )
    sections.append(
        fig5b_robustness.format_result(
            fig5b_robustness.run(
                fig5b_robustness.Fig5bConfig(
                    num_nodes=n_attack, trials=max(trials // 2, 4), seed=seed
                ),
                env=env_attack,
            )
        )
    )
    header = (
        "HERMES reproduction — full experiment report\n"
        f"(environments: N={n_main} main, N={n_attack} attack sweeps; "
        f"overlay build {env_main.build_seconds:.1f}s)\n"
    )
    return header + "\n\n".join(sections) + "\n"


def main() -> None:  # pragma: no cover - CLI entry point
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller, faster run")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--trace",
        metavar="OUT.JSONL",
        help="instrument the Fig. 3a runs; write a JSONL trace here and the "
        "metrics/profile manifest next to it (.manifest.json)",
    )
    args = parser.parse_args()
    obs = Observability.enabled(profile=True) if args.trace else None
    print(generate_report(quick=args.quick, seed=args.seed, obs=obs))
    if obs is not None:
        records = obs.write_trace(args.trace)
        manifest_path = manifest_path_for(args.trace)
        obs.write_manifest(
            manifest_path,
            meta={"experiment": "fig3a", "quick": args.quick, "seed": args.seed},
        )
        print(f"trace: {records} records -> {args.trace}")
        print(f"manifest: -> {manifest_path}")


if __name__ == "__main__":  # pragma: no cover
    main()
