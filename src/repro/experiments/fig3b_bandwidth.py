"""Fig. 3b — per-node bandwidth overhead (KB/min), N = 200.

A sustained workload (transactions at a fixed rate from random origins) runs
for a window of simulated time; each protocol's traffic — dissemination,
acks/certificates, commitments, reconciliation digests, VCS maintenance — is
charged per byte, and the result is normalized to KB per node per minute.

For HERMES the paper reports two figures: 192 KB/min when the signed tree
encoding is re-disseminated "as if a view change is required for every
transaction", and ≈162 KB/min amortized (encoding only at setup / view
changes).  We measure the amortized figure and compute the per-transaction
re-encoding variant from the certificate sizes, like the paper does.

Paper values: L∅ 50 < HERMES 192 (162 amortized) < Mercury 322 < Narwhal 730.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..mempool.transaction import Transaction
from ..utils.rng import derive_rng
from ..utils.tables import format_table
from .harness import (
    PROTOCOL_NAMES,
    ExperimentEnvironment,
    build_environment,
    protocol_factories,
)

__all__ = [
    "Fig3bConfig",
    "Fig3bResult",
    "run",
    "format_result",
    "PAPER_VALUES",
    "CELL_TASK",
    "cell_params",
    "run_cell",
    "from_records",
    "run_parallel",
]

CELL_TASK = "fig3b.protocol"

PAPER_VALUES = {"lzero": 50.0, "hermes": 192.0, "mercury": 322.0, "narwhal": 730.0}


@dataclass(frozen=True, slots=True)
class Fig3bConfig:
    num_nodes: int = 200
    f: int = 1
    k: int = 10
    duration_ms: float = 60_000.0
    tx_interval_ms: float = 2_000.0
    seed: int = 0


@dataclass(frozen=True, slots=True)
class Fig3bResult:
    config: Fig3bConfig
    kb_per_minute: dict[str, float]
    hermes_with_per_tx_encoding: float

    def ordering(self) -> list[str]:
        return sorted(self.kb_per_minute, key=lambda n: self.kb_per_minute[n])


def run(
    config: Fig3bConfig | None = None,
    env: ExperimentEnvironment | None = None,
) -> Fig3bResult:
    if config is None:
        config = Fig3bConfig()
    if env is None:
        env = build_environment(
            num_nodes=config.num_nodes, f=config.f, k=config.k, seed=config.seed
        )
    results: dict[str, float] = {}
    hermes_cert_extra = 0.0
    for name in PROTOCOL_NAMES:
        kb_per_minute, cert_extra = _measure_protocol(config, env, name)
        results[name] = kb_per_minute
        if name == "hermes":
            hermes_cert_extra = cert_extra

    return Fig3bResult(
        config=config,
        kb_per_minute=results,
        hermes_with_per_tx_encoding=results["hermes"] + hermes_cert_extra,
    )


def _submit_schedule(
    config: Fig3bConfig, env: ExperimentEnvironment
) -> list[tuple[float, int]]:
    """The deterministic (time, origin) workload of the sustained run."""

    rng = derive_rng(config.seed, "fig3b-origins")
    submit_times: list[tuple[float, int]] = []
    t = 0.0
    while t < config.duration_ms:
        submit_times.append((t, rng.choice(env.physical.nodes())))
        t += config.tx_interval_ms
    return submit_times


def _measure_protocol(
    config: Fig3bConfig, env: ExperimentEnvironment, name: str
) -> tuple[float, float]:
    """One protocol's sustained run: (KB/min/node, hermes re-encoding extra)."""

    factories = protocol_factories(env)
    submit_times = _submit_schedule(config, env)
    system = factories[name]()
    system.start()
    for when, origin in submit_times:
        system.simulator.schedule_at(
            when,
            (
                lambda origin=origin: system.submit(
                    origin,
                    Transaction.create(origin=origin, created_at=system.simulator.now),
                )
            ),
        )
    system.run(until_ms=config.duration_ms)
    kb_per_minute = system.stats.bandwidth_kb_per_minute(config.duration_ms)
    cert_extra = 0.0
    if name == "hermes":
        # The paper's unamortized variant: the signed overlay encoding is
        # re-disseminated to all N nodes for every transaction.
        cert_bytes = sum(c.size_bytes for c in system.certificates) / len(
            system.certificates
        )
        total_extra = cert_bytes * config.num_nodes * len(submit_times)
        minutes = config.duration_ms / 60_000.0
        cert_extra = (total_extra / 1024.0) / (config.num_nodes * minutes)
    return kb_per_minute, cert_extra


# ----------------------------------------------------------------------
# Sweep-runner integration (see repro.runner and docs/runner.md)
# ----------------------------------------------------------------------


def cell_params(config: Fig3bConfig) -> list[dict[str, Any]]:
    """The repetition grid: one sustained run per protocol."""

    return [
        {
            "protocol": name,
            "num_nodes": config.num_nodes,
            "f": config.f,
            "k": config.k,
            "duration_ms": config.duration_ms,
            "tx_interval_ms": config.tx_interval_ms,
            "seed": config.seed,
        }
        for name in PROTOCOL_NAMES
    ]


def run_cell(params: Mapping[str, Any]) -> dict[str, Any]:
    """Measure one protocol's bandwidth; the ``fig3b.protocol`` runner task."""

    config = Fig3bConfig(
        num_nodes=int(params["num_nodes"]),
        f=int(params.get("f", 1)),
        k=int(params.get("k", 10)),
        duration_ms=float(params.get("duration_ms", 60_000.0)),
        tx_interval_ms=float(params.get("tx_interval_ms", 2_000.0)),
        seed=int(params.get("seed", 0)),
    )
    env = build_environment(
        num_nodes=config.num_nodes, f=config.f, k=config.k, seed=config.seed
    )
    name = str(params["protocol"])
    kb_per_minute, cert_extra = _measure_protocol(config, env, name)
    return {
        "protocol": name,
        "kb_per_minute": kb_per_minute,
        "cert_extra_kb_per_minute": cert_extra,
    }


def from_records(
    config: Fig3bConfig, records: Iterable[Mapping[str, Any]]
) -> Fig3bResult:
    """Fold stored run records back into the figure's result shape."""

    results: dict[str, float] = {}
    hermes_cert_extra = 0.0
    for record in records:
        if record.get("status") != "ok":
            continue
        result = record["result"]
        results[result["protocol"]] = result["kb_per_minute"]
        if result["protocol"] == "hermes":
            hermes_cert_extra = result["cert_extra_kb_per_minute"]
    return Fig3bResult(
        config=config,
        kb_per_minute=results,
        hermes_with_per_tx_encoding=results["hermes"] + hermes_cert_extra,
    )


def run_parallel(
    config: Fig3bConfig | None = None,
    *,
    jobs: int = 1,
    results_dir: str | None = None,
    resume: bool = True,
    timeout_s: float | None = None,
    progress=None,
    telemetry=None,
):
    """Run the figure's grid through the sweep runner; see ``docs/runner.md``.

    Returns ``(result, sweep_report)``.
    """

    from ._sweep import run_cells

    if config is None:
        config = Fig3bConfig()
    report = run_cells(
        CELL_TASK,
        cell_params(config),
        jobs=jobs,
        results_dir=results_dir,
        resume=resume,
        timeout_s=timeout_s,
        progress=progress,
        telemetry=telemetry,
    )
    return from_records(config, report.records), report


def format_result(result: Fig3bResult) -> str:
    rows = []
    for name in result.ordering():
        rows.append(
            [name, result.kb_per_minute[name], PAPER_VALUES.get(name, float("nan"))]
        )
    table = format_table(
        ["protocol", "KB/min/node", "paper KB/min"],
        rows,
        title=(
            f"Fig. 3b — bandwidth overhead, N={result.config.num_nodes}, "
            f"{result.config.duration_ms / 1000:.0f}s window"
        ),
    )
    extra = (
        f"hermes with per-tx tree re-encoding (paper's 192 KB/min variant): "
        f"{result.hermes_with_per_tx_encoding:.2f} KB/min"
    )
    return f"{table}\n{extra}"
