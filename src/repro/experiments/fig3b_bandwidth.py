"""Fig. 3b — per-node bandwidth overhead (KB/min), N = 200.

A sustained workload (transactions at a fixed rate from random origins) runs
for a window of simulated time; each protocol's traffic — dissemination,
acks/certificates, commitments, reconciliation digests, VCS maintenance — is
charged per byte, and the result is normalized to KB per node per minute.

For HERMES the paper reports two figures: 192 KB/min when the signed tree
encoding is re-disseminated "as if a view change is required for every
transaction", and ≈162 KB/min amortized (encoding only at setup / view
changes).  We measure the amortized figure and compute the per-transaction
re-encoding variant from the certificate sizes, like the paper does.

Paper values: L∅ 50 < HERMES 192 (162 amortized) < Mercury 322 < Narwhal 730.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mempool.transaction import Transaction
from ..utils.rng import derive_rng
from ..utils.tables import format_table
from .harness import ExperimentEnvironment, build_environment, protocol_factories

__all__ = ["Fig3bConfig", "Fig3bResult", "run", "format_result", "PAPER_VALUES"]

PAPER_VALUES = {"lzero": 50.0, "hermes": 192.0, "mercury": 322.0, "narwhal": 730.0}


@dataclass(frozen=True, slots=True)
class Fig3bConfig:
    num_nodes: int = 200
    f: int = 1
    k: int = 10
    duration_ms: float = 60_000.0
    tx_interval_ms: float = 2_000.0
    seed: int = 0


@dataclass(frozen=True, slots=True)
class Fig3bResult:
    config: Fig3bConfig
    kb_per_minute: dict[str, float]
    hermes_with_per_tx_encoding: float

    def ordering(self) -> list[str]:
        return sorted(self.kb_per_minute, key=lambda n: self.kb_per_minute[n])


def run(
    config: Fig3bConfig | None = None,
    env: ExperimentEnvironment | None = None,
) -> Fig3bResult:
    if config is None:
        config = Fig3bConfig()
    if env is None:
        env = build_environment(
            num_nodes=config.num_nodes, f=config.f, k=config.k, seed=config.seed
        )
    factories = protocol_factories(env)
    rng = derive_rng(config.seed, "fig3b-origins")
    submit_times = []
    t = 0.0
    while t < config.duration_ms:
        submit_times.append((t, rng.choice(env.physical.nodes())))
        t += config.tx_interval_ms

    results: dict[str, float] = {}
    hermes_cert_extra = 0.0
    for name in ("hermes", "lzero", "narwhal", "mercury"):
        system = factories[name]()
        system.start()
        for when, origin in submit_times:
            system.simulator.schedule_at(
                when,
                (
                    lambda origin=origin: system.submit(
                        origin,
                        Transaction.create(origin=origin, created_at=system.simulator.now),
                    )
                ),
            )
        system.run(until_ms=config.duration_ms)
        results[name] = system.stats.bandwidth_kb_per_minute(config.duration_ms)
        if name == "hermes":
            # The paper's unamortized variant: the signed overlay encoding is
            # re-disseminated to all N nodes for every transaction.
            cert_bytes = sum(c.size_bytes for c in system.certificates) / len(
                system.certificates
            )
            total_extra = cert_bytes * config.num_nodes * len(submit_times)
            minutes = config.duration_ms / 60_000.0
            hermes_cert_extra = (total_extra / 1024.0) / (config.num_nodes * minutes)

    return Fig3bResult(
        config=config,
        kb_per_minute=results,
        hermes_with_per_tx_encoding=results["hermes"] + hermes_cert_extra,
    )


def format_result(result: Fig3bResult) -> str:
    rows = []
    for name in result.ordering():
        rows.append(
            [name, result.kb_per_minute[name], PAPER_VALUES.get(name, float("nan"))]
        )
    table = format_table(
        ["protocol", "KB/min/node", "paper KB/min"],
        rows,
        title=(
            f"Fig. 3b — bandwidth overhead, N={result.config.num_nodes}, "
            f"{result.config.duration_ms / 1000:.0f}s window"
        ),
    )
    extra = (
        f"hermes with per-tx tree re-encoding (paper's 192 KB/min variant): "
        f"{result.hermes_with_per_tx_encoding:.2f} KB/min"
    )
    return f"{table}\n{extra}"
