"""Fig. 7 — the strategy zoo vs every protocol: success, value, fairness.

The front-running figure (5a) asks one binary question about one hard-coded
adversary.  This figure sweeps the full grid

    strategy × protocol × malicious fraction × trial

with the strategies of :mod:`repro.adversary.strategies` (``sandwich``,
``priority-race``, ``censor-reorder`` by default) against HERMES, the three
paper baselines, and the F3B commit-then-reveal defense, scoring every cell
three ways:

* **attack-success rate** — the paper's §VIII-F criterion, via
  :func:`~repro.mempool.ordering.judge_front_running` (including the
  ``victim_censored`` column);
* **extracted value** — gross and net profit under the trial's
  :class:`~repro.adversary.economics.ValueModel` (net can go negative:
  fees paid for legs that didn't pay off);
* **order-fairness** — γ-receive-order-fairness and the pairwise inversion
  rate over honest nodes' receive orders.

Expected shape (the acceptance check in
``tests/integration/test_fig7_acceptance.py`` pins the orderings at small
scale): HERMES's success rate and extracted value sit strictly below Narwhal
and Mercury — dissemination fairness is what it buys — while F3B crushes
*reactive* strategies outright (content reveals only after positions lock)
at a latency price fig3-style experiments would show.  Mercury is the soft
target: direct landmark injection plus deniable censorship.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..adversary.economics import ValueModel
from ..adversary.zoo import run_adversary_trial
from ..utils.rng import derive_rng
from ..utils.tables import format_table
from .harness import ExperimentEnvironment, build_environment, protocol_factories

__all__ = [
    "Fig7Config",
    "Fig7Cell",
    "Fig7Result",
    "PROTOCOLS",
    "STRATEGIES",
    "run",
    "format_result",
    "CELL_TASK",
    "cell_params",
    "run_cell",
    "from_records",
    "run_parallel",
]

CELL_TASK = "fig7.point"

#: The figure's protocol axis: the fig5a four plus the commit-then-reveal
#: defense (which exists in the harness but stays out of PROTOCOL_NAMES so
#: the committed fig3/5/6 outputs are untouched).
PROTOCOLS = ("hermes", "lzero", "narwhal", "mercury", "f3b")
#: The default strategy axis (extraction strategies; ``blackout`` and
#: ``flood`` have their own figures — 5b and the overload experiment).
STRATEGIES = ("sandwich", "priority-race", "censor-reorder")


@dataclass(frozen=True, slots=True)
class Fig7Config:
    num_nodes: int = 200
    f: int = 1
    k: int = 10
    protocols: tuple[str, ...] = PROTOCOLS
    strategies: tuple[str, ...] = STRATEGIES
    fractions: tuple[float, ...] = (0.10, 0.20, 0.33)
    trials: int = 10
    victim_value: float = 100.0
    victim_fee: float = 1.0
    fee_premium: float = 1.0
    background_txs: int = 10
    proposal_delay_ms: float = 250.0
    horizon_ms: float = 4_000.0
    seed: int = 0

    def value_model(self) -> ValueModel:
        return ValueModel(
            victim_value=self.victim_value, fee_premium=self.fee_premium
        )


@dataclass(frozen=True, slots=True)
class Fig7Cell:
    """One (protocol, strategy, fraction) point, aggregated over trials."""

    success_rate: float
    censored_rate: float
    mean_gross: float
    mean_net: float
    mean_gamma: float
    mean_inversion: float
    mean_coverage: float
    violations: int
    trials: int


@dataclass(frozen=True, slots=True)
class Fig7Result:
    config: Fig7Config
    #: (protocol, strategy, fraction) -> aggregated cell.
    cells: dict[tuple[str, str, float], Fig7Cell]

    def cell(self, protocol: str, strategy: str, fraction: float) -> Fig7Cell:
        return self.cells[(protocol, strategy, fraction)]

    def protocol_success_rate(self, protocol: str) -> float:
        """Mean success rate across every strategy and fraction."""

        rates = [
            cell.success_rate
            for (name, _, _), cell in self.cells.items()
            if name == protocol
        ]
        return sum(rates) / len(rates) if rates else 0.0

    def protocol_extracted_value(self, protocol: str) -> float:
        """Mean gross extracted value across every strategy and fraction."""

        values = [
            cell.mean_gross
            for (name, _, _), cell in self.cells.items()
            if name == protocol
        ]
        return sum(values) / len(values) if values else 0.0

    def resistance_ordering(self) -> list[str]:
        """Protocols from most to least attack-resistant (by success rate,
        extracted value as the tie-break)."""

        return sorted(
            self.config.protocols,
            key=lambda name: (
                self.protocol_success_rate(name),
                self.protocol_extracted_value(name),
            ),
        )


def _trial_pairs(config: Fig7Config, env: ExperimentEnvironment) -> list[tuple[int, int]]:
    """The deterministic (victim, proposer) pair of every trial index."""

    rng = derive_rng(config.seed, "fig7-pairs")
    nodes = env.physical.nodes()
    return [tuple(rng.sample(nodes, 2)) for _ in range(config.trials)]


def _trial_seed(strategy: str, fraction: float, trial: int) -> int:
    """A stable per-cell seed; strategies must not share fault plans."""

    strategy_salt = sum(ord(ch) for ch in strategy)
    return 1_000_000 * strategy_salt + 1_000 * int(fraction * 100) + trial


def _environment(config: Fig7Config) -> ExperimentEnvironment:
    return build_environment(
        num_nodes=config.num_nodes, f=config.f, k=config.k, seed=config.seed
    )


# ----------------------------------------------------------------------
# Sweep-runner integration (see repro.runner and docs/runner.md)
# ----------------------------------------------------------------------


def cell_params(config: Fig7Config) -> list[dict[str, Any]]:
    """The repetition grid: one cell per (protocol, strategy, fraction, trial)."""

    return [
        {
            "protocol": protocol,
            "strategy": strategy,
            "num_nodes": config.num_nodes,
            "f": config.f,
            "k": config.k,
            "fraction": fraction,
            "trial": trial,
            "trials": config.trials,
            "victim_value": config.victim_value,
            "victim_fee": config.victim_fee,
            "fee_premium": config.fee_premium,
            "background_txs": config.background_txs,
            "proposal_delay_ms": config.proposal_delay_ms,
            "horizon_ms": config.horizon_ms,
            "seed": config.seed,
        }
        for protocol in config.protocols
        for strategy in config.strategies
        for fraction in config.fractions
        for trial in range(config.trials)
    ]


def run_cell(params: Mapping[str, Any]) -> dict[str, Any]:
    """Run one zoo trial; the ``fig7.point`` runner task.

    ``trials`` travels with every cell so the (victim, proposer) pair list —
    drawn once per figure from the config seed — can be rebuilt and indexed
    by ``trial``, keeping cells bit-compatible with the serial :func:`run`.
    """

    config = Fig7Config(
        num_nodes=int(params["num_nodes"]),
        f=int(params.get("f", 1)),
        k=int(params.get("k", 10)),
        trials=int(params["trials"]),
        victim_value=float(params.get("victim_value", 100.0)),
        victim_fee=float(params.get("victim_fee", 1.0)),
        fee_premium=float(params.get("fee_premium", 1.0)),
        background_txs=int(params.get("background_txs", 10)),
        proposal_delay_ms=float(params.get("proposal_delay_ms", 250.0)),
        horizon_ms=float(params.get("horizon_ms", 4_000.0)),
        seed=int(params.get("seed", 0)),
    )
    env = _environment(config)
    factories = protocol_factories(
        env, hermes_overrides={"gossip_fallback_enabled": False}
    )
    protocol = str(params["protocol"])
    strategy = str(params["strategy"])
    fraction = float(params["fraction"])
    trial = int(params["trial"])
    victim, proposer = _trial_pairs(config, env)[trial]
    result = run_adversary_trial(
        factories[protocol],
        env.physical.nodes(),
        strategy,
        fraction,
        victim,
        proposer,
        value_model=config.value_model(),
        victim_fee=config.victim_fee,
        background_txs=config.background_txs,
        proposal_delay_ms=config.proposal_delay_ms,
        horizon_ms=config.horizon_ms,
        seed=_trial_seed(strategy, fraction, trial),
    )
    return {
        "protocol": protocol,
        "strategy": strategy,
        "fraction": fraction,
        "trial": trial,
        "attacker_won": int(result.verdict.attacker_won),
        "victim_censored": int(result.verdict.victim_censored),
        "gross": result.outcome.gross,
        "net": result.outcome.net,
        "gamma": result.fairness.gamma,
        "inversion_rate": result.fairness.inversion_rate,
        "coverage": result.victim_coverage,
        "violations": (
            result.violation_summary["total"]
            if result.violation_summary is not None
            else 0
        ),
    }


def from_records(
    config: Fig7Config, records: Iterable[Mapping[str, Any]]
) -> Fig7Result:
    """Fold stored trial records into per-(protocol, strategy, fraction) cells."""

    sums: dict[tuple[str, str, float], dict[str, float]] = {}
    for record in records:
        if record.get("status") != "ok":
            continue
        result = record["result"]
        key = (result["protocol"], result["strategy"], result["fraction"])
        cell = sums.setdefault(
            key,
            {
                "won": 0.0,
                "censored": 0.0,
                "gross": 0.0,
                "net": 0.0,
                "gamma": 0.0,
                "inversion": 0.0,
                "coverage": 0.0,
                "violations": 0.0,
                "count": 0.0,
            },
        )
        cell["won"] += result["attacker_won"]
        cell["censored"] += result.get("victim_censored", 0)
        cell["gross"] += result["gross"]
        cell["net"] += result["net"]
        cell["gamma"] += result["gamma"]
        cell["inversion"] += result["inversion_rate"]
        cell["coverage"] += result["coverage"]
        cell["violations"] += result.get("violations", 0)
        cell["count"] += 1
    cells = {
        key: Fig7Cell(
            success_rate=values["won"] / values["count"],
            censored_rate=values["censored"] / values["count"],
            mean_gross=values["gross"] / values["count"],
            mean_net=values["net"] / values["count"],
            mean_gamma=values["gamma"] / values["count"],
            mean_inversion=values["inversion"] / values["count"],
            mean_coverage=values["coverage"] / values["count"],
            violations=int(values["violations"]),
            trials=int(values["count"]),
        )
        for key, values in sums.items()
    }
    return Fig7Result(config=config, cells=cells)


def run(
    config: Fig7Config | None = None,
    env: ExperimentEnvironment | None = None,
) -> Fig7Result:
    """Run the full grid serially (the runner-free path)."""

    if config is None:
        config = Fig7Config()
    if env is None:
        env = _environment(config)
    records = [
        {"status": "ok", "result": run_cell(params)}
        for params in cell_params(config)
    ]
    return from_records(config, records)


def run_parallel(
    config: Fig7Config | None = None,
    *,
    jobs: int = 1,
    results_dir: str | None = None,
    resume: bool = True,
    timeout_s: float | None = None,
    progress=None,
    telemetry=None,
):
    """Run the figure's grid through the sweep runner; see ``docs/runner.md``.

    Returns ``(result, sweep_report)``.
    """

    from ._sweep import run_cells

    if config is None:
        config = Fig7Config()
    report = run_cells(
        CELL_TASK,
        cell_params(config),
        jobs=jobs,
        results_dir=results_dir,
        resume=resume,
        timeout_s=timeout_s,
        progress=progress,
        telemetry=telemetry,
    )
    return from_records(config, report.records), report


def format_result(result: Fig7Result) -> str:
    """One row per (strategy, protocol): success by fraction, value, fairness."""

    config = result.config
    fractions = config.fractions
    headers = (
        ["strategy", "protocol"]
        + [f"{fraction:.0%} mal" for fraction in fractions]
        + ["censored", "net value", "γ", "inversions", "evidence"]
    )
    top = max(fractions)
    rows = []
    for strategy in config.strategies:
        for protocol in config.protocols:
            cells = {
                fraction: result.cells.get((protocol, strategy, fraction))
                for fraction in fractions
            }
            if all(cell is None for cell in cells.values()):
                continue
            peak = cells.get(top)
            evidence = sum(
                cell.violations for cell in cells.values() if cell is not None
            )
            rows.append(
                [strategy, protocol]
                + [
                    f"{cell.success_rate:.0%}" if cell is not None else "-"
                    for cell in cells.values()
                ]
                + [
                    f"{peak.censored_rate:.0%}" if peak is not None else "-",
                    f"{peak.mean_net:+.1f}" if peak is not None else "-",
                    f"{peak.mean_gamma:.2f}" if peak is not None else "-",
                    f"{peak.mean_inversion:.3f}" if peak is not None else "-",
                    str(evidence) if evidence else "-",
                ]
            )
    return format_table(
        headers,
        rows,
        title=(
            f"Fig. 7 — strategy zoo, N={config.num_nodes}, "
            f"{config.trials} trials/point (censored/value/fairness at "
            f"{top:.0%} malicious)"
        ),
    )
