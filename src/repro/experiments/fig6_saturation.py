"""Fig. 6 — saturation curves: offered load vs goodput vs tail latency.

The paper's figures measure protocols well below capacity; this experiment
asks the follow-up question every deployment asks next: *where does each
protocol break, and how does it break?*  An open-loop arrival process offers
transactions at a swept rate while every node's uplink and downlink have
finite rates and a bounded egress queue (:mod:`repro.load.capacity`).  Below
the knee, goodput tracks offered load and latency stays flat; past it,
goodput plateaus, the egress queues overflow, and p95 latency inflates.

Per protocol the sweep reports the **knee** (the first offered rate whose
goodput falls below ``KNEE_GOODPUT_RATIO`` of offered) and the **post-knee
latency inflation** (p95 at the highest rate over p95 at the lowest).  Each
(protocol, rate) point is one content-addressed runner task (``fig6.point``),
so sweeps resume for free and rerun nothing that already finished.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..load.arrival import make_arrivals
from ..load.capacity import CapacityConfig, CapacityModel
from ..load.driver import LoadDriver, LoadResult
from ..utils.tables import format_table
from .harness import (
    PROTOCOL_NAMES,
    ExperimentEnvironment,
    build_environment,
    protocol_factories,
)

__all__ = [
    "Fig6Config",
    "Fig6Result",
    "KNEE_GOODPUT_RATIO",
    "run",
    "format_result",
    "CELL_TASK",
    "cell_params",
    "run_cell",
    "from_records",
    "run_parallel",
]

CELL_TASK = "fig6.point"

#: A rate saturates once goodput drops below this fraction of offered load.
KNEE_GOODPUT_RATIO = 0.85

#: Offered rates (tx/s) swept by default — chosen so the default capacity
#: (32 KB/s uplinks) puts the knee inside the sweep for every protocol:
#: narwhal saturates first (~6 tx/s), lzero last (~38 tx/s).
DEFAULT_RATES = (2.0, 5.0, 10.0, 20.0, 40.0, 80.0)


@dataclass(frozen=True, slots=True)
class Fig6Config:
    num_nodes: int = 40
    f: int = 1
    k: int = 3
    rates_tps: tuple[float, ...] = DEFAULT_RATES
    pattern: str = "poisson"
    zipf_s: float = 0.0
    duration_ms: float = 6_000.0
    drain_ms: float = 2_000.0
    protocols: tuple[str, ...] = PROTOCOL_NAMES
    # Deliberately modest links (dissemination amplifies every submitted
    # byte across the whole membership) so the knee lands inside rates_tps.
    uplink_kb_per_s: float = 32.0
    downlink_kb_per_s: float = 128.0
    queue_bytes: int = 32 * 1024
    delivery_fraction: float = 0.99
    seed: int = 0

    def capacity_config(self) -> CapacityConfig:
        return CapacityConfig(
            uplink_kb_per_s=self.uplink_kb_per_s,
            downlink_kb_per_s=self.downlink_kb_per_s,
            queue_bytes=self.queue_bytes,
        )


@dataclass(frozen=True, slots=True)
class Fig6Result:
    config: Fig6Config
    #: protocol -> one :class:`~repro.load.driver.LoadResult` per swept rate,
    #: in ascending offered-rate order.
    curves: dict[str, list[LoadResult]] = field(default_factory=dict)

    def knee_tps(self, protocol: str) -> float | None:
        """First offered rate whose goodput falls below the knee ratio."""

        for point in self.curves.get(protocol, []):
            if point.goodput_tps < KNEE_GOODPUT_RATIO * point.offered_tps:
                return point.offered_tps
        return None

    def latency_inflation(self, protocol: str) -> float | None:
        """p95 at the highest swept rate over p95 at the lowest."""

        curve = self.curves.get(protocol, [])
        measured = [p for p in curve if p.p95_ms is not None]
        if len(measured) < 2 or measured[0].p95_ms == 0:
            return None
        return measured[-1].p95_ms / measured[0].p95_ms


def _run_point(
    config: Fig6Config, env: ExperimentEnvironment, protocol: str, rate_tps: float
) -> LoadResult:
    """One saturation point: one protocol under one offered rate."""

    factories = protocol_factories(env)
    system = factories[protocol]()
    system.network.capacity = CapacityModel(config.capacity_config())
    arrivals = make_arrivals(
        config.pattern,
        rate_tps=rate_tps,
        origins=env.physical.nodes(),
        seed=config.seed,
        zipf_s=config.zipf_s,
    )
    driver = LoadDriver(
        system,
        arrivals,
        protocol=protocol,
        delivery_fraction=config.delivery_fraction,
    )
    return driver.run(config.duration_ms, drain_ms=config.drain_ms)


def run(config: Fig6Config | None = None) -> Fig6Result:
    if config is None:
        config = Fig6Config()
    env = build_environment(
        num_nodes=config.num_nodes, f=config.f, k=config.k, seed=config.seed
    )
    curves: dict[str, list[LoadResult]] = {}
    for protocol in config.protocols:
        curves[protocol] = [
            _run_point(config, env, protocol, rate) for rate in config.rates_tps
        ]
    return Fig6Result(config=config, curves=curves)


# ----------------------------------------------------------------------
# Sweep-runner integration (see repro.runner and docs/runner.md)
# ----------------------------------------------------------------------


def cell_params(config: Fig6Config) -> list[dict[str, Any]]:
    """The sweep grid: one cell per (protocol, offered rate)."""

    return [
        {
            "protocol": protocol,
            "rate_tps": rate,
            "pattern": config.pattern,
            "zipf_s": config.zipf_s,
            "num_nodes": config.num_nodes,
            "f": config.f,
            "k": config.k,
            "duration_ms": config.duration_ms,
            "drain_ms": config.drain_ms,
            "uplink_kb_per_s": config.uplink_kb_per_s,
            "downlink_kb_per_s": config.downlink_kb_per_s,
            "queue_bytes": config.queue_bytes,
            "delivery_fraction": config.delivery_fraction,
            "seed": config.seed,
        }
        for protocol in config.protocols
        for rate in config.rates_tps
    ]


def _config_from_params(params: Mapping[str, Any]) -> Fig6Config:
    return Fig6Config(
        num_nodes=int(params.get("num_nodes", 40)),
        f=int(params.get("f", 1)),
        k=int(params.get("k", 3)),
        pattern=str(params.get("pattern", "poisson")),
        zipf_s=float(params.get("zipf_s", 0.0)),
        duration_ms=float(params.get("duration_ms", 6_000.0)),
        drain_ms=float(params.get("drain_ms", 2_000.0)),
        uplink_kb_per_s=float(params.get("uplink_kb_per_s", 32.0)),
        downlink_kb_per_s=float(params.get("downlink_kb_per_s", 128.0)),
        queue_bytes=int(params.get("queue_bytes", 32 * 1024)),
        delivery_fraction=float(params.get("delivery_fraction", 0.99)),
        seed=int(params.get("seed", 0)),
    )


def run_cell(params: Mapping[str, Any]) -> dict[str, Any]:
    """Measure one saturation point; the ``fig6.point`` runner task."""

    config = _config_from_params(params)
    env = build_environment(
        num_nodes=config.num_nodes, f=config.f, k=config.k, seed=config.seed
    )
    result = _run_point(
        config, env, str(params["protocol"]), float(params["rate_tps"])
    )
    return result.to_json()


def from_records(
    config: Fig6Config, records: Iterable[Mapping[str, Any]]
) -> Fig6Result:
    """Fold stored run records back into per-protocol saturation curves."""

    curves: dict[str, list[LoadResult]] = {}
    for record in records:
        if record.get("status") != "ok":
            continue
        point = LoadResult.from_json(record["result"])
        curves.setdefault(point.protocol, []).append(point)
    for curve in curves.values():
        curve.sort(key=lambda point: point.offered_tps)
    ordered = {
        protocol: curves[protocol]
        for protocol in config.protocols
        if protocol in curves
    }
    return Fig6Result(config=config, curves=ordered)


def run_parallel(
    config: Fig6Config | None = None,
    *,
    jobs: int = 1,
    results_dir: str | None = None,
    resume: bool = True,
    timeout_s: float | None = None,
    progress=None,
    telemetry=None,
):
    """Run the saturation sweep through the runner; see ``docs/runner.md``.

    Returns ``(result, sweep_report)``.
    """

    from ._sweep import run_cells

    if config is None:
        config = Fig6Config()
    report = run_cells(
        CELL_TASK,
        cell_params(config),
        jobs=jobs,
        results_dir=results_dir,
        resume=resume,
        timeout_s=timeout_s,
        progress=progress,
        telemetry=telemetry,
    )
    return from_records(config, report.records), report


def format_result(result: Fig6Result) -> str:
    def cell(value: float | None) -> float:
        return float("nan") if value is None else value

    tables = []
    for protocol, curve in result.curves.items():
        rows = [
            [
                point.offered_tps,
                point.goodput_tps,
                cell(point.p50_ms),
                cell(point.p95_ms),
                point.drop_rate,
                point.goodput_kb_per_min,
            ]
            for point in curve
        ]
        knee = result.knee_tps(protocol)
        inflation = result.latency_inflation(protocol)
        title = (
            f"Fig. 6 — {protocol} saturation, N={result.config.num_nodes}, "
            f"{result.config.pattern} arrivals, "
            f"uplink {result.config.uplink_kb_per_s:.0f} KB/s"
        )
        table = format_table(
            [
                "offered tx/s",
                "goodput tx/s",
                "p50 ms",
                "p95 ms",
                "drop rate",
                "goodput KB/min",
            ],
            rows,
            title=title,
        )
        knee_line = (
            f"knee: {knee:.1f} tx/s" if knee is not None else "knee: beyond sweep"
        )
        if inflation is not None:
            knee_line += f"; p95 inflation low→high rate: {inflation:.1f}x"
        tables.append(f"{table}\n{knee_line}")
    return "\n\n".join(tables)
