"""Table I — measured comparison of dissemination approaches.

The paper's Table I is qualitative; we regenerate it from measurements on the
common simulator.  For Gossip, Reliable Broadcast (Bracha among all nodes),
Simple Tree, and HERMES we measure:

* latency — mean delivery latency for a small transaction workload;
* message complexity — messages sent per node per transaction;
* load balance — coefficient of variation of per-node messages sent;
* robustness — honest coverage under 20% silently-dropping Byzantine nodes;
* dissemination fairness — per-node arrival-order bias across many
  transactions (a node that is always among the first receivers is evidence
  of unfairness);

and carry the two structural properties (accountability; the mechanism name)
from the protocol definitions.  Quantities are then classed Low/Moderate/High
relative to the four mechanisms, reproducing the paper's table shape.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Hashable

from ..baselines.gossip import GossipConfig, GossipSystem
from ..baselines.simple_tree import SimpleTreeSystem
from ..core.protocol import HermesSystem
from ..mempool.transaction import Transaction
from ..net.faults import Behavior, FaultPlan
from ..net.node import Network
from ..net.simulator import Simulator
from ..rbc.bracha import BrachaNode
from ..utils.rng import derive_rng
from ..utils.tables import format_table
from .harness import ExperimentEnvironment, build_environment

__all__ = ["Table1Config", "Table1Row", "Table1Result", "run", "format_result"]

# Structural facts the measurement cannot produce (from the protocols' designs).
_ACCOUNTABILITY = {
    "gossip": False,
    "reliable-broadcast": True,
    "simple-tree": False,
    "hermes": True,
}
_MECHANISM = {
    "gossip": "randomized gossip",
    "reliable-broadcast": "all-to-all quorum broadcast",
    "simple-tree": "fixed tree overlay",
    "hermes": "optimized robust tree overlays",
}


@dataclass(frozen=True, slots=True)
class Table1Config:
    num_nodes: int = 60
    f: int = 1
    k: int = 4
    transactions: int = 6
    byzantine_fraction: float = 0.20
    horizon_ms: float = 6_000.0
    seed: int = 0


@dataclass(frozen=True, slots=True)
class Table1Row:
    approach: str
    mechanism: str
    avg_latency_ms: float
    messages_per_node_per_tx: float
    load_cv: float
    fairness_bias: float
    robustness_coverage: float
    accountable: bool


@dataclass(frozen=True, slots=True)
class Table1Result:
    config: Table1Config
    rows: tuple[Table1Row, ...]

    def row(self, approach: str) -> Table1Row:
        for row in self.rows:
            if row.approach == approach:
                return row
        raise KeyError(approach)


class _RecordingBrachaNode(BrachaNode):
    """A Bracha participant that logs delivery times into the network stats."""

    def _record_delivery(self, source: int, sequence: int, payload: Hashable) -> None:
        super()._record_delivery(source, sequence, payload)
        self.network.stats.record_delivery(("rbc", sequence), self.node_id, self.now)


class _DroppingBrachaNode(_RecordingBrachaNode):
    """A Bracha participant that silently ignores all traffic (Byzantine)."""

    def on_message(self, sender: int, message) -> None:
        pass

    def broadcast(self, sequence: int, payload: Hashable) -> None:
        pass


def _run_bracha(
    env: ExperimentEnvironment,
    config: Table1Config,
    fault_plan: FaultPlan,
) -> tuple[dict, list[float]]:
    """All-node Bracha RBC dissemination; returns (stats, latencies)."""

    simulator = Simulator()
    network = Network(simulator, env.physical, seed=config.seed)
    members = env.physical.nodes()
    nodes = {}
    for node_id in members:
        cls = (
            _DroppingBrachaNode
            if fault_plan.behavior_of(node_id) is not Behavior.HONEST
            else _RecordingBrachaNode
        )
        nodes[node_id] = cls(node_id, network, members, (len(members) - 1) // 3)
    rng = derive_rng(config.seed, "table1-bracha")
    latencies: list[float] = []
    for sequence in range(config.transactions):
        origin = rng.choice(members)
        # Each broadcast is an independent repetition: start it on a clean
        # simulator so sequence s cannot leak pending events into s+1.
        simulator.reset()
        network.stats.record_dissemination_start(("rbc", sequence), simulator.now)
        nodes[origin].broadcast(sequence, f"tx-{sequence}")
        simulator.run(until_ms=config.horizon_ms)
    for sequence in range(config.transactions):
        latencies.extend(network.stats.delivery_latencies(("rbc", sequence)))
    return network.stats, latencies


def _fairness_bias(
    stats, items: list, nodes: list[int], item_origins: dict | None = None
) -> float:
    """Mean systematic arrival-order bias across nodes.

    For each item, nodes are ranked by arrival time (the item's origin is
    excluded — it trivially receives first).  A protocol is dissemination-fair
    when every node's mean normalized rank sits near 0.5; the returned value
    is the average of ``|mean rank − 0.5|`` over nodes, which approaches 0 for
    a fair protocol as the workload grows and stays large (≈0.25) for a fixed
    dissemination order.
    """

    origins = item_origins or {}
    positions: dict[int, list[float]] = {n: [] for n in nodes}
    for item in items:
        deliveries = dict(stats.deliveries.get(item, {}))
        deliveries.pop(origins.get(item), None)
        ordered = sorted(deliveries, key=lambda n: deliveries[n])
        denominator = max(len(ordered) - 1, 1)
        for position, node in enumerate(ordered):
            if node in positions:
                positions[node].append(position / denominator)
    biases = [
        abs(statistics.mean(values) - 0.5)
        for values in positions.values()
        if len(values) >= len(items) / 2
    ]
    return statistics.mean(biases) if biases else 0.0


def _measure_system(system, origins, horizon_ms, honest_nodes):
    items = []
    item_origins = {}
    system.start()
    for origin in origins:
        tx = Transaction.create(origin=origin, created_at=0.0)
        items.append(tx.tx_id)
        item_origins[tx.tx_id] = origin
        system.submit(origin, tx)
    system.run(until_ms=horizon_ms)
    stats = system.stats
    latencies = [
        latency for item in items for latency in stats.delivery_latencies(item)
    ]
    coverages = []
    for item in items:
        delivered = set(stats.deliveries.get(item, {}))
        coverages.append(
            sum(1 for n in honest_nodes if n in delivered) / len(honest_nodes)
        )
    return stats, items, latencies, statistics.mean(coverages), item_origins


def run(
    config: Table1Config | None = None,
    env: ExperimentEnvironment | None = None,
) -> Table1Result:
    if config is None:
        config = Table1Config()
    if env is None:
        env = build_environment(
            num_nodes=config.num_nodes, f=config.f, k=config.k, seed=config.seed
        )
    nodes = env.physical.nodes()
    rng = derive_rng(config.seed, "table1-origins")
    origins = [rng.choice(nodes) for _ in range(config.transactions)]
    plan = FaultPlan.random_fraction(
        nodes,
        config.byzantine_fraction,
        Behavior.DROP_RELAY,
        seed=config.seed,
        protected=tuple(origins),
    )
    honest = plan.honest_nodes(nodes)

    rows: list[Table1Row] = []

    def add_row(name: str, stats, items, latencies, coverage, item_origins=None) -> None:
        sent = [stats.messages_sent.get(n, 0) for n in nodes]
        mean_sent = statistics.mean(sent) if sent else 0.0
        load_cv = statistics.pstdev(sent) / mean_sent if mean_sent else 0.0
        rows.append(
            Table1Row(
                approach=name,
                mechanism=_MECHANISM[name],
                avg_latency_ms=statistics.mean(latencies) if latencies else 0.0,
                messages_per_node_per_tx=mean_sent / config.transactions,
                load_cv=load_cv,
                fairness_bias=_fairness_bias(stats, items, honest, item_origins),
                robustness_coverage=coverage,
                accountable=_ACCOUNTABILITY[name],
            )
        )

    # Gossip
    system = GossipSystem(
        env.physical, config=GossipConfig(fanout=6), fault_plan=plan, seed=config.seed
    )
    add_row("gossip", *_measure_system(system, origins, config.horizon_ms, honest))

    # Reliable broadcast
    stats, rbc_latencies = _run_bracha(env, config, plan)
    items = [("rbc", sequence) for sequence in range(config.transactions)]
    coverages = []
    for item in items:
        delivered = set(stats.deliveries.get(item, {}))
        coverages.append(sum(1 for n in honest if n in delivered) / len(honest))
    add_row(
        "reliable-broadcast", stats, items, rbc_latencies, statistics.mean(coverages)
    )

    # Simple tree
    system = SimpleTreeSystem(env.physical, fault_plan=plan, seed=config.seed)
    add_row(
        "simple-tree", *_measure_system(system, origins, config.horizon_ms, honest)
    )

    # HERMES
    system = HermesSystem(
        env.physical,
        env.hermes_config(gossip_fallback_enabled=True),
        fault_plan=plan,
        overlays=env.overlays,
        seed=config.seed,
    )
    add_row("hermes", *_measure_system(system, origins, config.horizon_ms, honest))

    return Table1Result(config=config, rows=tuple(rows))


def _classify(value: float, values: list[float], reverse: bool = False) -> str:
    """Rank *value* among *values* into Low / Moderate / High."""

    ordered = sorted(values, reverse=reverse)
    position = ordered.index(value) / max(len(ordered) - 1, 1)
    if position < 1 / 3:
        return "Low"
    if position < 2 / 3:
        return "Moderate"
    return "High"


def format_result(result: Table1Result) -> str:
    latencies = [row.avg_latency_ms for row in result.rows]
    complexities = [row.messages_per_node_per_tx for row in result.rows]
    rows = []
    for row in result.rows:
        rows.append(
            [
                row.approach,
                _classify(row.avg_latency_ms, latencies),
                _classify(row.messages_per_node_per_tx, complexities),
                "yes" if row.fairness_bias < 0.15 else "no",
                "yes" if row.accountable else "no",
                "yes" if row.load_cv < 1.0 else "no",
                f"{row.robustness_coverage:.0%}",
            ]
        )
    table = format_table(
        [
            "approach",
            "latency",
            "msg complexity",
            "fair",
            "accountable",
            "load balanced",
            "robust (cov@20% byz)",
        ],
        rows,
        title=(
            f"Table I (measured) — N={result.config.num_nodes}, "
            f"{result.config.byzantine_fraction:.0%} byzantine"
        ),
    )
    detail = format_table(
        ["approach", "avg ms", "msgs/node/tx", "load CV", "fairness bias"],
        [
            [
                row.approach,
                row.avg_latency_ms,
                row.messages_per_node_per_tx,
                row.load_cv,
                row.fairness_bias,
            ]
            for row in result.rows
        ],
        title="raw measurements",
    )
    return f"{table}\n\n{detail}"
