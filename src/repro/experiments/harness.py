"""Shared experiment plumbing: environments, protocol factories, caching.

Building a physical network and an optimized overlay family is by far the
most expensive step of every experiment, so environments are memoized on
their parameters — the Fig. 3a, 5a and 5b benchmarks all reuse one family,
exactly as one deployment would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.config import HermesConfig
from ..core.protocol import HermesSystem
from ..baselines import (
    F3BSystem,
    GossipSystem,
    LZeroSystem,
    MercurySystem,
    NarwhalSystem,
    SimpleTreeSystem,
)
from ..net.faults import FaultPlan
from ..net.stats import NetworkStats
from ..net.topology import PhysicalNetwork, generate_physical_network
from ..obs import Observability
from ..overlay.base import Overlay
from ..overlay.rank import RankTracker
from ..overlay.robust_tree import build_overlay_family

__all__ = [
    "ExperimentEnvironment",
    "build_environment",
    "clear_environment_cache",
    "protocol_factories",
    "record_latency_metrics",
    "PROTOCOL_NAMES",
]

PROTOCOL_NAMES = ("hermes", "lzero", "narwhal", "mercury")


@dataclass
class ExperimentEnvironment:
    """Everything the experiments share: network, overlays, rank history."""

    num_nodes: int
    f: int
    k: int
    seed: int
    physical: PhysicalNetwork
    overlays: list[Overlay]
    rank_tracker: RankTracker
    build_seconds: float = 0.0

    def hermes_config(self, **overrides) -> HermesConfig:
        defaults = dict(f=self.f, num_overlays=self.k)
        defaults.update(overrides)
        return HermesConfig(**defaults)


_environment_cache: dict[
    tuple[int, int, int, int, bool, int, bool], ExperimentEnvironment
] = {}

# At or above this many nodes, build_environment defaults to the paper-scale
# construction profile (RegionMeanSpace, capped parent wiring, no annealing).
# Far above every committed small-scale experiment cell, so their outputs are
# untouched; N = 10,000 runs cross it and build in seconds instead of hours.
PAPER_SCALE_MIN_NODES = 5_000


def clear_environment_cache() -> None:
    """Drop every memoized environment (tests; long-lived worker hygiene)."""

    _environment_cache.clear()


def build_environment(
    num_nodes: int = 200,
    f: int = 1,
    k: int = 10,
    seed: int = 0,
    optimize: bool = True,
    min_degree: int = 4,
    paper_scale: bool | None = None,
) -> ExperimentEnvironment:
    """Build (or fetch from cache) a shared experiment environment.

    Every parameter that shapes the result — including ``min_degree``, which
    changes the generated physical topology — is part of the cache key.

    *paper_scale* selects the construction profile for very large networks:
    overlay construction measures candidate distances in
    :class:`~repro.overlay.base.RegionMeanSpace` (expected regional latency,
    O(1) per pair) instead of per-pair transport draws, wires each non-entry
    node to its ``f+1`` nearest previous-layer parents instead of the full
    layer, and skips the annealing pass.  ``None`` (default) auto-enables the
    profile at ``num_nodes >= PAPER_SCALE_MIN_NODES``.  The resulting family
    satisfies exactly the same robustness invariants (``Overlay.validate``
    still runs); see docs/performance.md for the cost model and the
    deviations this profile accepts.
    """

    import time

    from ..overlay.base import RegionMeanSpace
    from ..overlay.robust_tree import RobustTreeConfig

    if paper_scale is None:
        paper_scale = num_nodes >= PAPER_SCALE_MIN_NODES
    key = (num_nodes, f, k, seed, optimize, min_degree, paper_scale)
    if key in _environment_cache:
        return _environment_cache[key]
    start = time.perf_counter()
    physical = generate_physical_network(num_nodes, min_degree=min_degree, seed=seed)
    if paper_scale:
        overlays, ranks = build_overlay_family(
            physical,
            f=f,
            k=k,
            space=RegionMeanSpace(physical),
            tree_config=RobustTreeConfig(layer_connect_count=f + 1),
            optimize=False,
            seed=seed,
        )
    else:
        overlays, ranks = build_overlay_family(
            physical, f=f, k=k, optimize=optimize, seed=seed
        )
    env = ExperimentEnvironment(
        num_nodes=num_nodes,
        f=f,
        k=k,
        seed=seed,
        physical=physical,
        overlays=overlays,
        rank_tracker=ranks,
        build_seconds=time.perf_counter() - start,
    )
    _environment_cache[key] = env
    return env


def protocol_factories(
    env: ExperimentEnvironment,
    seed: int = 13,
    hermes_overrides: dict | None = None,
    obs: Observability | None = None,
    narwhal_config=None,
) -> dict[str, Callable]:
    """Factories ``(fault_plan, observe_hook) -> system`` for each protocol.

    Pass ``fault_plan=None`` / ``observe_hook=None`` for honest runs.  When
    *obs* is given, every constructed system is instrumented against it
    (tracer clocks rebind to each new system's simulator, so build and run
    systems one at a time when sharing a bundle across protocols).
    *narwhal_config* optionally replaces Narwhal's default
    :class:`~repro.baselines.narwhal.NarwhalConfig` — paper-scale runs use it
    to pin a fixed validator committee, since the default ``N/3`` validator
    set makes Narwhal's all-to-all batch sync quadratic in ``N``.
    """

    overrides = dict(hermes_overrides or {})

    def hermes(fault_plan: FaultPlan | None = None, observe_hook=None) -> HermesSystem:
        return HermesSystem(
            env.physical,
            env.hermes_config(**overrides),
            fault_plan=fault_plan,
            observe_hook=observe_hook,
            overlays=env.overlays,
            seed=seed,
            obs=obs,
        )

    def baseline(cls, **extra):
        def factory(fault_plan: FaultPlan | None = None, observe_hook=None):
            return cls(
                env.physical,
                fault_plan=fault_plan,
                observe_hook=observe_hook,
                seed=seed,
                obs=obs,
                **extra,
            )

        return factory

    narwhal_extra = {} if narwhal_config is None else {"config": narwhal_config}

    return {
        "hermes": hermes,
        "lzero": baseline(LZeroSystem),
        "narwhal": baseline(NarwhalSystem, **narwhal_extra),
        "mercury": baseline(MercurySystem),
        "f3b": baseline(F3BSystem),
        "gossip": baseline(GossipSystem),
        "simple-tree": baseline(SimpleTreeSystem),
    }


def record_latency_metrics(
    obs: Observability, stats: NetworkStats, protocol: str
) -> None:
    """Mirror a run's delivery latencies into the metrics registry.

    Fills the ``delivery.latency_ms`` histogram (labelled by protocol) from
    :meth:`NetworkStats.all_delivery_latencies` — the *same* population the
    figure scripts summarize — so the manifest's p5/p50/p95 agree exactly
    with the reported :class:`~repro.net.stats.LatencySummary`.
    """

    histogram = obs.metrics.histogram("delivery.latency_ms", protocol=protocol)
    for value in stats.all_delivery_latencies():
        histogram.observe(value)
    obs.metrics.counter("delivery.count", protocol=protocol).inc(
        sum(len(nodes) for nodes in stats.deliveries.values())
    )
