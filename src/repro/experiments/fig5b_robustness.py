"""Fig. 5b — delivery probability vs fraction of Byzantine nodes.

A fraction of nodes silently drops everything it should relay; robustness is
the probability an honest node still receives a disseminated message within
the horizon.  HERMES runs its full protocol including the §VII-A gossip
fallback (it is part of the design, activated after delay T).

Paper values (10% → 33%): HERMES 99.9% → 95%, L∅ 97.5% → 80%,
Narwhal 95% → 79%, Mercury 89% → 55%.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from ..attacks.censorship import run_censorship_trial
from ..utils.rng import derive_rng
from ..utils.tables import format_table
from .harness import ExperimentEnvironment, build_environment, protocol_factories

__all__ = ["Fig5bConfig", "Fig5bResult", "run", "format_result", "PAPER_VALUES"]

PAPER_VALUES = {
    "hermes": {0.10: 0.999, 0.33: 0.95},
    "lzero": {0.10: 0.975, 0.33: 0.80},
    "narwhal": {0.10: 0.95, 0.33: 0.79},
    "mercury": {0.10: 0.89, 0.33: 0.55},
}


@dataclass(frozen=True, slots=True)
class Fig5bConfig:
    num_nodes: int = 150
    f: int = 1
    k: int = 10
    fractions: tuple[float, ...] = (0.10, 0.20, 0.33)
    trials: int = 10
    horizon_ms: float = 2_000.0
    seed: int = 0


@dataclass(frozen=True, slots=True)
class Fig5bResult:
    config: Fig5bConfig
    # protocol -> fraction -> mean honest coverage in [0, 1]
    coverage: dict[str, dict[float, float]]

    def ordering_at(self, fraction: float) -> list[str]:
        """Protocols from most to least robust."""

        return sorted(
            self.coverage, key=lambda p: self.coverage[p][fraction], reverse=True
        )


def run(
    config: Fig5bConfig | None = None,
    env: ExperimentEnvironment | None = None,
) -> Fig5bResult:
    if config is None:
        config = Fig5bConfig()
    if env is None:
        env = build_environment(
            num_nodes=config.num_nodes, f=config.f, k=config.k, seed=config.seed
        )
    factories = protocol_factories(
        env,
        hermes_overrides={
            "gossip_fallback_enabled": True,
            "gossip_fallback_delay_ms": 500.0,
            "gossip_period_ms": 250.0,
        },
    )
    nodes = env.physical.nodes()
    rng = derive_rng(config.seed, "fig5b-senders")
    senders = [rng.choice(nodes) for _ in range(config.trials)]

    coverage: dict[str, dict[float, float]] = {}
    for name in ("hermes", "lzero", "narwhal", "mercury"):
        factory = factories[name]
        coverage[name] = {}
        for fraction in config.fractions:
            trial_coverages = []
            for trial, sender in enumerate(senders):
                result = run_censorship_trial(
                    lambda plan: factory(plan),
                    nodes,
                    fraction,
                    sender,
                    horizon_ms=config.horizon_ms,
                    seed=2000 * int(fraction * 100) + trial,
                )
                trial_coverages.append(result.coverage)
            coverage[name][fraction] = statistics.mean(trial_coverages)
    return Fig5bResult(config=config, coverage=coverage)


def format_result(result: Fig5bResult) -> str:
    fractions = result.config.fractions
    headers = ["protocol"] + [f"{f:.0%} byzantine" for f in fractions] + [
        "paper (10%→33%)"
    ]
    rows = []
    for name, by_fraction in result.coverage.items():
        paper = PAPER_VALUES.get(name, {})
        rows.append(
            [name]
            + [f"{by_fraction[f]:.1%}" for f in fractions]
            + [f"{paper.get(0.10, 0):.1%}→{paper.get(0.33, 0):.1%}"]
        )
    return format_table(
        headers,
        rows,
        title=(
            f"Fig. 5b — delivery probability, N={result.config.num_nodes}, "
            f"{result.config.trials} trials/point"
        ),
    )
