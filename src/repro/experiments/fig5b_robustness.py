"""Fig. 5b — delivery probability vs fraction of Byzantine nodes.

A fraction of nodes silently drops everything it should relay; robustness is
the probability an honest node still receives a disseminated message within
the horizon.  HERMES runs its full protocol including the §VII-A gossip
fallback (it is part of the design, activated after delay T).

Paper values (10% → 33%): HERMES 99.9% → 95%, L∅ 97.5% → 80%,
Narwhal 95% → 79%, Mercury 89% → 55%.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..adversary.zoo import run_censorship_trial
from ..utils.rng import derive_rng
from ..utils.tables import format_table
from .harness import (
    PROTOCOL_NAMES,
    ExperimentEnvironment,
    build_environment,
    protocol_factories,
)

__all__ = [
    "Fig5bConfig",
    "Fig5bResult",
    "run",
    "format_result",
    "PAPER_VALUES",
    "CELL_TASK",
    "cell_params",
    "run_cell",
    "from_records",
    "run_parallel",
]

CELL_TASK = "fig5b.trial"

# The §VII-A gossip fallback is part of the protocol under test here.
_HERMES_OVERRIDES = {
    "gossip_fallback_enabled": True,
    "gossip_fallback_delay_ms": 500.0,
    "gossip_period_ms": 250.0,
}

PAPER_VALUES = {
    "hermes": {0.10: 0.999, 0.33: 0.95},
    "lzero": {0.10: 0.975, 0.33: 0.80},
    "narwhal": {0.10: 0.95, 0.33: 0.79},
    "mercury": {0.10: 0.89, 0.33: 0.55},
}


@dataclass(frozen=True, slots=True)
class Fig5bConfig:
    num_nodes: int = 150
    f: int = 1
    k: int = 10
    fractions: tuple[float, ...] = (0.10, 0.20, 0.33)
    trials: int = 10
    horizon_ms: float = 2_000.0
    seed: int = 0


@dataclass(frozen=True, slots=True)
class Fig5bResult:
    config: Fig5bConfig
    # protocol -> fraction -> mean honest coverage in [0, 1]
    coverage: dict[str, dict[float, float]]
    # protocol -> fraction -> total ViolationLog entries across trials (0 for
    # protocols without an accountability layer).
    violations: dict[str, dict[float, int]] = field(default_factory=dict)

    def ordering_at(self, fraction: float) -> list[str]:
        """Protocols from most to least robust."""

        return sorted(
            self.coverage, key=lambda p: self.coverage[p][fraction], reverse=True
        )


def run(
    config: Fig5bConfig | None = None,
    env: ExperimentEnvironment | None = None,
) -> Fig5bResult:
    if config is None:
        config = Fig5bConfig()
    if env is None:
        env = build_environment(
            num_nodes=config.num_nodes, f=config.f, k=config.k, seed=config.seed
        )
    factories = protocol_factories(env, hermes_overrides=dict(_HERMES_OVERRIDES))
    nodes = env.physical.nodes()
    senders = _trial_senders(config, env)

    coverage: dict[str, dict[float, float]] = {}
    violations: dict[str, dict[float, int]] = {}
    for name in PROTOCOL_NAMES:
        factory = factories[name]
        coverage[name] = {}
        violations[name] = {}
        for fraction in config.fractions:
            trial_coverages = []
            evidence = 0
            for trial, sender in enumerate(senders):
                result = run_censorship_trial(
                    lambda plan: factory(plan),
                    nodes,
                    fraction,
                    sender,
                    horizon_ms=config.horizon_ms,
                    seed=_trial_seed(fraction, trial),
                )
                trial_coverages.append(result.coverage)
                if result.violation_summary is not None:
                    evidence += result.violation_summary["total"]
            coverage[name][fraction] = statistics.mean(trial_coverages)
            violations[name][fraction] = evidence
    return Fig5bResult(config=config, coverage=coverage, violations=violations)


def _trial_senders(config: Fig5bConfig, env: ExperimentEnvironment) -> list[int]:
    """The deterministic sender of every trial index."""

    rng = derive_rng(config.seed, "fig5b-senders")
    nodes = env.physical.nodes()
    return [rng.choice(nodes) for _ in range(config.trials)]


def _trial_seed(fraction: float, trial: int) -> int:
    return 2000 * int(fraction * 100) + trial


# ----------------------------------------------------------------------
# Sweep-runner integration (see repro.runner and docs/runner.md)
# ----------------------------------------------------------------------


def cell_params(config: Fig5bConfig) -> list[dict[str, Any]]:
    """The repetition grid: one cell per (protocol, fraction, trial)."""

    return [
        {
            "protocol": name,
            "num_nodes": config.num_nodes,
            "f": config.f,
            "k": config.k,
            "fraction": fraction,
            "trial": trial,
            "trials": config.trials,
            "horizon_ms": config.horizon_ms,
            "seed": config.seed,
        }
        for name in PROTOCOL_NAMES
        for fraction in config.fractions
        for trial in range(config.trials)
    ]


def run_cell(params: Mapping[str, Any]) -> dict[str, Any]:
    """Run one censorship trial; the ``fig5b.trial`` runner task."""

    config = Fig5bConfig(
        num_nodes=int(params["num_nodes"]),
        f=int(params.get("f", 1)),
        k=int(params.get("k", 10)),
        trials=int(params["trials"]),
        horizon_ms=float(params.get("horizon_ms", 2_000.0)),
        seed=int(params.get("seed", 0)),
    )
    env = build_environment(
        num_nodes=config.num_nodes, f=config.f, k=config.k, seed=config.seed
    )
    factories = protocol_factories(env, hermes_overrides=dict(_HERMES_OVERRIDES))
    name = str(params["protocol"])
    fraction = float(params["fraction"])
    trial = int(params["trial"])
    nodes = env.physical.nodes()
    sender = _trial_senders(config, env)[trial]
    factory = factories[name]
    result = run_censorship_trial(
        lambda plan: factory(plan),
        nodes,
        fraction,
        sender,
        horizon_ms=config.horizon_ms,
        seed=_trial_seed(fraction, trial),
    )
    return {
        "protocol": name,
        "fraction": fraction,
        "trial": trial,
        "coverage": result.coverage,
        "violations": (
            result.violation_summary["total"]
            if result.violation_summary is not None
            else 0
        ),
    }


def from_records(
    config: Fig5bConfig, records: Iterable[Mapping[str, Any]]
) -> Fig5bResult:
    """Fold stored trial records back into mean coverage per cell."""

    samples: dict[str, dict[float, list[float]]] = {}
    evidence: dict[str, dict[float, int]] = {}
    for record in records:
        if record.get("status") != "ok":
            continue
        result = record["result"]
        by_fraction = samples.setdefault(result["protocol"], {})
        by_fraction.setdefault(result["fraction"], []).append(result["coverage"])
        # Records written before the violation column existed fold as zero.
        counts = evidence.setdefault(result["protocol"], {})
        counts[result["fraction"]] = counts.get(result["fraction"], 0) + result.get(
            "violations", 0
        )
    coverage = {
        name: {
            fraction: statistics.mean(values)
            for fraction, values in by_fraction.items()
        }
        for name, by_fraction in samples.items()
    }
    return Fig5bResult(config=config, coverage=coverage, violations=evidence)


def run_parallel(
    config: Fig5bConfig | None = None,
    *,
    jobs: int = 1,
    results_dir: str | None = None,
    resume: bool = True,
    timeout_s: float | None = None,
    progress=None,
    telemetry=None,
):
    """Run the figure's grid through the sweep runner; see ``docs/runner.md``.

    Returns ``(result, sweep_report)``.
    """

    from ._sweep import run_cells

    if config is None:
        config = Fig5bConfig()
    report = run_cells(
        CELL_TASK,
        cell_params(config),
        jobs=jobs,
        results_dir=results_dir,
        resume=resume,
        timeout_s=timeout_s,
        progress=progress,
        telemetry=telemetry,
    )
    return from_records(config, report.records), report


def format_result(result: Fig5bResult) -> str:
    fractions = result.config.fractions
    headers = ["protocol"] + [f"{f:.0%} byzantine" for f in fractions] + [
        "paper (10%→33%)",
        "evidence",
    ]
    rows = []
    for name, by_fraction in result.coverage.items():
        paper = PAPER_VALUES.get(name, {})
        evidence = sum(result.violations.get(name, {}).values())
        rows.append(
            [name]
            + [f"{by_fraction[f]:.1%}" for f in fractions]
            + [f"{paper.get(0.10, 0):.1%}→{paper.get(0.33, 0):.1%}"]
            + [str(evidence) if evidence else "-"]
        )
    return format_table(
        headers,
        rows,
        title=(
            f"Fig. 5b — delivery probability, N={result.config.num_nodes}, "
            f"{result.config.trials} trials/point"
        ),
    )
