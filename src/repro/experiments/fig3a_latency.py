"""Fig. 3a — transaction dissemination latency per protocol.

Measures, for HERMES and the three baselines on one shared network, the mean
delivery latency and the 5th–95th percentile spread over a workload of
transactions from random origins.

Paper values (N = 10,000): Mercury 77.10 ms < HERMES 83.22 ms < Narwhal
106.61 ms < L∅ 172.02 ms, with L∅ the widest spread.  The reproduction
preserves the ordering and the L∅/HERMES ratio; see EXPERIMENTS.md for the
calibration discussion (our committee hand-off hops are costlier than the
paper's, so the Mercury/HERMES gap is wider).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..mempool.transaction import Transaction
from ..net.stats import LatencySummary, summarize_latencies
from ..obs import Observability
from ..utils.rng import derive_rng
from ..utils.tables import format_table
from .harness import (
    PROTOCOL_NAMES,
    ExperimentEnvironment,
    build_environment,
    protocol_factories,
    record_latency_metrics,
)

__all__ = [
    "Fig3aConfig",
    "Fig3aResult",
    "run",
    "format_result",
    "PAPER_VALUES",
    "CELL_TASK",
    "cell_params",
    "run_cell",
    "from_records",
    "run_parallel",
]

# The repetition cell this figure submits to the sweep runner: one protocol's
# full workload (registered in repro.runner.tasks).
CELL_TASK = "fig3a.protocol"

# Protocol -> paper-reported average latency in ms.
PAPER_VALUES = {"mercury": 77.10, "hermes": 83.22, "narwhal": 106.61, "lzero": 172.02}


@dataclass(frozen=True, slots=True)
class Fig3aConfig:
    num_nodes: int = 200
    f: int = 1
    k: int = 10
    transactions: int = 10
    horizon_ms: float = 8_000.0
    seed: int = 0
    # Fixed Narwhal validator-committee size (None = the protocol default of
    # N/3).  Paper-scale runs must pin this: every validator relays every
    # batch to every other validator, so an N/3 committee costs O(N²)
    # messages per transaction.  See docs/performance.md.
    narwhal_validators: int | None = None

    def _narwhal_config(self):
        if self.narwhal_validators is None:
            return None
        from ..baselines.narwhal import NarwhalConfig

        return NarwhalConfig(num_validators=self.narwhal_validators)


@dataclass(frozen=True, slots=True)
class Fig3aResult:
    config: Fig3aConfig
    summaries: dict[str, LatencySummary]
    setup_overhead_ms: dict[str, float]

    def ordering(self) -> list[str]:
        """Protocols from fastest to slowest average latency."""

        return sorted(self.summaries, key=lambda name: self.summaries[name].mean)


def run(
    config: Fig3aConfig | None = None,
    env: ExperimentEnvironment | None = None,
    obs: Observability | None = None,
) -> Fig3aResult:
    """Measure the Fig. 3a latency table.

    With *obs* set, each protocol run is traced/instrumented and the
    ``delivery.latency_ms`` histogram (labelled per protocol) is filled from
    the same latency population the returned summaries are computed from.
    """

    if config is None:
        config = Fig3aConfig()
    if env is None:
        env = build_environment(
            num_nodes=config.num_nodes, f=config.f, k=config.k, seed=config.seed
        )
    factories = protocol_factories(
        env,
        hermes_overrides={"gossip_fallback_enabled": False},
        obs=obs,
        narwhal_config=config._narwhal_config(),
    )
    origins = _workload(config, env)

    summaries: dict[str, LatencySummary] = {}
    overheads: dict[str, float] = {}
    for name in PROTOCOL_NAMES:
        system = factories[name]()
        # Construction rebinds the tracer clock to this system's simulator,
        # so open the per-protocol span only afterwards.
        span = obs.span("fig3a.protocol", protocol=name) if obs is not None else None
        system.start()
        for origin in origins:
            system.submit(origin, Transaction.create(origin=origin, created_at=0.0))
        system.run(until_ms=config.horizon_ms)
        summaries[name] = system.stats.latency_summary()
        setup = system.stats.setup_overheads()
        overheads[name] = sum(setup) / len(setup) if setup else 0.0
        if obs is not None:
            record_latency_metrics(obs, system.stats, protocol=name)
            span.end()
    return Fig3aResult(config=config, summaries=summaries, setup_overhead_ms=overheads)


def _workload(config: Fig3aConfig, env: ExperimentEnvironment) -> list[int]:
    """The deterministic transaction-origin workload for *config*."""

    rng = derive_rng(config.seed, "fig3a-origins")
    return [rng.choice(env.physical.nodes()) for _ in range(config.transactions)]


# ----------------------------------------------------------------------
# Sweep-runner integration (see repro.runner and docs/runner.md)
# ----------------------------------------------------------------------


def cell_params(config: Fig3aConfig) -> list[dict[str, Any]]:
    """The repetition grid: one cell per protocol."""

    cells = []
    for name in PROTOCOL_NAMES:
        cell: dict[str, Any] = {
            "protocol": name,
            "num_nodes": config.num_nodes,
            "f": config.f,
            "k": config.k,
            "transactions": config.transactions,
            "horizon_ms": config.horizon_ms,
            "seed": config.seed,
        }
        # Only stamp the override when set, so existing stored sweeps keep
        # their parameter hashes (resume compatibility).
        if config.narwhal_validators is not None:
            cell["narwhal_validators"] = config.narwhal_validators
        cells.append(cell)
    return cells


def run_cell(params: Mapping[str, Any]) -> dict[str, Any]:
    """Measure one protocol's workload; the ``fig3a.protocol`` runner task.

    Self-contained and fully seeded: the cell rebuilds (or fetches from the
    per-process cache) the same environment and workload ``run`` uses, so a
    sweep of these cells reproduces the figure no matter how it is scheduled
    across processes.
    """

    narwhal_validators = params.get("narwhal_validators")
    config = Fig3aConfig(
        num_nodes=int(params["num_nodes"]),
        f=int(params.get("f", 1)),
        k=int(params.get("k", 10)),
        transactions=int(params.get("transactions", 10)),
        horizon_ms=float(params.get("horizon_ms", 8_000.0)),
        seed=int(params.get("seed", 0)),
        narwhal_validators=(
            int(narwhal_validators) if narwhal_validators is not None else None
        ),
    )
    env = build_environment(
        num_nodes=config.num_nodes, f=config.f, k=config.k, seed=config.seed
    )
    factories = protocol_factories(
        env,
        hermes_overrides={"gossip_fallback_enabled": False},
        narwhal_config=config._narwhal_config(),
    )
    name = str(params["protocol"])
    system = factories[name]()
    system.start()
    for origin in _workload(config, env):
        system.submit(origin, Transaction.create(origin=origin, created_at=0.0))
    system.run(until_ms=config.horizon_ms)
    return {
        "protocol": name,
        "latencies": system.stats.all_delivery_latencies(),
        "setup_overheads": system.stats.setup_overheads(),
    }


def from_records(
    config: Fig3aConfig, records: Iterable[Mapping[str, Any]]
) -> Fig3aResult:
    """Fold stored run records back into the figure's result shape.

    The summaries are computed from each record's raw latency population, so
    they match what an in-process run derives from ``NetworkStats`` exactly.
    """

    summaries: dict[str, LatencySummary] = {}
    overheads: dict[str, float] = {}
    for record in records:
        if record.get("status") != "ok":
            continue
        result = record["result"]
        name = result["protocol"]
        summaries[name] = summarize_latencies(result["latencies"])
        setup = result["setup_overheads"]
        overheads[name] = sum(setup) / len(setup) if setup else 0.0
    return Fig3aResult(config=config, summaries=summaries, setup_overhead_ms=overheads)


def run_parallel(
    config: Fig3aConfig | None = None,
    *,
    jobs: int = 1,
    results_dir: str | None = None,
    resume: bool = True,
    timeout_s: float | None = None,
    progress=None,
    telemetry=None,
):
    """Run the figure's repetition grid through :func:`repro.runner.run_sweep`.

    Returns ``(result, sweep_report)``; with *results_dir* set, completed
    cells are skipped on re-invocation (resume).
    """

    from ._sweep import run_cells

    if config is None:
        config = Fig3aConfig()
    report = run_cells(
        CELL_TASK,
        cell_params(config),
        jobs=jobs,
        results_dir=results_dir,
        resume=resume,
        timeout_s=timeout_s,
        progress=progress,
        telemetry=telemetry,
    )
    return from_records(config, report.records), report


def format_result(result: Fig3aResult) -> str:
    rows = []
    for name in sorted(result.summaries, key=lambda n: result.summaries[n].mean):
        summary = result.summaries[name]
        rows.append(
            [
                name,
                summary.mean,
                summary.p5,
                summary.p95,
                result.setup_overhead_ms[name],
                PAPER_VALUES.get(name, float("nan")),
            ]
        )
    return format_table(
        [
            "protocol",
            "avg (ms)",
            "p5 (ms)",
            "p95 (ms)",
            "setup overhead (ms)",
            "paper avg (ms)",
        ],
        rows,
        title=(
            f"Fig. 3a — dissemination latency, N={result.config.num_nodes}, "
            f"{result.config.transactions} txs"
        ),
    )
