"""Fig. 2 — overlay-structure comparison.

For a single ``f+1``-connected instance of each structure (robust tree before
pruning, chordal ring, hypercube, random overlay) we measure:

* **dissemination latency** — mean arrival time across nodes when a message
  floods from ``f+1`` entry points over the structure's links;
* **load variance** — the standard deviation of the number of messages each
  node forwards during that flood.

Paper expectation: robust trees have the *lowest latency* but the *highest
load imbalance* of the four — the imbalance is then compensated by rotating
roles across the ``k`` overlays (Fig. 4).
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass

import networkx as nx

from ..net.topology import PhysicalNetwork, generate_physical_network
from ..overlay.base import TransportSpace
from ..overlay.chordal_ring import build_chordal_ring
from ..overlay.hypercube import build_hypercube
from ..overlay.random_graph import build_random_connected_overlay
from ..overlay.rank import RankTracker
from ..overlay.robust_tree import build_robust_tree
from ..utils.tables import format_table

__all__ = ["Fig2Config", "Fig2Row", "Fig2Result", "run", "format_result"]


@dataclass(frozen=True, slots=True)
class Fig2Config:
    num_nodes: int = 200
    f: int = 1
    seed: int = 0


@dataclass(frozen=True, slots=True)
class Fig2Row:
    structure: str
    avg_latency_ms: float
    load_stddev: float
    num_edges: int


@dataclass(frozen=True, slots=True)
class Fig2Result:
    config: Fig2Config
    rows: tuple[Fig2Row, ...]

    def row(self, structure: str) -> Fig2Row:
        for row in self.rows:
            if row.structure == structure:
                return row
        raise KeyError(structure)


def _flood_metrics(
    graph: nx.Graph,
    entries: list[int],
    physical: PhysicalNetwork,
) -> tuple[float, float]:
    """Latency and per-node forwarding load of a flood from *entries*.

    Every node forwards the message once to each neighbour (flooding), so its
    load equals its degree; arrival time is the latency-weighted shortest path
    from the nearest entry point.
    """

    weighted = nx.Graph()
    weighted.add_nodes_from(graph.nodes)
    for u, v in graph.edges:
        weighted.add_edge(u, v, weight=physical.transport_latency(u, v))
    distances: dict[int, float] = {}
    for node_distances in (
        nx.single_source_dijkstra_path_length(weighted, entry) for entry in entries
    ):
        for node, dist in node_distances.items():
            if node not in distances or dist < distances[node]:
                distances[node] = dist
    reachable = [d for d in distances.values()]
    avg_latency = statistics.mean(reachable) if reachable else math.inf
    loads = [graph.degree[n] for n in graph.nodes]
    return avg_latency, statistics.pstdev(loads)


def run(config: Fig2Config | None = None) -> Fig2Result:
    """Build the four structures and measure latency / load spread."""

    if config is None:
        config = Fig2Config()
    physical = generate_physical_network(config.num_nodes, seed=config.seed)
    node_ids = physical.nodes()
    space = TransportSpace(physical)
    entries_count = config.f + 1
    rows: list[Fig2Row] = []

    # Robust tree (pre-pruning), measured on its directed dissemination flow.
    tree = build_robust_tree(
        node_ids, space, config.f, overlay_id=0, ranks=RankTracker(node_ids),
        seed=config.seed,
    )
    arrivals = tree.arrival_times(space)
    tree_latency = statistics.mean(arrivals.values())
    tree_loads = [len(children) for children in tree.successors.values()]
    rows.append(
        Fig2Row(
            structure="robust-tree",
            avg_latency_ms=tree_latency,
            load_stddev=statistics.pstdev(tree_loads),
            num_edges=tree.num_edges,
        )
    )

    entry_sample = node_ids[:entries_count]
    for name, graph in (
        ("chordal-ring", build_chordal_ring(node_ids, config.f)),
        ("hypercube", build_hypercube(node_ids)),
        (
            "random",
            build_random_connected_overlay(node_ids, config.f, seed=config.seed),
        ),
    ):
        latency, load_sd = _flood_metrics(graph, entry_sample, physical)
        rows.append(
            Fig2Row(
                structure=name,
                avg_latency_ms=latency,
                load_stddev=load_sd,
                num_edges=graph.number_of_edges(),
            )
        )
    return Fig2Result(config=config, rows=tuple(rows))


def format_result(result: Fig2Result) -> str:
    table = format_table(
        ["structure", "avg latency (ms)", "load stddev", "edges"],
        [
            [row.structure, row.avg_latency_ms, row.load_stddev, row.num_edges]
            for row in result.rows
        ],
        title=(
            f"Fig. 2 — overlay structures over {result.config.num_nodes} nodes "
            f"(f={result.config.f})"
        ),
    )
    note = (
        "paper expectation: robust tree lowest latency, highest load imbalance "
        "(compensated across the k overlays)"
    )
    return f"{table}\n{note}"
