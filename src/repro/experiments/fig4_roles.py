"""Fig. 4 — role (rank) distribution across the overlay family.

The paper plots, for 200 nodes and k = 10 overlays, how often each node held
each rank (depth); rank 1 is an entry point.  The claims to verify:

* exactly ``k · (f+1)`` (node, overlay) pairs are entry points;
* ranks are widely spread — no node is consistently near the root or stuck at
  the leaves (role rotation).

We report the rank histogram, the per-node mean-rank spread, and a fairness
index (coefficient of variation of per-node average rank — lower is fairer).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from ..utils.tables import format_table
from .harness import ExperimentEnvironment, build_environment

__all__ = ["Fig4Config", "Fig4Result", "run", "format_result"]


@dataclass(frozen=True, slots=True)
class Fig4Config:
    num_nodes: int = 200
    f: int = 1
    k: int = 10
    seed: int = 0


@dataclass(frozen=True, slots=True)
class Fig4Result:
    config: Fig4Config
    # rank (depth + 1, matching the paper's 1-based figure) -> count of
    # (node, overlay) assignments at that rank.
    rank_histogram: dict[int, int]
    # node -> list of ranks it held across the k overlays.
    ranks_per_node: dict[int, list[int]]
    entry_assignments: int
    distinct_entry_nodes: int

    def per_node_average_rank(self) -> dict[int, float]:
        return {
            node: statistics.mean(ranks)
            for node, ranks in self.ranks_per_node.items()
        }

    def fairness_coefficient(self) -> float:
        """Coefficient of variation of per-node mean rank (lower = fairer)."""

        averages = list(self.per_node_average_rank().values())
        mean = statistics.mean(averages)
        if mean == 0:
            return 0.0
        return statistics.pstdev(averages) / mean

    def max_entry_repeats(self) -> int:
        """The most often any single node served as an entry point."""

        return max(
            (ranks.count(1) for ranks in self.ranks_per_node.values()), default=0
        )


def run(
    config: Fig4Config | None = None,
    env: ExperimentEnvironment | None = None,
) -> Fig4Result:
    if config is None:
        config = Fig4Config()
    if env is None:
        env = build_environment(
            num_nodes=config.num_nodes, f=config.f, k=config.k, seed=config.seed
        )

    histogram: dict[int, int] = {}
    per_node: dict[int, list[int]] = {n: [] for n in env.physical.nodes()}
    entry_assignments = 0
    entry_nodes: set[int] = set()
    for overlay in env.overlays:
        for node, depth in overlay.depth_of.items():
            rank = depth + 1  # the paper's figure is 1-based
            histogram[rank] = histogram.get(rank, 0) + 1
            per_node[node].append(rank)
            if rank == 1:
                entry_assignments += 1
                entry_nodes.add(node)
    return Fig4Result(
        config=config,
        rank_histogram=dict(sorted(histogram.items())),
        ranks_per_node=per_node,
        entry_assignments=entry_assignments,
        distinct_entry_nodes=len(entry_nodes),
    )


def format_result(result: Fig4Result) -> str:
    from ..utils.ascii_chart import bar_chart

    rows = [
        [rank, count] for rank, count in result.rank_histogram.items()
    ]
    table = format_table(
        ["rank (1 = entry point)", "(node, overlay) assignments"],
        rows,
        title=(
            f"Fig. 4 — role distribution, N={result.config.num_nodes}, "
            f"k={result.config.k}, f={result.config.f}"
        ),
    )
    chart = bar_chart(
        {f"rank {rank}": count for rank, count in result.rank_histogram.items()},
        width=40,
    )
    lines = [
        table,
        chart,
        f"entry-point assignments: {result.entry_assignments} "
        f"(expected k*(f+1) = {result.config.k * (result.config.f + 1)})",
        f"distinct nodes serving as entry point: {result.distinct_entry_nodes}",
        f"max times one node was an entry point: {result.max_entry_repeats()}",
        f"fairness (CV of per-node mean rank, lower is fairer): "
        f"{result.fairness_coefficient():.3f}",
    ]
    return "\n".join(lines)
