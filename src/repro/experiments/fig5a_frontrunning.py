"""Fig. 5a — front-running success rate vs fraction of malicious nodes.

For each protocol and each malicious fraction, repeated trials pick a random
(victim sender, honest proposer) pair, let the first malicious observer race
an adversarial transaction against the victim's (with per-protocol injection
and censorship levers — see :mod:`repro.attacks.frontrun`), and count the
fraction of trials where the adversarial transaction precedes the victim's in
the proposer's block.

Paper values (10% → 33% malicious): HERMES 2% → 5.9%, L∅ 5% → 19%,
Narwhal 10% → 51%, Mercury 25% → 70%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..attacks.frontrun import run_front_running_trial
from ..utils.rng import derive_rng
from ..utils.tables import format_table
from .harness import (
    PROTOCOL_NAMES,
    ExperimentEnvironment,
    build_environment,
    protocol_factories,
)

__all__ = [
    "Fig5aConfig",
    "Fig5aResult",
    "run",
    "format_result",
    "PAPER_VALUES",
    "CELL_TASK",
    "cell_params",
    "run_cell",
    "from_records",
    "run_parallel",
]

CELL_TASK = "fig5a.trial"

# protocol -> {fraction: paper success rate}
PAPER_VALUES = {
    "hermes": {0.10: 0.02, 0.33: 0.059},
    "lzero": {0.10: 0.05, 0.33: 0.19},
    "narwhal": {0.10: 0.10, 0.33: 0.51},
    "mercury": {0.10: 0.25, 0.33: 0.70},
}


@dataclass(frozen=True, slots=True)
class Fig5aConfig:
    num_nodes: int = 150
    f: int = 1
    k: int = 10
    fractions: tuple[float, ...] = (0.10, 0.20, 0.33)
    trials: int = 20
    horizon_ms: float = 4_000.0
    seed: int = 0


@dataclass(frozen=True, slots=True)
class Fig5aResult:
    config: Fig5aConfig
    # protocol -> fraction -> success rate in [0, 1]
    success_rates: dict[str, dict[float, float]]
    # protocol -> fraction -> total ViolationLog entries across trials (0 for
    # protocols without an accountability layer) — the evidence HERMES's
    # monitors produced while resisting the attack.
    violations: dict[str, dict[float, int]] = field(default_factory=dict)
    # protocol -> fraction -> count of trials where the victim transaction
    # never reached the proposer's block at all (the verdict's
    # ``victim_censored`` flag) — previously folded invisibly into the
    # "attack failed" bucket when no adversarial transaction landed either.
    censored: dict[str, dict[float, int]] = field(default_factory=dict)

    def rate(self, protocol: str, fraction: float) -> float:
        return self.success_rates[protocol][fraction]

    def ordering_at(self, fraction: float) -> list[str]:
        """Protocols from most to least front-running resistant."""

        return sorted(self.success_rates, key=lambda p: self.success_rates[p][fraction])


def run(
    config: Fig5aConfig | None = None,
    env: ExperimentEnvironment | None = None,
) -> Fig5aResult:
    if config is None:
        config = Fig5aConfig()
    if env is None:
        env = build_environment(
            num_nodes=config.num_nodes, f=config.f, k=config.k, seed=config.seed
        )
    factories = protocol_factories(
        env, hermes_overrides={"gossip_fallback_enabled": False}
    )
    nodes = env.physical.nodes()
    pairs = _trial_pairs(config, env)

    rates: dict[str, dict[float, float]] = {}
    violations: dict[str, dict[float, int]] = {}
    censored: dict[str, dict[float, int]] = {}
    for name in PROTOCOL_NAMES:
        factory = factories[name]
        rates[name] = {}
        violations[name] = {}
        censored[name] = {}
        for fraction in config.fractions:
            wins = 0
            evidence = 0
            suppressed = 0
            for trial, (victim, proposer) in enumerate(pairs):
                result = run_front_running_trial(
                    factory,
                    nodes,
                    fraction,
                    victim,
                    proposer,
                    horizon_ms=config.horizon_ms,
                    seed=_trial_seed(fraction, trial),
                )
                wins += result.verdict.attacker_won
                suppressed += result.verdict.victim_censored
                if result.violation_summary is not None:
                    evidence += result.violation_summary["total"]
            rates[name][fraction] = wins / config.trials
            violations[name][fraction] = evidence
            censored[name][fraction] = suppressed
    return Fig5aResult(
        config=config, success_rates=rates, violations=violations, censored=censored
    )


def _trial_pairs(
    config: Fig5aConfig, env: ExperimentEnvironment
) -> list[tuple[int, int]]:
    """The deterministic (victim, proposer) pair of every trial index."""

    rng = derive_rng(config.seed, "fig5a-pairs")
    nodes = env.physical.nodes()
    return [tuple(rng.sample(nodes, 2)) for _ in range(config.trials)]


def _trial_seed(fraction: float, trial: int) -> int:
    return 1000 * int(fraction * 100) + trial


# ----------------------------------------------------------------------
# Sweep-runner integration (see repro.runner and docs/runner.md)
# ----------------------------------------------------------------------


def cell_params(config: Fig5aConfig) -> list[dict[str, Any]]:
    """The repetition grid: one cell per (protocol, fraction, trial)."""

    return [
        {
            "protocol": name,
            "num_nodes": config.num_nodes,
            "f": config.f,
            "k": config.k,
            "fraction": fraction,
            "trial": trial,
            "trials": config.trials,
            "horizon_ms": config.horizon_ms,
            "seed": config.seed,
        }
        for name in PROTOCOL_NAMES
        for fraction in config.fractions
        for trial in range(config.trials)
    ]


def run_cell(params: Mapping[str, Any]) -> dict[str, Any]:
    """Run one front-running trial; the ``fig5a.trial`` runner task.

    ``trials`` travels with every cell so the full (victim, proposer) pair
    list — drawn once per figure from the config seed — can be rebuilt and
    indexed by ``trial``, keeping the cell bit-compatible with the serial
    loop in :func:`run`.
    """

    config = Fig5aConfig(
        num_nodes=int(params["num_nodes"]),
        f=int(params.get("f", 1)),
        k=int(params.get("k", 10)),
        trials=int(params["trials"]),
        horizon_ms=float(params.get("horizon_ms", 4_000.0)),
        seed=int(params.get("seed", 0)),
    )
    env = build_environment(
        num_nodes=config.num_nodes, f=config.f, k=config.k, seed=config.seed
    )
    factories = protocol_factories(
        env, hermes_overrides={"gossip_fallback_enabled": False}
    )
    name = str(params["protocol"])
    fraction = float(params["fraction"])
    trial = int(params["trial"])
    nodes = env.physical.nodes()
    victim, proposer = _trial_pairs(config, env)[trial]
    result = run_front_running_trial(
        factories[name],
        nodes,
        fraction,
        victim,
        proposer,
        horizon_ms=config.horizon_ms,
        seed=_trial_seed(fraction, trial),
    )
    return {
        "protocol": name,
        "fraction": fraction,
        "trial": trial,
        "attacker_won": int(result.verdict.attacker_won),
        "victim_censored": int(result.verdict.victim_censored),
        "violations": (
            result.violation_summary["total"]
            if result.violation_summary is not None
            else 0
        ),
    }


def from_records(
    config: Fig5aConfig, records: Iterable[Mapping[str, Any]]
) -> Fig5aResult:
    """Fold stored trial records back into per-(protocol, fraction) rates."""

    wins: dict[str, dict[float, int]] = {}
    evidence: dict[str, dict[float, int]] = {}
    suppressed: dict[str, dict[float, int]] = {}
    for record in records:
        if record.get("status") != "ok":
            continue
        result = record["result"]
        by_fraction = wins.setdefault(result["protocol"], {})
        by_fraction[result["fraction"]] = (
            by_fraction.get(result["fraction"], 0) + result["attacker_won"]
        )
        # Records written before the violation/censorship columns existed
        # fold as zero.
        counts = evidence.setdefault(result["protocol"], {})
        counts[result["fraction"]] = counts.get(result["fraction"], 0) + result.get(
            "violations", 0
        )
        hidden = suppressed.setdefault(result["protocol"], {})
        hidden[result["fraction"]] = hidden.get(result["fraction"], 0) + result.get(
            "victim_censored", 0
        )
    rates = {
        name: {fraction: count / config.trials for fraction, count in by_fraction.items()}
        for name, by_fraction in wins.items()
    }
    return Fig5aResult(
        config=config, success_rates=rates, violations=evidence, censored=suppressed
    )


def run_parallel(
    config: Fig5aConfig | None = None,
    *,
    jobs: int = 1,
    results_dir: str | None = None,
    resume: bool = True,
    timeout_s: float | None = None,
    progress=None,
    telemetry=None,
):
    """Run the figure's grid through the sweep runner; see ``docs/runner.md``.

    Returns ``(result, sweep_report)``.
    """

    from ._sweep import run_cells

    if config is None:
        config = Fig5aConfig()
    report = run_cells(
        CELL_TASK,
        cell_params(config),
        jobs=jobs,
        results_dir=results_dir,
        resume=resume,
        timeout_s=timeout_s,
        progress=progress,
        telemetry=telemetry,
    )
    return from_records(config, report.records), report


def format_result(result: Fig5aResult) -> str:
    fractions = result.config.fractions
    headers = ["protocol"] + [f"{f:.0%} malicious" for f in fractions] + [
        "paper (10%→33%)",
        "censored",
        "evidence",
    ]
    rows = []
    for name, by_fraction in result.success_rates.items():
        paper = PAPER_VALUES.get(name, {})
        evidence = sum(result.violations.get(name, {}).values())
        hidden = sum(result.censored.get(name, {}).values())
        rows.append(
            [name]
            + [f"{by_fraction[f]:.0%}" for f in fractions]
            + [f"{paper.get(0.10, 0):.0%}→{paper.get(0.33, 0):.0%}"]
            + [str(hidden) if hidden else "-"]
            + [str(evidence) if evidence else "-"]
        )
    return format_table(
        headers,
        rows,
        title=(
            f"Fig. 5a — front-running success rate, N={result.config.num_nodes}, "
            f"{result.config.trials} trials/point"
        ),
    )
