"""Fig. 5a — front-running success rate vs fraction of malicious nodes.

For each protocol and each malicious fraction, repeated trials pick a random
(victim sender, honest proposer) pair, let the first malicious observer race
an adversarial transaction against the victim's (with per-protocol injection
and censorship levers — see :mod:`repro.attacks.frontrun`), and count the
fraction of trials where the adversarial transaction precedes the victim's in
the proposer's block.

Paper values (10% → 33% malicious): HERMES 2% → 5.9%, L∅ 5% → 19%,
Narwhal 10% → 51%, Mercury 25% → 70%.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..attacks.frontrun import run_front_running_trial
from ..utils.rng import derive_rng
from ..utils.tables import format_table
from .harness import ExperimentEnvironment, build_environment, protocol_factories

__all__ = ["Fig5aConfig", "Fig5aResult", "run", "format_result", "PAPER_VALUES"]

# protocol -> {fraction: paper success rate}
PAPER_VALUES = {
    "hermes": {0.10: 0.02, 0.33: 0.059},
    "lzero": {0.10: 0.05, 0.33: 0.19},
    "narwhal": {0.10: 0.10, 0.33: 0.51},
    "mercury": {0.10: 0.25, 0.33: 0.70},
}


@dataclass(frozen=True, slots=True)
class Fig5aConfig:
    num_nodes: int = 150
    f: int = 1
    k: int = 10
    fractions: tuple[float, ...] = (0.10, 0.20, 0.33)
    trials: int = 20
    horizon_ms: float = 4_000.0
    seed: int = 0


@dataclass(frozen=True, slots=True)
class Fig5aResult:
    config: Fig5aConfig
    # protocol -> fraction -> success rate in [0, 1]
    success_rates: dict[str, dict[float, float]]

    def rate(self, protocol: str, fraction: float) -> float:
        return self.success_rates[protocol][fraction]

    def ordering_at(self, fraction: float) -> list[str]:
        """Protocols from most to least front-running resistant."""

        return sorted(self.success_rates, key=lambda p: self.success_rates[p][fraction])


def run(
    config: Fig5aConfig | None = None,
    env: ExperimentEnvironment | None = None,
) -> Fig5aResult:
    if config is None:
        config = Fig5aConfig()
    if env is None:
        env = build_environment(
            num_nodes=config.num_nodes, f=config.f, k=config.k, seed=config.seed
        )
    factories = protocol_factories(
        env, hermes_overrides={"gossip_fallback_enabled": False}
    )
    nodes = env.physical.nodes()
    rng = derive_rng(config.seed, "fig5a-pairs")
    pairs = [tuple(rng.sample(nodes, 2)) for _ in range(config.trials)]

    rates: dict[str, dict[float, float]] = {}
    for name in ("hermes", "lzero", "narwhal", "mercury"):
        factory = factories[name]
        rates[name] = {}
        for fraction in config.fractions:
            wins = 0
            for trial, (victim, proposer) in enumerate(pairs):
                result = run_front_running_trial(
                    factory,
                    nodes,
                    fraction,
                    victim,
                    proposer,
                    horizon_ms=config.horizon_ms,
                    seed=1000 * int(fraction * 100) + trial,
                )
                wins += result.verdict.attacker_won
            rates[name][fraction] = wins / config.trials
    return Fig5aResult(config=config, success_rates=rates)


def format_result(result: Fig5aResult) -> str:
    fractions = result.config.fractions
    headers = ["protocol"] + [f"{f:.0%} malicious" for f in fractions] + [
        "paper (10%→33%)"
    ]
    rows = []
    for name, by_fraction in result.success_rates.items():
        paper = PAPER_VALUES.get(name, {})
        rows.append(
            [name]
            + [f"{by_fraction[f]:.0%}" for f in fractions]
            + [f"{paper.get(0.10, 0):.0%}→{paper.get(0.33, 0):.0%}"]
        )
    return format_table(
        headers,
        rows,
        title=(
            f"Fig. 5a — front-running success rate, N={result.config.num_nodes}, "
            f"{result.config.trials} trials/point"
        ),
    )
