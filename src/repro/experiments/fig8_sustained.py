"""Fig. 8 — sustained population load: fee market, eviction, tail latency.

Fig. 6 finds each protocol's saturation knee with a few seconds of open-loop
arrivals.  Fig. 8 asks what a deployment actually experiences: a
:class:`~repro.population.ClientPopulation` (millions of clients, Zipf
activity, session churn) submitting through a
:class:`~repro.population.FeeMarket` for minutes-to-hours of simulated time,
against bounded mempools (:class:`~repro.mempool.MempoolPolicy`) and
constant-memory streaming telemetry — so the run length is limited by
patience, not RAM.

Per (protocol, offered rate) the sweep reports goodput, the p50/p95/p99 tail
over time, the base-fee trajectory, and eviction/expiry/rejection rates; per
protocol it reports the goodput knee (same ``KNEE_GOODPUT_RATIO`` rule as
Fig. 6).  Alongside the wire protocols, the ``ingest`` pseudo-protocol runs
the simulator-free admission/service pipeline (:func:`repro.population.run_ingest`)
— the workload-layer ceiling no dissemination protocol can beat.

Each point is one content-addressed runner task (``fig8.point``), so sweeps
resume for free: ``python -m repro sweep --figure fig8``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..load.capacity import CapacityConfig, CapacityModel
from ..mempool.mempool import MempoolPolicy
from ..population.clients import ClientPopulation, PopulationConfig
from ..population.driver import PopulationDriver, PopulationResult
from ..population.fees import FeeMarket, FeeMarketConfig
from ..population.pipeline import run_ingest
from ..utils.tables import format_table
from .fig6_saturation import KNEE_GOODPUT_RATIO
from .harness import (
    PROTOCOL_NAMES,
    ExperimentEnvironment,
    build_environment,
    protocol_factories,
)

__all__ = [
    "Fig8Config",
    "Fig8Result",
    "KNEE_GOODPUT_RATIO",
    "run",
    "format_result",
    "CELL_TASK",
    "cell_params",
    "run_cell",
    "from_records",
    "run_parallel",
]

CELL_TASK = "fig8.point"

#: Offered rates (tx/s) swept by default.  The same modest 32 KB/s uplinks
#: as Fig. 6, so the wire protocols keep their knees inside the sweep; the
#: ``ingest`` ceiling is set by ``service_tps`` instead.
DEFAULT_RATES = (2.0, 5.0, 10.0, 20.0, 40.0)

#: The wire protocols plus the workload-layer ceiling.
DEFAULT_PROTOCOLS: tuple[str, ...] = PROTOCOL_NAMES + ("ingest",)


@dataclass(frozen=True, slots=True)
class Fig8Config:
    num_nodes: int = 24
    f: int = 1
    k: int = 3
    rates_tps: tuple[float, ...] = DEFAULT_RATES
    protocols: tuple[str, ...] = DEFAULT_PROTOCOLS
    duration_ms: float = 60_000.0
    drain_ms: float = 5_000.0
    # Population shape (who submits): see PopulationConfig.
    num_clients: int = 1_000_000
    session_duration_ms: float = 8_000.0
    session_tx_rate_tps: float = 1.0
    zipf_s: float = 1.1
    # Fee market and admission control.
    initial_base_fee: float = 1.0
    fee_update_interval_ms: float = 500.0
    target_occupancy: int = 500
    mempool_max_size: int = 2_000
    mempool_ttl_ms: float = 60_000.0
    # Wire capacity (same defaults as Fig. 6).
    uplink_kb_per_s: float = 32.0
    downlink_kb_per_s: float = 128.0
    queue_bytes: int = 32 * 1024
    # Telemetry.
    window_ms: float = 10_000.0
    delivery_fraction: float = 0.99
    sketch_capacity: int = 512
    # Service rate of the simulator-free ``ingest`` pseudo-protocol.
    service_tps: float = 25.0
    seed: int = 0

    def capacity_config(self) -> CapacityConfig:
        return CapacityConfig(
            uplink_kb_per_s=self.uplink_kb_per_s,
            downlink_kb_per_s=self.downlink_kb_per_s,
            queue_bytes=self.queue_bytes,
        )

    def population_config(self, rate_tps: float) -> PopulationConfig:
        return PopulationConfig.for_offered_rate(
            rate_tps,
            num_clients=self.num_clients,
            num_nodes=self.num_nodes,
            seed=self.seed,
            session_duration_ms=self.session_duration_ms,
            session_tx_rate_tps=self.session_tx_rate_tps,
            zipf_s=self.zipf_s,
        )

    def fee_market(self) -> FeeMarket:
        return FeeMarket(
            FeeMarketConfig(
                initial_base_fee=self.initial_base_fee,
                update_interval_ms=self.fee_update_interval_ms,
            ),
            seed=self.seed,
        )

    def mempool_policy(self) -> MempoolPolicy:
        return MempoolPolicy(
            max_size=self.mempool_max_size, ttl_ms=self.mempool_ttl_ms
        )


@dataclass(frozen=True, slots=True)
class Fig8Result:
    config: Fig8Config
    #: protocol -> one :class:`~repro.population.PopulationResult` per swept
    #: rate, in ascending offered-rate order.
    curves: dict[str, list[PopulationResult]] = field(default_factory=dict)

    def knee_tps(self, protocol: str) -> float | None:
        """First offered rate whose goodput falls below the knee ratio."""

        for point in self.curves.get(protocol, []):
            if point.goodput_tps < KNEE_GOODPUT_RATIO * point.offered_tps:
                return point.offered_tps
        return None

    def fee_escalation(self, protocol: str) -> float | None:
        """Peak base fee over initial at the highest swept rate."""

        curve = self.curves.get(protocol, [])
        if not curve:
            return None
        final = curve[-1]
        initial = self.config.initial_base_fee
        return final.base_fee_max / initial if initial else None


def _run_point(
    config: Fig8Config,
    env: ExperimentEnvironment | None,
    protocol: str,
    rate_tps: float,
) -> PopulationResult:
    """One sustained-load point: one protocol under one offered rate."""

    population = ClientPopulation(config.population_config(rate_tps))
    market = config.fee_market()
    policy = config.mempool_policy()
    if protocol == "ingest":
        return run_ingest(
            population,
            duration_ms=config.duration_ms,
            drain_ms=config.drain_ms,
            service_tps=config.service_tps,
            policy=policy,
            fee_market=market,
            window_ms=config.window_ms,
            target_occupancy=config.target_occupancy,
            sketch_capacity=config.sketch_capacity,
        )
    if env is None:
        raise ValueError(f"protocol {protocol!r} needs a built environment")
    factories = protocol_factories(env)
    system = factories[protocol]()
    system.network.capacity = CapacityModel(config.capacity_config())
    driver = PopulationDriver(
        system,
        population,
        protocol=protocol,
        fee_market=market,
        policy=policy,
        delivery_fraction=config.delivery_fraction,
        sketch_capacity=config.sketch_capacity,
        window_ms=config.window_ms,
        target_occupancy=config.target_occupancy,
    )
    return driver.run(config.duration_ms, drain_ms=config.drain_ms)


def _environment_for(config: Fig8Config) -> ExperimentEnvironment | None:
    if all(protocol == "ingest" for protocol in config.protocols):
        return None
    return build_environment(
        num_nodes=config.num_nodes, f=config.f, k=config.k, seed=config.seed
    )


def run(config: Fig8Config | None = None) -> Fig8Result:
    if config is None:
        config = Fig8Config()
    env = _environment_for(config)
    curves: dict[str, list[PopulationResult]] = {}
    for protocol in config.protocols:
        curves[protocol] = [
            _run_point(config, env, protocol, rate) for rate in config.rates_tps
        ]
    return Fig8Result(config=config, curves=curves)


# ----------------------------------------------------------------------
# Sweep-runner integration (see repro.runner and docs/runner.md)
# ----------------------------------------------------------------------

_CELL_FIELDS: tuple[str, ...] = (
    "num_nodes",
    "f",
    "k",
    "duration_ms",
    "drain_ms",
    "num_clients",
    "session_duration_ms",
    "session_tx_rate_tps",
    "zipf_s",
    "initial_base_fee",
    "fee_update_interval_ms",
    "target_occupancy",
    "mempool_max_size",
    "mempool_ttl_ms",
    "uplink_kb_per_s",
    "downlink_kb_per_s",
    "queue_bytes",
    "window_ms",
    "delivery_fraction",
    "sketch_capacity",
    "service_tps",
    "seed",
)


def cell_params(config: Fig8Config) -> list[dict[str, Any]]:
    """The sweep grid: one cell per (protocol, offered rate)."""

    base = {name: getattr(config, name) for name in _CELL_FIELDS}
    return [
        {"protocol": protocol, "rate_tps": rate, **base}
        for protocol in config.protocols
        for rate in config.rates_tps
    ]


def _config_from_params(params: Mapping[str, Any]) -> Fig8Config:
    defaults = Fig8Config()
    kwargs: dict[str, Any] = {}
    for name in _CELL_FIELDS:
        default = getattr(defaults, name)
        value = params.get(name, default)
        kwargs[name] = type(default)(value)
    return Fig8Config(**kwargs)


def run_cell(params: Mapping[str, Any]) -> dict[str, Any]:
    """Measure one sustained-load point; the ``fig8.point`` runner task."""

    config = _config_from_params(params)
    protocol = str(params["protocol"])
    env = None
    if protocol != "ingest":
        env = build_environment(
            num_nodes=config.num_nodes, f=config.f, k=config.k, seed=config.seed
        )
    result = _run_point(config, env, protocol, float(params["rate_tps"]))
    return result.to_json()


def from_records(
    config: Fig8Config, records: Iterable[Mapping[str, Any]]
) -> Fig8Result:
    """Fold stored run records back into per-protocol sustained curves."""

    curves: dict[str, list[PopulationResult]] = {}
    for record in records:
        if record.get("status") != "ok":
            continue
        point = PopulationResult.from_json(record["result"])
        curves.setdefault(point.protocol, []).append(point)
    for curve in curves.values():
        curve.sort(key=lambda point: point.offered_tps)
    ordered = {
        protocol: curves[protocol]
        for protocol in config.protocols
        if protocol in curves
    }
    return Fig8Result(config=config, curves=ordered)


def run_parallel(
    config: Fig8Config | None = None,
    *,
    jobs: int = 1,
    results_dir: str | None = None,
    resume: bool = True,
    timeout_s: float | None = None,
    progress=None,
    telemetry=None,
):
    """Run the sustained sweep through the runner; see ``docs/runner.md``.

    Returns ``(result, sweep_report)``.
    """

    from ._sweep import run_cells

    if config is None:
        config = Fig8Config()
    report = run_cells(
        CELL_TASK,
        cell_params(config),
        jobs=jobs,
        results_dir=results_dir,
        resume=resume,
        timeout_s=timeout_s,
        progress=progress,
        telemetry=telemetry,
    )
    return from_records(config, report.records), report


def format_result(result: Fig8Result) -> str:
    def cell(value: float | None) -> float:
        return float("nan") if value is None else value

    tables = []
    for protocol, curve in result.curves.items():
        rows = [
            [
                point.offered_tps,
                point.goodput_tps,
                cell(point.p50_ms),
                cell(point.p95_ms),
                cell(point.p99_ms),
                point.base_fee_max,
                point.evicted + point.expired + point.rejected,
            ]
            for point in curve
        ]
        knee = result.knee_tps(protocol)
        title = (
            f"Fig. 8 — {protocol} sustained load, N={result.config.num_nodes}, "
            f"{result.config.num_clients:,} clients, "
            f"{result.config.duration_ms / 1000:.0f}s"
        )
        table = format_table(
            [
                "offered tx/s",
                "goodput tx/s",
                "p50 ms",
                "p95 ms",
                "p99 ms",
                "base fee max",
                "drops",
            ],
            rows,
            title=title,
        )
        knee_line = (
            f"knee: {knee:.1f} tx/s" if knee is not None else "knee: beyond sweep"
        )
        escalation = result.fee_escalation(protocol)
        if escalation is not None:
            knee_line += f"; base-fee escalation at top rate: {escalation:.2f}x"
        tables.append(f"{table}\n{knee_line}")
    return "\n\n".join(tables)
