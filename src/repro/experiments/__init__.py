"""Experiment harnesses reproducing every table and figure of the paper.

Each module exposes ``run(config) -> result`` plus a ``format_result`` that
prints the same rows/series the paper reports, side by side with the paper's
published numbers:

* :mod:`table1`  — qualitative comparison of dissemination approaches;
* :mod:`fig2_overlays` — overlay-structure latency / load comparison;
* :mod:`fig3a_latency` — protocol latency (avg + 5th–95th percentile);
* :mod:`fig3b_bandwidth` — per-node bandwidth overhead;
* :mod:`fig4_roles` — role (rank) distribution across the overlay family;
* :mod:`fig5a_frontrunning` — front-running success vs malicious fraction;
* :mod:`fig5b_robustness` — delivery probability vs malicious fraction;
* :mod:`fig6_saturation` — goodput/latency vs offered load;
* :mod:`fig7_adversary` — strategy zoo: success, extracted value, fairness.
"""

from .harness import ExperimentEnvironment, build_environment, protocol_factories

__all__ = ["ExperimentEnvironment", "build_environment", "protocol_factories"]
