"""Exception hierarchy for the HERMES reproduction.

Every error raised by this library derives from :class:`ReproError`, so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish configuration mistakes from protocol violations detected at
runtime.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A parameter combination is invalid (e.g. ``n < 3f + 1``)."""


class CryptoError(ReproError):
    """Base class for failures in the cryptographic substrate."""


class InvalidSignatureError(CryptoError):
    """A signature or proof failed verification."""


class ThresholdNotReachedError(CryptoError):
    """Fewer than ``threshold`` valid partial signatures were supplied."""


class ShareError(CryptoError):
    """A secret share is malformed or inconsistent with the public commitments."""


class TopologyError(ReproError):
    """The physical network or an overlay violates a structural requirement."""


class OverlayConnectivityError(TopologyError):
    """An overlay does not provide the required ``f+1``-connectivity."""


class ProtocolViolationError(ReproError):
    """A node detected a protocol violation by a peer.

    Instances carry the accused node and a human-readable reason so that
    accountability layers can log and act on them.
    """

    def __init__(self, accused: int, reason: str) -> None:
        super().__init__(f"node {accused}: {reason}")
        self.accused = accused
        self.reason = reason


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class SweepExecutionError(ReproError):
    """The sweep runner could not execute a run (see ``repro.runner``)."""


class TraceReadError(ReproError):
    """A JSONL trace or bench record is malformed or has an unsupported
    version (see ``repro.obs.analysis``)."""


class MembershipError(ReproError):
    """A join/leave operation is inconsistent with the current membership."""
