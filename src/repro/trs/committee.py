"""Committee-member side of TRS generation (Algorithm 4, steps 2–3).

Each committee member embeds a :class:`TrsCommitteeMember` component.  On a
seed request it injects the ``(requester, i, H(m))`` binding into the
committee's Bracha RBC; once the binding is *delivered* (agreed despite up to
``f`` Byzantine members), it produces a partial threshold signature and
returns it to the requester.

Sequence-number discipline: the committee only serves sequence number ``i``
for a requester after having served ``0 .. i-1`` (out-of-order requests are
parked).  This is what later forces senders to transmit skipped messages
before new ones (§VI-C) — the committee simply won't mint seeds for gaps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from ..crypto.backend import CryptoBackend
from ..crypto.hashing import encode_for_hash
from ..net.events import Message
from ..net.node import ProtocolNode
from ..rbc.bracha import BrachaContext

__all__ = [
    "TRS_REQUEST_KIND",
    "TRS_PARTIAL_KIND",
    "TrsCommitteeMember",
    "trs_binding",
]

TRS_REQUEST_KIND = "trs-request"
TRS_PARTIAL_KIND = "trs-partial"

# Payload bytes: sequence number + 32-byte digest (+ requester id).
_REQUEST_PAYLOAD_BYTES = 44


def trs_binding(requester: int, sequence: int, digest: bytes) -> bytes:
    """Canonical byte string the committee signs for one seed."""

    return encode_for_hash("trs-binding", requester, sequence, digest)


@dataclass
class _RequesterState:
    """Per-requester sequencing state at one committee member."""

    next_expected: int = 0
    parked: dict[int, bytes] = field(default_factory=dict)
    served: set[int] = field(default_factory=set)


class TrsCommitteeMember:
    """TRS logic embedded in a committee member's protocol node."""

    def __init__(
        self,
        node: ProtocolNode,
        committee: Sequence[int],
        f: int,
        backend: CryptoBackend,
        enforce_sequencing: bool = True,
    ) -> None:
        self._node = node
        self.committee = tuple(sorted(set(committee)))
        self.f = f
        self._backend = backend
        self._enforce_sequencing = enforce_sequencing
        self._requesters: dict[int, _RequesterState] = {}
        self._rbc = BrachaContext(
            node, self.committee, f, on_deliver=self._on_agreed, kind_prefix="trs-rbc"
        )

    # -- dispatch ---------------------------------------------------------

    def handles(self, kind: str) -> bool:
        return kind == TRS_REQUEST_KIND or self._rbc.handles(kind)

    def handle(self, sender: int, message: Message) -> bool:
        """Process a TRS-related message; False when the kind is foreign."""

        if message.kind == TRS_REQUEST_KIND:
            requester, sequence, digest = message.payload
            if requester != sender:
                return True  # a relayed request is a protocol violation; drop
            self._on_request(requester, sequence, digest)
            return True
        return self._rbc.handle(sender, message)

    # -- protocol -----------------------------------------------------------

    def _on_request(self, requester: int, sequence: int, digest: bytes) -> None:
        state = self._requesters.setdefault(requester, _RequesterState())
        if sequence in state.served or sequence in state.parked:
            return
        if self._enforce_sequencing and sequence > state.next_expected:
            # Gap: the requester skipped sequence numbers. Park until filled.
            state.parked[sequence] = digest
            return
        self._admit(requester, sequence, digest, state)

    def _admit(
        self, requester: int, sequence: int, digest: bytes, state: _RequesterState
    ) -> None:
        self._rbc.inject(requester, sequence, digest)
        if sequence == state.next_expected:
            state.next_expected += 1
            # Drain any parked requests that are now in order.
            while state.next_expected in state.parked:
                parked_digest = state.parked.pop(state.next_expected)
                self._rbc.inject(requester, state.next_expected, parked_digest)
                state.next_expected += 1

    def _on_agreed(self, requester: int, sequence: int, payload: Hashable) -> None:
        """RBC delivered the binding: sign and reply (Alg. 4 step 3)."""

        digest = payload if isinstance(payload, bytes) else bytes(payload)
        state = self._requesters.setdefault(requester, _RequesterState())
        state.served.add(sequence)
        binding = trs_binding(requester, sequence, digest)
        partial = self._backend.partial_sign(self._node.node_id, binding)
        reply = Message(
            TRS_PARTIAL_KIND,
            (sequence, digest, partial),
            self._backend.partial_size,
        )
        if requester == self._node.node_id:
            # The committee member requested a seed itself.
            self._node.receive(self._node.node_id, reply)
        else:
            self._node.send(requester, reply)
