"""Threshold Random Seed generation (paper §VI-A, Algorithm 4).

A sender binds its ``i``-th message to ``H(m)`` and asks the ``3f+1``
committee for a seed.  The committee reliably broadcasts the binding among
itself (so every honest member signs the same thing), then each member returns
a partial threshold signature.  The sender combines ``2f+1`` partials into the
unique signature ``φ(i, H(m))`` — the seed that verifiably selects the
dissemination overlay (``overlay = seed mod k``).
"""

from .committee import TRS_PARTIAL_KIND, TRS_REQUEST_KIND, TrsCommitteeMember, trs_binding
from .seed import TrsClient, TrsResult

__all__ = [
    "TRS_PARTIAL_KIND",
    "TRS_REQUEST_KIND",
    "TrsClient",
    "TrsCommitteeMember",
    "TrsResult",
    "trs_binding",
]
