"""Sender side of TRS generation (Algorithm 4, steps 1 and 4).

The :class:`TrsClient` sends ``(i, H(m))`` to every committee member, collects
their partial signatures, verifies each one publicly, combines ``2f+1`` of
them into the unique threshold signature, and hands the resulting
:class:`TrsResult` (signature + selected overlay) to its owner's callback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..crypto.backend import CryptoBackend
from ..errors import ThresholdNotReachedError
from ..net.events import Message
from ..net.node import ProtocolNode
from .committee import TRS_PARTIAL_KIND, TRS_REQUEST_KIND, trs_binding

__all__ = ["TrsClient", "TrsResult"]


@dataclass(frozen=True, slots=True)
class TrsResult:
    """A minted seed: the combined signature and the overlay it selects."""

    sequence: int
    digest: bytes
    signature: object
    overlay_id: int


@dataclass
class _PendingRequest:
    digest: bytes
    callback: Callable[[TrsResult], None]
    partials: list[object] = field(default_factory=list)
    contributors: set[int] = field(default_factory=set)
    done: bool = False


class TrsClient:
    """Requests and assembles threshold random seeds for one sender node."""

    def __init__(
        self,
        node: ProtocolNode,
        committee: Sequence[int],
        f: int,
        backend: CryptoBackend,
        num_overlays: int,
    ) -> None:
        if num_overlays < 1:
            raise ValueError(f"need at least one overlay, got {num_overlays}")
        self._node = node
        self.committee = tuple(sorted(set(committee)))
        self.f = f
        self._backend = backend
        self._num_overlays = num_overlays
        self._next_sequence = 0
        self._pending: dict[int, _PendingRequest] = {}

    @property
    def next_sequence(self) -> int:
        return self._next_sequence

    # -- requesting -------------------------------------------------------

    def request(
        self, digest: bytes, callback: Callable[[TrsResult], None]
    ) -> int:
        """Ask the committee for the seed of this sender's next message.

        Returns the sequence number assigned to the request.  *callback* fires
        exactly once, when ``2f+1`` valid partials have been combined.
        """

        sequence = self._next_sequence
        self._next_sequence += 1
        self._pending[sequence] = _PendingRequest(digest=digest, callback=callback)
        request = Message(
            TRS_REQUEST_KIND, (self._node.node_id, sequence, digest), 44
        )
        for member in self.committee:
            if member == self._node.node_id:
                # Committee members may send too; loop the request back.
                self._node.receive(self._node.node_id, request)
            else:
                self._node.send(member, request)
        return sequence

    # -- partial collection -------------------------------------------------

    def handles(self, kind: str) -> bool:
        return kind == TRS_PARTIAL_KIND

    def handle(self, sender: int, message: Message) -> bool:
        if message.kind != TRS_PARTIAL_KIND:
            return False
        if sender not in self.committee:
            return True  # partials from non-members are violations; ignore
        sequence, digest, partial = message.payload
        pending = self._pending.get(sequence)
        if pending is None or pending.done or digest != pending.digest:
            return True
        if sender in pending.contributors:
            return True
        binding = trs_binding(self._node.node_id, sequence, digest)
        if not self._backend.verify_partial(binding, partial):
            return True  # invalid partial: attributable misbehaviour, ignore
        pending.contributors.add(sender)
        pending.partials.append(partial)
        if len(pending.partials) >= 2 * self.f + 1:
            self._combine(sequence, pending)
        return True

    def _combine(self, sequence: int, pending: _PendingRequest) -> None:
        binding = trs_binding(self._node.node_id, sequence, pending.digest)
        try:
            signature = self._backend.combine(binding, pending.partials)
        except ThresholdNotReachedError:
            return  # keep collecting; more partials may arrive
        pending.done = True
        overlay_id = self._backend.seed_from_signature(signature, self._num_overlays)
        result = TrsResult(
            sequence=sequence,
            digest=pending.digest,
            signature=signature,
            overlay_id=overlay_id,
        )
        pending.callback(result)
