"""Benchmark: sweep-runner throughput, serial vs parallel.

Runs one small dissemination grid through :func:`repro.runner.run_sweep`
twice — ``jobs=1`` (in-process) and ``jobs=4`` (spawn pool) — and records
the wall-clock of each, emitting ``BENCH_sweep.json`` at the repo root.

At this grid size the spawn pool pays interpreter start-up plus one overlay
construction *per worker*, so parallel wall-clock is only expected to win on
larger grids; the numbers here track the fixed overhead, and the assertion
is about correctness (identical record sets), not speed.  The parallel leg
also emits a ``repro.sweeptrace/1`` timeline (``BENCH_sweep_timeline.jsonl``)
so ``python -m repro analyze-sweep`` can attribute exactly where the
sub-1.0 speedup goes — CI uploads it next to the bench records.
"""

from __future__ import annotations

import os
import pathlib

from conftest import report

from repro.obs.analysis import bench_record, write_bench_record
from repro.runner import ResultStore, SweepSpec, SweepTelemetry, run_sweep

BENCH_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_sweep.json"
TIMELINE_PATH = BENCH_PATH.parent / "BENCH_sweep_timeline.jsonl"

SWEEP = SweepSpec(
    task="dissemination",
    base={"num_nodes": 40, "f": 1, "k": 3, "transactions": 3, "horizon_ms": 5_000.0},
    grid={"protocol": ["hermes", "lzero", "mercury"], "seed": [0, 1]},
)

# At least 2 so the spawn-pool path is always what gets measured, even on a
# single-core CI runner (where "parallel" only measures the pool overhead).
PARALLEL_JOBS = max(2, min(4, os.cpu_count() or 1))


def test_sweep_throughput(tmp_path):
    stores = {
        1: ResultStore(tmp_path / "serial"),
        PARALLEL_JOBS: ResultStore(tmp_path / "parallel"),
    }
    walls: dict[int, float] = {}
    reports = {}
    for jobs, store in stores.items():
        # Trace the parallel leg: the timeline is what analyze-sweep uses to
        # attribute the fixed spawn/env-build overhead this bench tracks.
        telemetry = (
            SweepTelemetry(TIMELINE_PATH) if jobs == PARALLEL_JOBS else None
        )
        try:
            result = run_sweep(SWEEP, store=store, jobs=jobs, telemetry=telemetry)
        finally:
            if telemetry is not None:
                telemetry.close()
        assert result.failed == 0
        assert result.executed == len(SWEEP)
        walls[jobs] = result.wall_seconds
        reports[jobs] = result

    # Scheduling must not change what gets computed.
    hashes = {
        jobs: sorted(r["spec_hash"] for r in rep.records)
        for jobs, rep in reports.items()
    }
    assert len(set(map(tuple, hashes.values()))) == 1

    serial_wall = walls[1]
    parallel_wall = walls[PARALLEL_JOBS]
    doc = bench_record(
        "sweep_throughput",
        {
            "grid_cells": len(SWEEP),
            "serial_wall_seconds": round(serial_wall, 4),
            "parallel_wall_seconds": round(parallel_wall, 4),
            "speedup": round(serial_wall / parallel_wall, 4) if parallel_wall else 0.0,
            "runs_per_second_serial": round(len(SWEEP) / serial_wall, 4)
            if serial_wall
            else 0.0,
            "runs_per_second_parallel": round(len(SWEEP) / parallel_wall, 4)
            if parallel_wall
            else 0.0,
        },
        meta={"task": SWEEP.task, "parallel_jobs": PARALLEL_JOBS},
        seed=SWEEP.grid["seed"],
        num_nodes=SWEEP.base["num_nodes"],
    )
    write_bench_record(BENCH_PATH, doc)

    lines = [
        f"sweep throughput — {len(SWEEP)} cells of task {SWEEP.task!r}",
        f"  jobs=1:              {serial_wall:8.2f}s wall",
        f"  jobs={PARALLEL_JOBS}:              {parallel_wall:8.2f}s wall",
        f"  speedup:             {doc['metrics']['speedup']:8.2f}x "
        "(spawn start-up dominates at this grid size)",
        f"  -> {BENCH_PATH.name}, {TIMELINE_PATH.name}",
    ]
    report("sweep_throughput", "\n".join(lines))
