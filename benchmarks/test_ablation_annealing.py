"""Ablation: the overlay optimization pipeline (§V-B).

Compares the raw robust tree (Alg. 1 output), the pruned tree, and the
pruned+annealed tree on edge count, average dissemination latency and the
Eq. (1) objective.  Paper claim: optimization prunes redundant links while
preserving f+1-connectivity and keeping latency low.
"""

import statistics

from conftest import report

from repro.net.topology import generate_physical_network
from repro.overlay.annealing import AnnealingConfig, anneal
from repro.overlay.base import TransportSpace
from repro.overlay.objective import evaluate_overlay
from repro.overlay.rank import RankTracker
from repro.overlay.robust_tree import build_robust_tree, prune_to_minimal
from repro.utils.rng import derive_rng
from repro.utils.tables import format_table

N = 150


def test_ablation_annealing_pipeline(benchmark):
    physical = generate_physical_network(N, seed=0)
    space = TransportSpace(physical)
    ranks = RankTracker(physical.nodes())

    def pipeline():
        raw = build_robust_tree(
            physical.nodes(), space, f=1, overlay_id=0, ranks=ranks, seed=0
        )
        pruned = prune_to_minimal(raw, space)
        annealed = anneal(
            pruned,
            space,
            ranks,
            config=AnnealingConfig(
                initial_temperature=30.0,
                min_temperature=1.0,
                cooling_rate=0.9,
                moves_per_temperature=3,
            ),
            rng=derive_rng(0, "ablation-anneal"),
        )
        return raw, pruned, annealed

    raw, pruned, annealed = benchmark.pedantic(pipeline, rounds=1, iterations=1)

    def describe(overlay):
        arrivals = overlay.arrival_times(space)
        return (
            overlay.num_edges,
            statistics.mean(arrivals.values()),
            evaluate_overlay(overlay, space, ranks).total,
        )

    rows = []
    for name, overlay in (("raw", raw), ("pruned", pruned), ("annealed", annealed)):
        edges, latency, objective = describe(overlay)
        rows.append([name, edges, latency, objective])
    report(
        "ablation_annealing",
        format_table(
            ["stage", "edges", "avg latency (ms)", "objective (Eq. 1)"],
            rows,
            title=f"Ablation — overlay optimization pipeline (N={N}, f=1)",
        ),
    )

    # Pruning removes a large share of redundant links.
    assert pruned.num_edges <= raw.num_edges
    assert pruned.num_edges <= 0.7 * raw.num_edges
    # The full pipeline improves (or preserves) the objective.
    assert describe(annealed)[2] <= describe(raw)[2]
    # Invariants hold at every stage.
    for overlay in (raw, pruned, annealed):
        overlay.validate(expected_nodes=physical.nodes())
