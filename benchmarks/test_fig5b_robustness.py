"""Benchmark: regenerate Fig. 5b (delivery probability vs Byzantine fraction).

Paper (10% → 33%): HERMES 99.9% → 95%, L∅ 97.5% → 80%, Narwhal 95% → 79%,
Mercury 89% → 55%.  The shape to reproduce: HERMES the most robust at every
fraction, Mercury the least (cluster-leader funneling), L∅/Narwhal between.
"""

from conftest import ATTACK_N, report

from repro.experiments import fig5b_robustness


def test_fig5b_robustness(benchmark, env_attack):
    config = fig5b_robustness.Fig5bConfig(
        num_nodes=ATTACK_N, fractions=(0.10, 0.20, 0.33), trials=10
    )
    result = benchmark.pedantic(
        fig5b_robustness.run, args=(config, env_attack), rounds=1, iterations=1
    )
    report("fig5b_robustness", fig5b_robustness.format_result(result))

    coverage = result.coverage
    for fraction in config.fractions:
        # HERMES (robust overlays + gossip fallback) tops every column.
        assert coverage["hermes"][fraction] == max(
            coverage[name][fraction] for name in coverage
        )
        # Mercury's leader funneling makes it the most fragile.
        assert coverage["mercury"][fraction] == min(
            coverage[name][fraction] for name in coverage
        )
    assert coverage["hermes"][0.33] >= 0.95
    assert coverage["mercury"][0.33] <= 0.80
