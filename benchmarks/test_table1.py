"""Benchmark: regenerate Table I (measured comparison of approaches)."""

from conftest import report

from repro.experiments import table1


def test_table1(benchmark):
    config = table1.Table1Config(num_nodes=60, k=4, transactions=8)
    result = benchmark.pedantic(
        table1.run, args=(config,), rounds=1, iterations=1
    )
    report("table1", table1.format_result(result))

    hermes = result.row("hermes")
    gossip = result.row("gossip")
    tree = result.row("simple-tree")
    rbc = result.row("reliable-broadcast")

    # Paper's Table I claims, measured:
    # HERMES and gossip are dissemination-fair; the fixed tree is not.
    assert hermes.fairness_bias < tree.fairness_bias
    assert gossip.fairness_bias < tree.fairness_bias
    # HERMES balances load; the single tree does not.
    assert hermes.load_cv < tree.load_cv
    # Reliable broadcast has the highest message complexity.
    assert rbc.messages_per_node_per_tx == max(
        row.messages_per_node_per_tx for row in result.rows
    )
    # HERMES keeps high robustness under 20% Byzantine nodes.
    assert hermes.robustness_coverage >= 0.95
