"""Benchmark: regenerate Fig. 5a (front-running success vs malicious fraction).

Paper (10% → 33% malicious): HERMES 2% → 5.9%, L∅ 5% → 19%,
Narwhal 10% → 51%, Mercury 25% → 70%.  The shape to reproduce: HERMES lowest
and near-flat, Mercury highest and steeply rising, L∅/Narwhal in between.
"""

from conftest import ATTACK_N, report

from repro.experiments import fig5a_frontrunning


def test_fig5a_front_running(benchmark, env_attack):
    config = fig5a_frontrunning.Fig5aConfig(
        num_nodes=ATTACK_N, fractions=(0.10, 0.20, 0.33), trials=20
    )
    result = benchmark.pedantic(
        fig5a_frontrunning.run, args=(config, env_attack), rounds=1, iterations=1
    )
    report("fig5a_frontrunning", fig5a_frontrunning.format_result(result))

    rates = result.success_rates
    # HERMES is the most front-running-resistant at every fraction (allowing
    # one-trial noise against L∅, which the paper also places within a few
    # percent of HERMES at low fractions).
    for fraction in config.fractions:
        floor = min(rates[name][fraction] for name in rates)
        assert rates["hermes"][fraction] <= floor + 0.05
        assert rates["hermes"][fraction] <= 0.10
    # Mercury is the most vulnerable at the adversarial extreme.
    assert rates["mercury"][0.33] == max(rates[name][0.33] for name in rates)
    assert rates["mercury"][0.33] >= 0.40
    # Mercury's success grows with the malicious fraction (steep curve).
    assert rates["mercury"][0.33] >= rates["mercury"][0.10]
    # The unaccountable protocols are strictly worse than HERMES at 33%.
    assert rates["narwhal"][0.33] > rates["hermes"][0.33]
    assert rates["lzero"][0.33] > rates["hermes"][0.33]
