"""Benchmark: aggregate-goodput scaling of the sharded deployment.

Drives the same open-loop workload (80 tx/s offered, Poisson arrivals,
capacity-limited 32 KB/s uplinks) through a 48-node deployment at one and at
four shards, and gates the headline Fig. 9 claim from the ISSUE acceptance
criteria: **k = 4 aggregate goodput ≥ 2.5x the k = 1 baseline at fixed
per-node capacity**.  A single committee saturates its dissemination
pipeline well below the offered rate; four independent committees each
carry a quarter of the load with capacity to spare.

Everything the simulator measures here is a pure function of ``(seed,
params)``, so injected/delivered counts and the scaling factor gate with
zero (or near-zero) tolerance; wall-clock throughput is machine-dependent
and tracked as info.

Emits ``BENCH_sharding.json`` at the repo root for the CI bench gate.
"""

from __future__ import annotations

import pathlib
import time

from conftest import report

from repro.load.arrival import make_arrivals
from repro.load.capacity import CapacityConfig
from repro.mempool.transaction import reset_tx_ids
from repro.net.events import reset_message_ids
from repro.obs.analysis import bench_record, write_bench_record
from repro.sharding import ShardedLoadDriver, ShardedSystem

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_sharding.json"

TOTAL_NODES = 48
SHARD_COUNTS = (1, 4)
RATE_TPS = 80.0
DURATION_MS = 5_000.0
DRAIN_MS = 2_000.0
SEED = 0
CAPACITY = CapacityConfig(
    uplink_kb_per_s=32.0, downlink_kb_per_s=128.0, queue_bytes=32 * 1024
)
SCALING_FLOOR = 2.5  # ISSUE acceptance: k=4 goodput >= 2.5x k=1


def _run_cell(num_shards: int) -> dict:
    reset_tx_ids()
    reset_message_ids()
    system = ShardedSystem(
        num_shards,
        TOTAL_NODES,
        protocol="hermes",
        f=1,
        k=3,
        seed=SEED,
        capacity=CAPACITY,
    )
    arrivals = make_arrivals(
        "poisson", rate_tps=RATE_TPS, origins=list(range(TOTAL_NODES)), seed=SEED
    )
    start = time.perf_counter()
    result = ShardedLoadDriver(system, arrivals).run(DURATION_MS, DRAIN_MS)
    wall = time.perf_counter() - start
    return {
        "injected": result.injected,
        "delivered": result.delivered,
        "goodput_tps": result.aggregate_goodput_tps,
        "routed": result.routed,
        "wall_seconds": round(wall, 4),
    }


def test_sharding_throughput():
    cells = {num_shards: _run_cell(num_shards) for num_shards in SHARD_COUNTS}

    scaling = cells[4]["goodput_tps"] / cells[1]["goodput_tps"]
    assert scaling >= SCALING_FLOOR, (
        f"k=4 aggregate goodput is only {scaling:.2f}x the k=1 baseline "
        f"(floor {SCALING_FLOOR}x): sharding no longer scales throughput"
    )
    # Both cells saw the identical offered schedule; only sharding differed.
    assert cells[1]["injected"] == cells[4]["injected"]
    assert cells[1]["routed"] == 0  # k=1 never touches the router
    assert cells[4]["routed"] > 0

    metrics: dict[str, float] = {}
    for num_shards, cell in cells.items():
        for key, value in cell.items():
            metrics[f"k{num_shards}_{key}"] = value
    metrics["goodput_scaling_k4_over_k1"] = round(scaling, 3)

    doc = bench_record(
        "sharding_throughput",
        metrics,
        meta={
            "total_nodes": TOTAL_NODES,
            "shard_counts": list(SHARD_COUNTS),
            "rate_tps": RATE_TPS,
            "duration_ms": DURATION_MS,
            "drain_ms": DRAIN_MS,
            "uplink_kb_per_s": CAPACITY.uplink_kb_per_s,
            "scaling_floor": SCALING_FLOOR,
        },
        seed=SEED,
    )
    write_bench_record(BENCH_PATH, doc)

    lines = [
        f"sharded goodput — {TOTAL_NODES} nodes, {RATE_TPS:.0f} tx/s offered, "
        f"{CAPACITY.uplink_kb_per_s:.0f} KB/s uplinks",
    ]
    for num_shards, cell in cells.items():
        lines.append(
            f"  k={num_shards}: {cell['goodput_tps']:6.1f} tps aggregate "
            f"({cell['delivered']:,}/{cell['injected']:,} delivered, "
            f"{cell['routed']} routed) in {cell['wall_seconds']:.1f}s"
        )
    lines.append(
        f"  scaling k4/k1: {scaling:.2f}x (floor {SCALING_FLOOR}x)"
    )
    lines.append(f"  -> {BENCH_PATH.name}")
    report("sharding_throughput", "\n".join(lines))
