"""Micro-benchmarks: crypto primitives, overlay construction, encodings.

These are conventional pytest-benchmark measurements (ops/sec) for the
building blocks, including the paper's "computing the overlays took less
than 15 s" setup claim at our scale.
"""

import random

from conftest import report

from repro.crypto.backend import FastCryptoBackend
from repro.crypto.group import default_group, toy_group
from repro.crypto.schnorr import schnorr_keygen, schnorr_sign, schnorr_verify
from repro.crypto.threshold import combine_partials, threshold_keygen
from repro.net.topology import generate_physical_network
from repro.overlay.encoding import decode_overlay, encode_overlay
from repro.overlay.robust_tree import build_overlay_family


class TestCryptoMicro:
    def test_schnorr_sign_2048bit(self, benchmark):
        group = default_group()
        rng = random.Random(0)
        secret, _public = schnorr_keygen(group, rng)
        benchmark(lambda: schnorr_sign(group, secret, b"m" * 32, rng))

    def test_schnorr_verify_2048bit(self, benchmark):
        group = default_group()
        rng = random.Random(0)
        secret, public = schnorr_keygen(group, rng)
        signature = schnorr_sign(group, secret, b"m" * 32, rng)
        assert benchmark(lambda: schnorr_verify(group, public, b"m" * 32, signature))

    def test_threshold_partial_and_combine(self, benchmark):
        group = toy_group()
        rng = random.Random(0)
        public, signers = threshold_keygen(group, 3, 4, rng)

        def mint():
            partials = [s.sign(b"binding", rng) for s in signers[:3]]
            return combine_partials(public, b"binding", partials)

        signature = benchmark(mint)
        assert signature.value

    def test_fast_backend_seed(self, benchmark):
        backend = FastCryptoBackend(0)
        backend.setup_committee([0, 1, 2, 3], 3)

        def mint():
            partials = [backend.partial_sign(m, b"binding") for m in (0, 1, 2)]
            return backend.seed_from_signature(backend.combine(b"binding", partials), 10)

        seed = benchmark(mint)
        assert 0 <= seed < 10


class TestOverlayMicro:
    def test_overlay_family_construction(self, benchmark):
        """The paper's setup cost: k optimized overlays from scratch."""

        physical = generate_physical_network(100, seed=0)

        def build():
            overlays, _ = build_overlay_family(physical, f=1, k=2, seed=1)
            return overlays

        overlays = benchmark.pedantic(build, rounds=1, iterations=1)
        assert len(overlays) == 2
        report(
            "micro_overlay_build",
            "overlay construction (N=100, k=2, f=1): see pytest-benchmark "
            "timings; the N=200, k=10 environment for the figure benchmarks "
            "builds in the tens of seconds, matching the paper's '<15 s' "
            "order of magnitude for their 36-core server at N=10,000.",
        )

    def test_encode_decode_roundtrip(self, benchmark, env_main):
        overlay = env_main.overlays[0]

        def roundtrip():
            return decode_overlay(encode_overlay(overlay))

        decoded = benchmark(roundtrip)
        assert decoded.num_edges == overlay.num_edges
