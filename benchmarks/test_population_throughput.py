"""Benchmark: million-client ingest throughput and constant-memory telemetry.

Drives the ``repro.population`` ingest pipeline — a 10⁶-client
:class:`ClientPopulation` with a fee market and a capped, TTL'd mempool —
at two scales (~10⁵ and ~10⁶ injected transactions) and measures events per
wall-second and peak RSS for each.

Each scale runs in its **own subprocess** so ``ru_maxrss`` is a clean
per-scale high-water mark rather than the max across both runs.  The gated
claim is the ISSUE acceptance criterion: peak RSS at 10⁶ transactions stays
within 1.25x of the 10⁵-transaction run — the streaming sketches, windowed
counters and mempool cap hold per-metric state constant, so a 10x larger
workload must not cost 10x the memory.  Injected counts are pure functions
of ``(seed, params)`` and gate with zero tolerance; rates and absolute RSS
are machine-dependent and tracked as info.

Emits ``BENCH_population.json`` at the repo root for the CI bench gate.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

from conftest import report

from repro.obs.analysis import bench_record, write_bench_record

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_population.json"

NUM_CLIENTS = 1_000_000
RATE_TPS = 1_000.0
SERVICE_TPS = 800.0
MEMPOOL_CAP = 5_000
TTL_MS = 60_000.0
SEED = 11
# ~10^5 and >=10^6 injected transactions (session ramp-up eats a few percent
# of the nominal rate x duration, so the big cell gets headroom).
DURATIONS_MS = {"small": 100_000.0, "big": 1_100_000.0}
RSS_RATIO_BOUND = 1.25

_CHILD = """
import json, resource, sys, time
from repro.mempool import MempoolPolicy
from repro.population import (
    ClientPopulation, FeeMarket, FeeMarketConfig, PopulationConfig, run_ingest,
)

duration_ms = float(sys.argv[1])
population = ClientPopulation(
    PopulationConfig.for_offered_rate(
        {rate}, num_clients={clients}, num_nodes=16, seed={seed}
    )
)
start = time.perf_counter()
result = run_ingest(
    population,
    duration_ms=duration_ms,
    service_tps={service},
    policy=MempoolPolicy(max_size={cap}, ttl_ms={ttl}),
    fee_market=FeeMarket(FeeMarketConfig(), seed={seed}),
    drain_ms=5_000.0,
    target_occupancy={cap} // 2,
)
wall = time.perf_counter() - start
events = result.injected + result.delivered
print(json.dumps({{
    "injected": result.injected,
    "delivered": result.delivered,
    "evicted": result.evicted,
    "expired": result.expired,
    "mempool_peak": result.mempool_peak,
    "peak_active_sessions": result.peak_active_sessions,
    "wall_seconds": round(wall, 4),
    "events_per_second": round(events / wall, 1) if wall else 0.0,
    "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}}))
""".format(
    rate=RATE_TPS, clients=NUM_CLIENTS, seed=SEED,
    service=SERVICE_TPS, cap=MEMPOOL_CAP, ttl=TTL_MS,
)


def _ingest_cell(duration_ms: float) -> dict:
    """Run one ingest scale in a fresh interpreter and parse its JSON line."""

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(duration_ms)],
        capture_output=True,
        text=True,
        env=env,
        check=False,
        timeout=1_200,
    )
    assert proc.returncode == 0, f"ingest child failed:\n{proc.stderr}"
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_population_throughput():
    cells = {scale: _ingest_cell(ms) for scale, ms in DURATIONS_MS.items()}

    # The headline acceptance criterion: >=10^6 injected at the big scale,
    # sublinear memory growth between the scales.
    assert cells["small"]["injected"] >= 90_000
    assert cells["big"]["injected"] >= 1_000_000
    rss_ratio = cells["big"]["peak_rss_kb"] / cells["small"]["peak_rss_kb"]
    assert rss_ratio <= RSS_RATIO_BOUND, (
        f"peak RSS grew {rss_ratio:.2f}x from 10^5 to 10^6 transactions "
        f"(bound {RSS_RATIO_BOUND}x): telemetry is no longer constant-memory"
    )
    # The cap and the churn must both have been exercised.
    for cell in cells.values():
        assert cell["mempool_peak"] <= MEMPOOL_CAP
        assert cell["evicted"] > 0

    metrics: dict[str, float] = {}
    for scale, cell in cells.items():
        for key, value in cell.items():
            metrics[f"{scale}_{key}"] = value
    metrics["rss_ratio_big_over_small"] = round(rss_ratio, 3)

    doc = bench_record(
        "population_throughput",
        metrics,
        meta={
            "num_clients": NUM_CLIENTS,
            "rate_tps": RATE_TPS,
            "service_tps": SERVICE_TPS,
            "mempool_cap": MEMPOOL_CAP,
            "ttl_ms": TTL_MS,
            "durations_ms": {k: v for k, v in DURATIONS_MS.items()},
            "rss_ratio_bound": RSS_RATIO_BOUND,
        },
        seed=SEED,
    )
    write_bench_record(BENCH_PATH, doc)

    lines = [
        f"population ingest — {NUM_CLIENTS:,} clients, {RATE_TPS:.0f} tx/s offered,"
        f" cap {MEMPOOL_CAP:,}",
    ]
    for scale, cell in cells.items():
        lines.append(
            f"  {scale:>5} ({cell['injected']:>9,} tx): "
            f"{cell['events_per_second']:>9,.0f} events/s, "
            f"peak RSS {cell['peak_rss_kb'] / 1024:,.0f} MB"
        )
    lines.append(
        f"  RSS ratio 10^6/10^5: {rss_ratio:.2f}x (bound {RSS_RATIO_BOUND}x)"
    )
    lines.append(f"  -> {BENCH_PATH.name}")
    report("population_throughput", "\n".join(lines))
