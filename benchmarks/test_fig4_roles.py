"""Benchmark: regenerate Fig. 4 (role distribution, 200 nodes x 10 overlays).

Paper claims: 10·(f+1) entry-point assignments; ranks widely distributed so
no node is consistently favoured or consistently burdened.
"""

from conftest import MAIN_N, report

from repro.experiments import fig4_roles


def test_fig4_role_distribution(benchmark, env_main):
    config = fig4_roles.Fig4Config(num_nodes=MAIN_N, k=10, f=1)
    result = benchmark.pedantic(
        fig4_roles.run, args=(config, env_main), rounds=1, iterations=1
    )
    report("fig4_roles", fig4_roles.format_result(result))

    # Exactly k * (f+1) entry-point slots across the family.
    assert result.entry_assignments == 10 * 2
    # Role rotation: entry duty spread over many distinct nodes, and no node
    # hogging the root.
    assert result.distinct_entry_nodes >= 15
    assert result.max_entry_repeats() <= 3
    # Balanced average rank across nodes (Fig. 4's visual claim).
    assert result.fairness_coefficient() < 0.15
    # Every node appears in every overlay.
    assert all(len(ranks) == 10 for ranks in result.ranks_per_node.values())
