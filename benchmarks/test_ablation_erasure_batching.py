"""Ablation: erasure-coded batch dissemination (§VIII-D).

Compares disseminating a batch of transactions (a) one-by-one through HERMES
and (b) as Reed–Solomon shards, each shard over its own randomly selected
overlay.  Paper claim: the (k+1, f+1+k) scheme trades full per-tree
replication for ``(f+1+k)/(k+1)``-factor redundancy, cutting bandwidth while
still tolerating f lost shard streams.
"""

import statistics

from conftest import report

from repro.core.batching import BatchingHermesSystem
from repro.core.config import HermesConfig
from repro.core.protocol import HermesSystem
from repro.mempool.transaction import Transaction
from repro.net.topology import generate_physical_network
from repro.overlay.robust_tree import build_overlay_family
from repro.utils.tables import format_table

N = 120
K = 6
BATCH = 16


def test_ablation_erasure_batching(benchmark):
    physical = generate_physical_network(N, seed=2)
    overlays, _ranks = build_overlay_family(physical, f=1, k=K, seed=2)
    config = HermesConfig(f=1, num_overlays=K, gossip_fallback_enabled=False)

    def run_both():
        txs = [Transaction.create(origin=7, created_at=0.0) for _ in range(BATCH)]

        individual = HermesSystem(physical, config, overlays=overlays, seed=4)
        individual.start()
        for tx in txs:
            individual.submit(7, tx)
        individual.run(until_ms=12_000)

        batched = BatchingHermesSystem(physical, config, overlays=overlays, seed=4)
        batched.start()
        batched_txs = [
            Transaction.create(origin=7, created_at=0.0) for _ in range(BATCH)
        ]
        batched.submit_batch(7, batched_txs)
        batched.run(until_ms=12_000)
        return individual, batched, txs, batched_txs

    individual, batched, txs, batched_txs = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    individual_bytes = individual.stats.total_bytes()
    batched_bytes = batched.stats.total_bytes()
    decoded = statistics.mean(
        node.batches_decoded
        for node_id, node in batched.nodes.items()
        if node_id != 7
    )
    rows = [
        ["individual txs", individual_bytes / 1024.0, "-"],
        ["erasure batch", batched_bytes / 1024.0, f"{decoded:.2f}"],
    ]
    report(
        "ablation_erasure_batching",
        format_table(
            ["variant", "total KB on the wire", "batches decoded/node"],
            rows,
            title=(
                f"Ablation — erasure-coded batching (N={N}, batch={BATCH} txs, "
                f"f=1, k_r=2)"
            ),
        ),
    )

    # Every node reconstructed the batch...
    assert decoded == 1.0
    for tx in batched_txs:
        holders = sum(
            1 for node in batched.nodes.values() if tx.tx_id in node.mempool
        )
        assert holders == N
    # ...at a strict bandwidth discount vs per-transaction dissemination.
    assert batched_bytes < individual_bytes
    saving = 1 - batched_bytes / individual_bytes
    assert saving > 0.2
