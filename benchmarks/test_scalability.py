"""Benchmark: HERMES scalability in network size (Table I's "High" claim).

Dissemination latency over an optimized robust tree should grow
logarithmically in N (tree depth), not linearly — that is what earns HERMES
the "High scalability" cell of Table I while fixed trees are "Moderate".
We sweep N and verify the growth is strongly sub-linear.
"""

import statistics

from conftest import report

from repro.core.config import HermesConfig
from repro.core.protocol import HermesSystem
from repro.mempool.transaction import Transaction
from repro.net.topology import generate_physical_network
from repro.overlay.robust_tree import build_overlay_family
from repro.utils.tables import format_table

SIZES = (100, 200, 400)
K = 4


def _measure(num_nodes: int) -> tuple[float, int, float]:
    physical = generate_physical_network(num_nodes, seed=1)
    overlays, _ranks = build_overlay_family(physical, f=1, k=K, seed=1)
    config = HermesConfig(f=1, num_overlays=K, gossip_fallback_enabled=False)
    system = HermesSystem(physical, config, overlays=overlays, seed=9)
    system.start()
    for origin in physical.nodes()[:4]:
        system.submit(origin, Transaction.create(origin=origin, created_at=0.0))
    system.run(until_ms=8_000)
    latencies = system.stats.all_delivery_latencies()
    depth = max(overlay.max_depth() for overlay in overlays)
    coverage = statistics.mean(
        len(system.stats.deliveries[item]) / num_nodes
        for item in system.stats.send_times
    )
    return statistics.mean(latencies), depth, coverage


def test_scalability_in_network_size(benchmark):
    def sweep():
        return {n: _measure(n) for n in SIZES}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [n, latency, depth, f"{coverage:.1%}"]
        for n, (latency, depth, coverage) in results.items()
    ]
    report(
        "scalability",
        format_table(
            ["N", "avg latency (ms)", "max tree depth", "coverage"],
            rows,
            title=f"Scalability — HERMES latency vs network size (k={K}, f=1)",
        ),
    )

    # Full delivery at every size.
    assert all(coverage == 1.0 for _l, _d, coverage in results.values())
    # Quadrupling N must not even double the latency (log-depth growth).
    small = results[SIZES[0]][0]
    large = results[SIZES[-1]][0]
    assert large < 2.0 * small
    # Depth grows by at most a couple of levels over the 4x size range.
    assert results[SIZES[-1]][1] - results[SIZES[0]][1] <= 3
