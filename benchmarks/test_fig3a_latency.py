"""Benchmark: regenerate Fig. 3a (dissemination latency per protocol).

Paper (N = 10,000): Mercury 77.10 < HERMES 83.22 < Narwhal 106.61 < L∅ 172.02
(ms), with L∅ showing the widest 5th–95th percentile spread.  The shape to
reproduce is the ordering and the spread ranking; see EXPERIMENTS.md for the
absolute-number discussion.
"""

from conftest import MAIN_N, report

from repro.experiments import fig3a_latency


def test_fig3a_latency(benchmark, env_main):
    config = fig3a_latency.Fig3aConfig(num_nodes=MAIN_N, transactions=10)
    result = benchmark.pedantic(
        fig3a_latency.run, args=(config, env_main), rounds=1, iterations=1
    )
    report("fig3a_latency", fig3a_latency.format_result(result))

    # The paper's ordering, fastest to slowest.
    assert result.ordering() == ["mercury", "hermes", "narwhal", "lzero"]
    # L∅'s gossip gives it the widest latency spread.
    spreads = {name: s.spread for name, s in result.summaries.items()}
    assert spreads["lzero"] == max(spreads.values())
    # The L∅/HERMES ratio the paper reports is ~2.07; ours must be > 1.5.
    ratio = result.summaries["lzero"].mean / result.summaries["hermes"].mean
    assert ratio > 1.5
