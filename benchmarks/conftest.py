"""Shared benchmark fixtures and reporting.

Benchmarks reproduce the paper's tables/figures at the configured scale and
print the measured-vs-paper rows.  ``report()`` archives each table under
``benchmarks/results/`` and queues it for the terminal summary, which replays
every table after the run (so they land in ``bench_output.txt``).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.harness import build_environment

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# The benchmark scale: N=200 for latency/bandwidth/roles (the paper's own
# bandwidth and role figures use N=200), N=150 for the attack sweeps.
MAIN_N = 200
ATTACK_N = 150


# Tables produced during this session, replayed after capture ends so they
# appear in the terminal / tee'd output (pytest's fd-level capture swallows
# even sys.__stdout__ while tests run).
_SESSION_REPORTS: list[tuple[str, str]] = []


def report(name: str, text: str) -> None:
    """Archive *text* under results/ and queue it for the session summary."""

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    _SESSION_REPORTS.append((name, text))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every queued paper-vs-measured table after the test run."""

    if not _SESSION_REPORTS:
        return
    terminalreporter.write_sep("=", "paper reproduction tables")
    for name, text in _SESSION_REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", name)
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def env_main():
    """The N=200, f=1, k=10 environment (shared; built once)."""

    return build_environment(num_nodes=MAIN_N, f=1, k=10, seed=0)


@pytest.fixture(scope="session")
def env_attack():
    """The N=150 environment for the Fig. 5 sweeps."""

    return build_environment(num_nodes=ATTACK_N, f=1, k=10, seed=0)
