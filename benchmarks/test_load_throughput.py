"""Benchmark: load-driver throughput at N = 200.

Drives a sustained open-loop Poisson workload through the L∅ baseline (the
cheapest full dissemination stack, so the numbers measure the driver and the
capacity model rather than protocol crypto) on the N=200 physical network,
once with infinite links and once with the capacity model installed.

Reports simulator events per wall-second and simulated transactions per
wall-second for each mode, emitting ``BENCH_load.json`` at the repo root.
The assertion is about correctness (open-loop injection count, deliveries
happening), not speed.
"""

from __future__ import annotations

import pathlib
import time

from conftest import report

from repro.baselines import LZeroSystem
from repro.obs.analysis import bench_record, write_bench_record
from repro.load.arrival import PoissonArrivals
from repro.load.capacity import CapacityConfig, CapacityModel
from repro.load.driver import LoadDriver
from repro.net.topology import generate_physical_network

BENCH_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_load.json"

NUM_NODES = 200
RATE_TPS = 20.0
DURATION_MS = 10_000.0
DRAIN_MS = 2_000.0


def _drive(capacity: CapacityModel | None) -> dict:
    physical = generate_physical_network(NUM_NODES, seed=0)
    system = LZeroSystem(physical, seed=13)
    system.network.capacity = capacity
    arrivals = PoissonArrivals(
        rate_tps=RATE_TPS, origins=system.network.node_ids(), seed=7
    )
    driver = LoadDriver(system, arrivals, protocol="lzero")
    start = time.perf_counter()
    result = driver.run(DURATION_MS, drain_ms=DRAIN_MS)
    wall = time.perf_counter() - start
    events = system.simulator.events_processed
    assert result.injected > 0
    assert result.delivered > 0
    return {
        "wall_seconds": round(wall, 4),
        "events_processed": events,
        "events_per_second": round(events / wall, 1) if wall else None,
        "injected_tx": result.injected,
        "simulated_tx_per_second": round(result.injected / wall, 1)
        if wall
        else None,
        "goodput_tps": round(result.goodput_tps, 3),
        "capacity_drops": result.capacity_drops,
    }


def test_load_driver_throughput():
    infinite = _drive(None)
    finite = _drive(
        CapacityModel(
            CapacityConfig(
                uplink_kb_per_s=32.0, downlink_kb_per_s=128.0, queue_bytes=32 * 1024
            )
        )
    )

    metrics = {}
    for mode, numbers in (("infinite", infinite), ("finite", finite)):
        for key, value in numbers.items():
            metrics[f"{mode}_{key}"] = value
    doc = bench_record(
        "load_throughput",
        metrics,
        meta={"rate_tps": RATE_TPS, "duration_ms": DURATION_MS},
        num_nodes=NUM_NODES,
        seed=0,
    )
    write_bench_record(BENCH_PATH, doc)

    lines = [
        f"load driver throughput — N={NUM_NODES}, {RATE_TPS:.0f} tx/s offered, "
        f"{DURATION_MS / 1000:.0f}s simulated",
        f"  infinite links:  {infinite['events_per_second']:>12,.0f} events/s  "
        f"{infinite['simulated_tx_per_second']:>8,.1f} sim-tx/s",
        f"  finite links:    {finite['events_per_second']:>12,.0f} events/s  "
        f"{finite['simulated_tx_per_second']:>8,.1f} sim-tx/s  "
        f"({finite['capacity_drops']} capacity drops)",
        f"  -> {BENCH_PATH.name}",
    ]
    report("load_throughput", "\n".join(lines))
