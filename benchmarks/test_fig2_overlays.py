"""Benchmark: regenerate Fig. 2 (overlay structure comparison)."""

from conftest import MAIN_N, report

from repro.experiments import fig2_overlays


def test_fig2_overlay_structures(benchmark):
    config = fig2_overlays.Fig2Config(num_nodes=MAIN_N, f=1, seed=0)
    result = benchmark.pedantic(
        fig2_overlays.run, args=(config,), rounds=1, iterations=1
    )
    report("fig2_overlays", fig2_overlays.format_result(result))

    tree = result.row("robust-tree")
    others = [row for row in result.rows if row.structure != "robust-tree"]
    # Paper: robust trees achieve significantly lower latency than the other
    # structures, at the cost of the highest load imbalance.
    assert tree.avg_latency_ms <= min(row.avg_latency_ms for row in others)
    assert tree.load_stddev >= max(row.load_stddev for row in others)
