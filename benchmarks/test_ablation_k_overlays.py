"""Ablation: the number of overlays k.

Paper (§IV): "using a larger k value implies a higher bandwidth consumption,
but also ... higher dissemination fairness."  We sweep k and measure

* dissemination fairness — per-node arrival-order bias across a workload
  (k = 1 reuses one tree, so the same nodes always hear first);
* overlay-distribution bandwidth — the signed encodings shipped to all nodes
  grow linearly with k;
* average latency — stays in the same band (each message uses one tree).
"""

import statistics

from conftest import report

from repro.core.config import HermesConfig
from repro.core.protocol import HermesSystem
from repro.mempool.transaction import Transaction
from repro.net.topology import generate_physical_network
from repro.overlay.robust_tree import build_overlay_family
from repro.utils.tables import format_table

N = 100
K_VALUES = (1, 4, 10)
TXS = 12


def _arrival_bias(stats, items, nodes, origins):
    positions = {n: [] for n in nodes}
    for item in items:
        deliveries = dict(stats.deliveries.get(item, {}))
        deliveries.pop(origins[item], None)
        ordered = sorted(deliveries, key=lambda n: deliveries[n])
        denominator = max(len(ordered) - 1, 1)
        for position, node in enumerate(ordered):
            positions[node].append(position / denominator)
    biases = [
        abs(statistics.mean(values) - 0.5)
        for values in positions.values()
        if values
    ]
    return statistics.mean(biases)


def _run_with_k(physical, k):
    overlays, _ranks = build_overlay_family(physical, f=1, k=k, seed=0)
    config = HermesConfig(f=1, num_overlays=k, gossip_fallback_enabled=False)
    system = HermesSystem(physical, config, overlays=overlays, seed=5)
    system.start()
    items, origins = [], {}
    import random

    rng = random.Random(3)
    for _ in range(TXS):
        origin = rng.choice(physical.nodes())
        tx = Transaction.create(origin=origin, created_at=0.0)
        items.append(tx.tx_id)
        origins[tx.tx_id] = origin
        system.submit(origin, tx)
    system.run(until_ms=10_000)
    latencies = system.stats.all_delivery_latencies()
    bias = _arrival_bias(system.stats, items, physical.nodes(), origins)
    encoding_bytes = sum(c.size_bytes for c in system.certificates) * physical.num_nodes
    return statistics.mean(latencies), bias, encoding_bytes


def test_ablation_number_of_overlays(benchmark):
    physical = generate_physical_network(N, seed=0)

    def sweep():
        return {k: _run_with_k(physical, k) for k in K_VALUES}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [k, latency, bias, encoding / 1024.0]
        for k, (latency, bias, encoding) in results.items()
    ]
    report(
        "ablation_k_overlays",
        format_table(
            ["k", "avg latency (ms)", "arrival bias (lower = fairer)", "encoding KB shipped"],
            rows,
            title=f"Ablation — number of overlays k (N={N}, {TXS} txs)",
        ),
    )

    # Fairness improves (bias shrinks) when messages rotate over more trees.
    assert results[10][1] < results[1][1]
    # Distribution bandwidth grows linearly with k.
    assert results[10][2] > results[4][2] > results[1][2]
    # Latency stays in the same band (within 2x).
    latencies = [results[k][0] for k in K_VALUES]
    assert max(latencies) < 2 * min(latencies)
