"""Benchmark: raw simulation-kernel throughput (events per wall-second).

Drives a fixed dissemination workload — L∅ flooding, the cheapest full
protocol stack, so the numbers measure the event loop, the latency sampler
and the channel layer rather than protocol crypto — at N = 200 and N = 2,000,
and reports simulator events per wall-second for each.

The same workload, run against the pre-optimization kernel (commit
``da8f324``), is recorded in the baseline file's ``meta`` so the achieved
speedup stays visible; see docs/performance.md for the full scaling study.
The gated metrics guard the *optimized* kernel against regressions:
events/sec with a generous tolerance (CI runners are noisy), and the exact
event/delivery counts with zero tolerance (the kernel must stay
deterministic — byte-identical event economy — while being fast).

A third cell re-runs N = 200 with a wall-clock profiler installed, so the
observability overhead (``docs/observability.md`` claims the no-profiler
path costs nothing — the instrumented loop is a separate code path) is
measured, not asserted.

Emits ``BENCH_kernel.json`` at the repo root for the CI bench gate.
"""

from __future__ import annotations

import pathlib
import time

from conftest import report

from repro.baselines import LZeroSystem
from repro.mempool.transaction import Transaction, reset_tx_ids
from repro.net.events import reset_message_ids
from repro.net.topology import generate_physical_network
from repro.obs.analysis import bench_record, write_bench_record
from repro.obs.profiler import SimulatorProfiler
from repro.utils.rng import derive_rng

BENCH_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_kernel.json"

SUBMIT_INTERVAL_MS = 25.0
HORIZON_MS = 8_000.0
TRANSACTIONS = 200

# Events/sec of the pre-optimization kernel (commit da8f324) on this exact
# workload, measured on the same machine as the committed baseline values.
# Recorded in the baseline meta so the speedup multiple is auditable.
SEED_EVENTS_PER_SECOND = {200: 35_544.0, 2_000: 27_071.0}


def _dissemination_cell(num_nodes: int, profiled: bool = False) -> dict:
    """One benchmark cell: flood TRANSACTIONS txs through L∅ at *num_nodes*.

    Must stay byte-identical to the seed-kernel measurement harness: same
    seeds, same submit schedule, same horizon.
    """

    reset_tx_ids()
    reset_message_ids()
    physical = generate_physical_network(num_nodes, seed=0)
    system = LZeroSystem(physical, seed=13)
    if profiled:
        system.simulator.set_profiler(SimulatorProfiler())
    rng = derive_rng(11, "kernel-bench", num_nodes)
    node_ids = system.network.node_ids()
    origins = [rng.choice(node_ids) for _ in range(TRANSACTIONS)]
    system.start()
    for i, origin in enumerate(origins):
        when = i * SUBMIT_INTERVAL_MS

        def submit(origin=origin, when=when):
            system.submit(origin, Transaction.create(origin=origin, created_at=when))

        system.simulator.schedule(when, submit)
    start = time.perf_counter()
    system.run(until_ms=HORIZON_MS)
    wall = time.perf_counter() - start
    events = system.simulator.events_processed
    deliveries = sum(len(nodes) for nodes in system.stats.deliveries.values())
    assert deliveries == TRANSACTIONS * num_nodes
    return {
        "wall_seconds": round(wall, 4),
        "events_processed": events,
        "events_per_second": round(events / wall, 1),
        "deliveries": deliveries,
    }


def test_kernel_throughput():
    cells = {n: _dissemination_cell(n) for n in (200, 2_000)}
    profiled = _dissemination_cell(200, profiled=True)
    # The instrumented loop must replay the identical event sequence.
    assert profiled["events_processed"] == cells[200]["events_processed"]

    metrics: dict[str, float] = {}
    for num_nodes, numbers in cells.items():
        for key, value in numbers.items():
            metrics[f"n{num_nodes}_{key}"] = value
        metrics[f"n{num_nodes}_speedup_vs_seed"] = round(
            numbers["events_per_second"] / SEED_EVENTS_PER_SECOND[num_nodes], 2
        )
    profiler_cost = (
        profiled["wall_seconds"] / cells[200]["wall_seconds"] - 1.0
        if cells[200]["wall_seconds"]
        else 0.0
    )
    metrics["profiler_overhead_pct"] = round(100.0 * profiler_cost, 1)

    doc = bench_record(
        "kernel_throughput",
        metrics,
        meta={
            "workload": "lzero flood",
            "transactions": TRANSACTIONS,
            "submit_interval_ms": SUBMIT_INTERVAL_MS,
            "horizon_ms": HORIZON_MS,
            "seed_commit": "da8f324",
            "seed_events_per_second": {
                str(n): v for n, v in SEED_EVENTS_PER_SECOND.items()
            },
        },
        seed=0,
    )
    write_bench_record(BENCH_PATH, doc)

    lines = [
        f"kernel throughput — {TRANSACTIONS} txs, {HORIZON_MS / 1000:.0f}s horizon",
    ]
    for num_nodes, numbers in cells.items():
        lines.append(
            f"  N={num_nodes:>5}: {numbers['events_per_second']:>12,.0f} events/s  "
            f"({metrics[f'n{num_nodes}_speedup_vs_seed']:.1f}x over seed kernel)"
        )
    lines.append(f"  profiler overhead at N=200: {metrics['profiler_overhead_pct']:+.1f}%")
    lines.append(f"  -> {BENCH_PATH.name}")
    report("kernel_throughput", "\n".join(lines))
