"""Ablation: accumulated-rank role balancing (§V-B).

Builds the overlay family with and without rank balancing and compares the
Fig. 4 fairness metrics.  Paper claim: the rank penalty/rotation prevents the
same nodes from being systematically favoured (near the root) across overlays.
"""

import statistics

from conftest import report

from repro.net.topology import generate_physical_network
from repro.overlay.robust_tree import build_overlay_family
from repro.utils.tables import format_table

N = 120
K = 8


def _role_stats(overlays):
    per_node_ranks: dict[int, list[int]] = {}
    entry_counts: dict[int, int] = {}
    for overlay in overlays:
        for node, depth in overlay.depth_of.items():
            per_node_ranks.setdefault(node, []).append(depth)
            if depth == 0:
                entry_counts[node] = entry_counts.get(node, 0) + 1
    averages = [statistics.mean(ranks) for ranks in per_node_ranks.values()]
    fairness_cv = statistics.pstdev(averages) / statistics.mean(averages)
    max_entry_repeats = max(entry_counts.values())
    distinct_entries = len(entry_counts)
    return fairness_cv, max_entry_repeats, distinct_entries


def test_ablation_rank_penalty(benchmark):
    physical = generate_physical_network(N, seed=0)

    def build_both():
        balanced, _ = build_overlay_family(
            physical, f=1, k=K, rank_balancing=True, seed=0
        )
        unbalanced, _ = build_overlay_family(
            physical, f=1, k=K, rank_balancing=False, seed=0
        )
        return balanced, unbalanced

    balanced, unbalanced = benchmark.pedantic(build_both, rounds=1, iterations=1)

    balanced_stats = _role_stats(balanced)
    unbalanced_stats = _role_stats(unbalanced)
    rows = [
        ["with rank balancing", *balanced_stats],
        ["without (ablated)", *unbalanced_stats],
    ]
    report(
        "ablation_rank_penalty",
        format_table(
            ["variant", "fairness CV", "max entry repeats", "distinct entry nodes"],
            rows,
            title=f"Ablation — rank-based role balancing (N={N}, k={K}, f=1)",
        ),
    )

    # (Entry choice retains some per-overlay randomness even when ablated —
    # the latency estimator samples different peers per overlay — so the
    # crisp, reliable signals are the fairness CV and repeat counts.)
    # Balancing flattens the per-node average rank distribution markedly.
    assert balanced_stats[0] < 0.5 * unbalanced_stats[0]
    # And never re-uses an entry point more often than the ablated variant.
    assert balanced_stats[1] <= unbalanced_stats[1]
    assert balanced_stats[1] <= 2
