"""Benchmark: regenerate Fig. 3b (bandwidth overhead, N = 200).

Paper: L∅ 50 < HERMES 192 (≈162 amortized) < Mercury 322 < Narwhal 730
KB/min.  The shape to reproduce: L∅ cheapest, HERMES second, Narwhal the most
expensive by a clear factor.
"""

from conftest import MAIN_N, report

from repro.experiments import fig3b_bandwidth


def test_fig3b_bandwidth(benchmark, env_main):
    config = fig3b_bandwidth.Fig3bConfig(
        num_nodes=MAIN_N, duration_ms=60_000.0, tx_interval_ms=2_000.0
    )
    result = benchmark.pedantic(
        fig3b_bandwidth.run, args=(config, env_main), rounds=1, iterations=1
    )
    report("fig3b_bandwidth", fig3b_bandwidth.format_result(result))

    kb = result.kb_per_minute
    # Paper's ordering.
    assert kb["lzero"] == min(kb.values())
    assert kb["narwhal"] == max(kb.values())
    assert kb["lzero"] < kb["hermes"] < kb["narwhal"]
    # The unamortized (per-tx tree re-encoding) variant costs strictly more.
    assert result.hermes_with_per_tx_encoding > kb["hermes"]
