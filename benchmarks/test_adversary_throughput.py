"""Benchmark: strategy-agent tap overhead at N = 200.

Attaching a zoo agent installs a ``Network.on_send`` transport tap that fires
on every frame of the run — the price every adversarial experiment pays even
when the strategy never acts.  This benchmark drives an identical workload
through the L∅ baseline (the cheapest full dissemination stack, so the
numbers measure the tap and not protocol crypto) twice — untapped, and with a
passive agent observing a 20% coalition — and holds the send-tap overhead
below 10% of wall time.  Agents deliberately leave ``Network.on_receive``
alone (see ``repro.adversary.agent``): installing it would disable the
simulator's flyweight fast path for every delivery and blow this budget.

Also times one full ``run_adversary_trial`` (sandwich vs Mercury at N=200),
the unit fig7 is built from.  Emits ``BENCH_adversary.json`` at the repo
root; the committed baseline lives in ``baselines/adversary_throughput.json``.
"""

from __future__ import annotations

import pathlib
import time

from conftest import report

from repro.adversary import AttackLedger, run_adversary_trial
from repro.adversary.agent import AgentContext, StrategyAgent
from repro.baselines import LZeroSystem, MercurySystem
from repro.mempool.transaction import Transaction, reset_tx_ids
from repro.net.topology import generate_physical_network
from repro.obs.analysis import bench_record, write_bench_record

BENCH_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_adversary.json"

NUM_NODES = 200
NUM_TXS = 40
SPACING_MS = 50.0
HORIZON_MS = 6_000.0
COALITION_FRACTION = 0.2
REPEATS = 3


class _PassiveAgent(StrategyAgent):
    """Observes everything, acts on nothing: the pure cost of the taps."""

    name = "bench-passive"


def _workload_run(attach_agent: bool) -> tuple[float, int, int]:
    """One seeded L∅ run; returns (wall seconds, events, frames seen)."""

    reset_tx_ids()
    physical = generate_physical_network(NUM_NODES, seed=0)
    system = LZeroSystem(physical, seed=13)
    frames = 0
    if attach_agent:
        nodes = physical.nodes()
        coalition = frozenset(nodes[:: int(1 / COALITION_FRACTION)])
        agent = _PassiveAgent()
        agent.attach(
            AgentContext(system=system, coalition=coalition, ledger=AttackLedger())
        )
    system.start()
    for index in range(NUM_TXS):
        origin = (index * 7) % NUM_NODES
        when = index * SPACING_MS
        tx = Transaction.create(origin=origin, created_at=when)
        system.simulator.schedule_at(
            when, lambda origin=origin, tx=tx: system.submit(origin, tx)
        )
    start = time.perf_counter()
    system.run(until_ms=HORIZON_MS)
    wall = time.perf_counter() - start
    assert len(system.stats.deliveries) == NUM_TXS
    if attach_agent:
        frames = agent.frames_seen
        assert frames > 0
    return wall, system.simulator.events_processed, frames


def _best_of(attach_agent: bool) -> tuple[float, int, int]:
    runs = [_workload_run(attach_agent) for _ in range(REPEATS)]
    return min(runs, key=lambda r: r[0])


def _sandwich_trial_seconds() -> float:
    reset_tx_ids()
    physical = generate_physical_network(NUM_NODES, seed=0)

    def factory(plan, hook):
        return MercurySystem(physical, fault_plan=plan, observe_hook=hook, seed=6)

    start = time.perf_counter()
    result = run_adversary_trial(
        factory,
        physical.nodes(),
        "sandwich",
        COALITION_FRACTION,
        victim=0,
        proposer=20,
        background_txs=10,
        proposal_delay_ms=250.0,
        horizon_ms=4_000.0,
        seed=1,
    )
    wall = time.perf_counter() - start
    assert result.attack_launched
    return wall


def test_agent_tap_overhead():
    untapped_wall, untapped_events, _ = _best_of(attach_agent=False)
    tapped_wall, tapped_events, frames = _best_of(attach_agent=True)
    overhead = tapped_wall / untapped_wall - 1.0
    trial_wall = _sandwich_trial_seconds()

    # The send tap must not change what the simulation does, only observe it.
    assert tapped_events == untapped_events
    # The bench budget from repro.adversary.agent: send-tap-only agents stay
    # under 10% overhead.
    assert overhead < 0.10, (
        f"agent tap overhead {overhead:.1%} exceeds the 10% budget "
        f"({tapped_wall:.3f}s vs {untapped_wall:.3f}s)"
    )

    metrics = {
        "untapped_wall_seconds": round(untapped_wall, 4),
        "tapped_wall_seconds": round(tapped_wall, 4),
        "tap_overhead_fraction": round(overhead, 4),
        "events_processed": untapped_events,
        "frames_seen": frames,
        "events_per_second": round(untapped_events / untapped_wall, 1),
        "sandwich_trial_seconds": round(trial_wall, 4),
    }
    doc = bench_record(
        "adversary_throughput",
        metrics,
        meta={
            "txs": NUM_TXS,
            "horizon_ms": HORIZON_MS,
            "coalition_fraction": COALITION_FRACTION,
            "repeats": REPEATS,
        },
        num_nodes=NUM_NODES,
        seed=0,
    )
    write_bench_record(BENCH_PATH, doc)

    lines = [
        f"strategy-agent tap overhead — N={NUM_NODES}, {NUM_TXS} txs, "
        f"{COALITION_FRACTION:.0%} coalition, best of {REPEATS}",
        f"  untapped:  {untapped_wall:8.3f}s   "
        f"{untapped_events / untapped_wall:>12,.0f} events/s",
        f"  tapped:    {tapped_wall:8.3f}s   overhead {overhead:+.1%}  "
        f"({frames:,} frames seen)",
        f"  sandwich trial (Mercury, N={NUM_NODES}): {trial_wall:.3f}s",
        f"  -> {BENCH_PATH.name}",
    ]
    report("adversary_throughput", "\n".join(lines))
