"""Setup shim for environments without the `wheel` package (offline installs).

`pip install -e .` on modern pip builds an editable wheel, which requires the
`wheel` distribution; this shim keeps `python setup.py develop` working.
"""

from setuptools import setup

setup()
